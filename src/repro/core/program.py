"""In-memory programs: sequences of vector operations executed by the macro.

The paper's macro is driven by a controller that issues one in-memory
operation per (multi-)cycle.  For anything beyond a single instruction —
e.g. the SUB-then-ADD idiom, a multiply-accumulate chain, or the image
pipeline of the examples — a user wants to express the whole schedule once,
validate it against the macro geometry, and execute it while collecting a
per-instruction trace.  That is what this module provides:

* :class:`Instruction` — one vector operation (opcode, source rows,
  destination row, optional precision override),
* :class:`Program` — an ordered list of instructions with static validation
  (row bounds, operand requirements, precision support),
* :class:`ProgramTrace` — the per-instruction results plus aggregate
  cycle/energy/latency totals,
* :class:`ProgramExecutor` — runs a program on an :class:`IMCMacro`.

The layer is intentionally small — it adds no new hardware behaviour, only a
convenient, checkable way to drive the existing functional model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.core.config import MacroConfig
from repro.core.macro import IMCMacro, OperationResult
from repro.core.operations import Opcode, SUPPORTED_PRECISIONS, cycles_for
from repro.errors import AddressError, ConfigurationError, PrecisionError

__all__ = ["Instruction", "Program", "ProgramTrace", "ProgramExecutor"]


@dataclass(frozen=True)
class Instruction:
    """One vector operation of a program."""

    opcode: Opcode
    row_a: int
    row_b: Optional[int] = None
    dest_row: Optional[int] = None
    precision_bits: Optional[int] = None
    label: str = ""

    def needs_second_operand(self) -> bool:
        """Whether the instruction requires a second source row."""
        return self.opcode.is_dual_wordline

    def needs_destination(self) -> bool:
        """Whether the instruction requires a destination row."""
        return self.opcode in (
            Opcode.NOT,
            Opcode.COPY,
            Opcode.SHIFT_LEFT,
            Opcode.ADD_SHIFT,
            Opcode.SUB,
            Opcode.MULT,
        )

    def cycle_count(self, default_precision: int) -> int:
        """Cycles this instruction will take (Table I)."""
        bits = self.precision_bits or default_precision
        return cycles_for(self.opcode, bits)


@dataclass
class Program:
    """An ordered list of instructions plus static validation."""

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "program"

    def append(self, instruction: Instruction) -> "Program":
        """Append one instruction (returns self for chaining)."""
        self.instructions.append(instruction)
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "Program":
        """Append several instructions (returns self for chaining)."""
        self.instructions.extend(instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------------ #
    # Static validation
    # ------------------------------------------------------------------ #
    def validate(self, config: MacroConfig) -> None:
        """Check every instruction against a macro configuration.

        Raises on out-of-range rows, missing operands/destinations and
        unsupported precisions, *before* anything executes.
        """
        if not self.instructions:
            raise ConfigurationError(f"program '{self.name}' has no instructions")
        layout = config.layout()
        for index, instruction in enumerate(self.instructions):
            where = f"instruction {index} ({instruction.opcode.name})"
            rows = [instruction.row_a]
            if instruction.row_b is not None:
                rows.append(instruction.row_b)
            if instruction.dest_row is not None:
                rows.append(instruction.dest_row)
            for row in rows:
                if not 0 <= row < config.rows:
                    raise AddressError(
                        f"{where}: row {row} outside [0, {config.rows})"
                    )
            if instruction.needs_second_operand() and instruction.row_b is None:
                raise ConfigurationError(f"{where}: missing second source row")
            if instruction.needs_destination() and instruction.dest_row is None:
                raise ConfigurationError(f"{where}: missing destination row")
            bits = instruction.precision_bits
            if bits is not None:
                if bits not in SUPPORTED_PRECISIONS:
                    raise PrecisionError(f"{where}: unsupported precision {bits}")
                layout.check_precision(bits)

    def cycle_estimate(self, default_precision: int) -> int:
        """Total cycles the program will take (sum of Table I counts)."""
        return sum(
            instruction.cycle_count(default_precision)
            for instruction in self.instructions
        )


@dataclass(frozen=True)
class ProgramTrace:
    """Execution record of a program."""

    program_name: str
    results: tuple

    @property
    def instruction_count(self) -> int:
        """Number of executed instructions."""
        return len(self.results)

    @property
    def total_cycles(self) -> int:
        """Total macro cycles consumed."""
        return sum(result.cycles for result in self.results)

    @property
    def total_energy_j(self) -> float:
        """Total energy consumed (joules)."""
        return sum(result.energy_j for result in self.results)

    @property
    def total_latency_s(self) -> float:
        """Total execution time (seconds)."""
        return sum(result.latency_s for result in self.results)

    def result(self, index: int) -> OperationResult:
        """The result of one instruction."""
        return self.results[index]


class ProgramExecutor:
    """Runs :class:`Program` objects on an :class:`IMCMacro`."""

    def __init__(self, macro: Optional[IMCMacro] = None) -> None:
        self.macro = macro if macro is not None else IMCMacro()

    def run(self, program: Program, validate: bool = True) -> ProgramTrace:
        """Validate (optionally) and execute a program, returning its trace."""
        if validate:
            program.validate(self.macro.config)
        results: List[OperationResult] = []
        for instruction in program.instructions:
            results.append(
                self.macro.execute(
                    instruction.opcode,
                    instruction.row_a,
                    instruction.row_b,
                    instruction.dest_row,
                    precision_bits=instruction.precision_bits,
                )
            )
        return ProgramTrace(program_name=program.name, results=tuple(results))
