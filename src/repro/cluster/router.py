"""The cluster front door: admission, placement, dispatch, accounting.

:class:`ClusterRouter` owns a fleet of :class:`~repro.cluster.node.ClusterNode`
instances at heterogeneous supply-voltage operating points and runs the
serving loop in *modeled (virtual) time*:

* :meth:`submit` admits a request tagged with an SLA class, asks the
  :class:`~repro.cluster.scheduler.SLAScheduler` for a placement, and
  *reserves* the node's virtual clock by the request's modeled cost — so the
  next placement sees the backlog it would queue behind;
* :meth:`dispatch_next` / :meth:`drain` execute queued requests in
  earliest-start order through each node's
  :class:`~repro.serve.InferenceServer`, advance each node's completion
  clock by the *measured* modeled compute time (batch critical path times
  the node's cycle time, programming charges included), and record a
  :class:`~repro.cluster.telemetry.RequestTrace` with the deadline outcome;
* :meth:`ledger` merges every node's lifetime ledger into one cluster
  ledger — by construction the sum of its parts, which the tests pin.

Virtual time makes the whole control loop deterministic: the same workload
on the same fleet always produces the same placements, latencies, joules and
deadline outcomes, so scheduling behaviour is testable down to equality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.node import ClusterNode, NodeState
from repro.cluster.scheduler import (
    ClusterRequest,
    PlacementDecision,
    SLAClass,
    SLAScheduler,
)
from repro.cluster.telemetry import ClusterTelemetry, RequestTrace
from repro.core.stats import MacroStatistics
from repro.errors import ConfigurationError

__all__ = ["ClusterResult", "ClusterRouter"]


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one routed request: predictions + its telemetry trace.

    The accounting fields live on the trace — one source of truth shared
    with the telemetry log — and are forwarded, so callers read
    ``result.latency_s``, ``result.node_id``, ``result.deadline_missed``
    etc. directly (everything :class:`RequestTrace` exposes).
    """

    trace: RequestTrace
    sla: SLAClass
    predictions: np.ndarray

    def __getattr__(self, name: str):
        # Forward public accounting fields to the trace.  Guarding dunders
        # and "trace" itself keeps copy/pickle machinery (which may probe
        # before the instance dict exists) out of the delegation.
        if name.startswith("_") or name == "trace":
            raise AttributeError(name)
        return getattr(self.trace, name)


class ClusterRouter:
    """Admit, place, and execute SLA-tagged requests on a DVFS fleet."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        scheduler: Optional[SLAScheduler] = None,
        telemetry: Optional[ClusterTelemetry] = None,
    ) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"node ids must be unique, got {ids}")
        self.nodes = nodes
        self._by_id: Dict[str, ClusterNode] = {node.node_id: node for node in nodes}
        self.scheduler = scheduler if scheduler is not None else SLAScheduler()
        self.telemetry = telemetry if telemetry is not None else ClusterTelemetry()
        #: Virtual clock: the latest arrival or completion seen so far.
        self.clock_s = 0.0
        self._queues: Dict[str, Deque[Tuple[ClusterRequest, PlacementDecision]]] = {
            node.node_id: deque() for node in nodes
        }
        #: Per-node *actual* completion clock (reservations live on the node).
        self._completed_s: Dict[str, float] = {node.node_id: 0.0 for node in nodes}
        self._results: Dict[int, ClusterResult] = {}
        self._failed: Dict[int, BaseException] = {}
        self._decisions: Dict[int, PlacementDecision] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------ #
    # Fleet management
    # ------------------------------------------------------------------ #
    def node(self, node_id: str) -> ClusterNode:
        """Access one node of the fleet."""
        if node_id not in self._by_id:
            raise ConfigurationError(f"unknown node {node_id!r}")
        return self._by_id[node_id]

    def register_model(self, model_id: str, model, allow_transient: bool = False) -> None:
        """Register a model on every node of the fleet."""
        for node in self.nodes:
            node.register_model(model_id, model, allow_transient=allow_transient)

    @property
    def active_nodes(self) -> List[ClusterNode]:
        """Nodes currently in rotation."""
        return [node for node in self.nodes if node.state is NodeState.ACTIVE]

    def queue_depth(self, node_id: Optional[str] = None) -> int:
        """Queued (admitted, not yet executed) requests."""
        if node_id is not None:
            return len(self._queues[node_id])
        return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model_id: str,
        images: np.ndarray,
        sla: SLAClass = SLAClass.BEST_EFFORT,
        deadline_s: Optional[float] = None,
        arrival_s: Optional[float] = None,
    ) -> int:
        """Admit one request; returns its id.

        ``arrival_s`` pins the request's position on the virtual clock
        (workload generators use it to model inter-arrival gaps); omitted,
        the request arrives "now".  The chosen node's virtual clock is
        reserved through the request's modeled finish so later admissions
        queue behind it.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[0] == 0:
            raise ConfigurationError(
                "expected a non-empty (batch, channels, height, width) array"
            )
        if sla is SLAClass.LATENCY:
            if deadline_s is None or deadline_s <= 0:
                raise ConfigurationError(
                    "latency-class requests need a positive deadline_s"
                )
        arrival = self.clock_s if arrival_s is None else float(arrival_s)
        if arrival < 0:
            raise ConfigurationError("arrival_s must be non-negative")
        self.clock_s = max(self.clock_s, arrival)

        request = ClusterRequest(
            request_id=self._next_request_id,
            model_id=model_id,
            images=images,
            sla=sla,
            arrival_s=arrival,
            deadline_s=deadline_s,
        )
        self._next_request_id += 1

        decision = self.scheduler.choose(
            request, self.nodes, self.telemetry, pending=self._pending_nodes(model_id)
        )
        node = self._by_id[decision.node_id]
        # Reserve the backlog: the next admission must queue behind this
        # request's modeled span.
        node.available_s = decision.est_finish_s
        self._queues[node.node_id].append((request, decision))
        self._decisions[request.request_id] = decision
        return request.request_id

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _rebuild_reservation(self, node_id: str) -> None:
        """Re-derive a node's reserved clock from its measured completion
        time plus the modeled span of everything still queued on it.

        Each queued decision contributes its own span (est_finish - est_start
        at admission), re-chained from reality — this is how reservations
        stay exact when a dispatch finishes (or fails) at a different time
        than its admission-time estimate assumed.
        """
        available = self._completed_s[node_id]
        for request, decision in self._queues[node_id]:
            start = max(available, request.arrival_s)
            available = start + (decision.est_finish_s - decision.est_start_s)
        self._by_id[node_id].available_s = available

    def _pending_nodes(self, model_id: str) -> frozenset:
        """Node ids with queued (not yet executed) placements of a model.

        The scheduler counts these as replicas-in-the-making so a burst of
        admissions cannot replicate a hot model past its cap.
        """
        return frozenset(
            node_id
            for node_id, queue in self._queues.items()
            if any(request.model_id == model_id for request, _ in queue)
        )

    def _replace_parked_backlog(self) -> None:
        """Re-place requests stranded on parked nodes onto active ones.

        Parking is allowed while work is queued (an operator can park any
        node at any time); the stranded requests are re-scheduled instead
        of failing.  With no active node left they simply stay queued until
        something wakes.
        """
        for node_id, queue in self._queues.items():
            node = self._by_id[node_id]
            if node.state is NodeState.ACTIVE or not queue:
                continue
            stranded = list(queue)
            queue.clear()
            node.available_s = self._completed_s[node_id]
            for index, (request, _) in enumerate(stranded):
                try:
                    decision = self.scheduler.choose(
                        request,
                        self.nodes,
                        self.telemetry,
                        pending=self._pending_nodes(request.model_id),
                    )
                except ConfigurationError:
                    # No active nodes: park the rest back where they were,
                    # restoring the reservation that covers them.
                    queue.extend(stranded[index:])
                    self._rebuild_reservation(node_id)
                    return
                target = self._by_id[decision.node_id]
                target.available_s = decision.est_finish_s
                self._queues[target.node_id].append((request, decision))
                self._decisions[request.request_id] = decision

    def dispatch_next(self) -> Optional[ClusterResult]:
        """Execute the queued request that can start earliest (None if idle).

        Requests queued on parked nodes are re-placed first; if every node
        is parked they stay queued (and this returns None) rather than
        failing work that was never attempted.
        """
        self._replace_parked_backlog()
        head: Optional[Tuple[str, ClusterRequest, PlacementDecision, float]] = None
        for node_id, queue in self._queues.items():
            if not queue or self._by_id[node_id].state is not NodeState.ACTIVE:
                continue
            request, decision = queue[0]
            start = max(self._completed_s[node_id], request.arrival_s)
            if head is None or (start, node_id) < (head[3], head[0]):
                head = (node_id, request, decision, start)
        if head is None:
            return None
        node_id, request, decision, start = head
        self._queues[node_id].popleft()
        node = self._by_id[node_id]

        try:
            dispatch = node.execute(request.model_id, request.images)
        except Exception as error:
            # Mirror the serve layer's contract one level up: the failure is
            # stored on the request (re-raised by result()) instead of the
            # request silently vanishing from the queue.  The failed
            # request's reservation is genuinely released: the node's clock
            # is re-derived from measured reality plus the spans of what is
            # still queued (not from tail estimates that embed the failed
            # span).
            self._failed[request.request_id] = error
            self._rebuild_reservation(node_id)
            raise
        finish = start + dispatch.compute_s
        self._completed_s[node_id] = finish
        self.clock_s = max(self.clock_s, finish)
        # Executed work no longer needs its reservation; re-chain the
        # remaining backlog's spans from measured reality (estimates of
        # cold multi-layer dispatches can drift a little from actuals).
        self._rebuild_reservation(node_id)

        latency = finish - request.arrival_s
        missed = request.deadline_s is not None and latency > request.deadline_s

        trace = RequestTrace(
            request_id=request.request_id,
            model_id=request.model_id,
            node_id=node_id,
            sla=request.sla.value,
            images=request.image_count,
            arrival_s=request.arrival_s,
            start_s=start,
            finish_s=finish,
            compute_s=dispatch.compute_s,
            energy_j=dispatch.energy_j,
            deadline_s=request.deadline_s,
            deadline_missed=missed,
            affinity_hit=dispatch.affinity_hit,
            programmed=dispatch.programmed,
            feasible_at_admission=decision.feasible,
        )
        self.telemetry.record(trace)
        node.telemetry.record(trace)

        result = ClusterResult(
            trace=trace, sla=request.sla, predictions=dispatch.predictions
        )
        self._results[request.request_id] = result
        return result

    def drain(self) -> List[ClusterResult]:
        """Execute the whole backlog in earliest-start order."""
        completed: List[ClusterResult] = []
        while True:
            result = self.dispatch_next()
            if result is None:
                return completed
            completed.append(result)

    def result(self, request_id: int) -> ClusterResult:
        """The completed result of a request.

        Re-raises the original execution failure if the request's dispatch
        failed, and raises :class:`ConfigurationError` while it is queued.
        """
        if request_id in self._failed:
            raise self._failed[request_id]
        if request_id not in self._results:
            raise ConfigurationError(
                f"request {request_id} is not complete; call drain()"
            )
        return self._results[request_id]

    def decision(self, request_id: int) -> PlacementDecision:
        """The admission-time placement decision of a request."""
        if request_id not in self._decisions:
            raise ConfigurationError(f"unknown request {request_id}")
        return self._decisions[request_id]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop every node's server workers (idempotent)."""
        for node in self.nodes:
            node.shutdown()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def ledger(self) -> MacroStatistics:
        """Cluster-level ledger: the merge of every node's lifetime ledger."""
        merged = MacroStatistics()
        for node in self.nodes:
            merged.merge(node.ledger())
        return merged

    def summary(self) -> Dict[str, object]:
        """Fleet-wide report: telemetry aggregates plus per-node summaries."""
        return {
            "clock_s": self.clock_s,
            "queue_depth": float(self.queue_depth()),
            "cluster": self.telemetry.summary(),
            "nodes": {node.node_id: node.summary() for node in self.nodes},
        }
