"""Processor-centric baseline: the cost of *not* computing in memory.

The paper's introduction motivates IMC with the energy of moving data between
the memory hierarchy and the processing units.  To make that argument
quantitative inside this reproduction, this module models a conventional
processor-centric execution of the same vector workloads:

* every operand word is read from the SRAM macro over its I/O interface,
  driven across an on-chip bus to the core, processed by an ALU, and the
  result is written back;
* per-word costs are expressed with widely used architectural energy numbers
  for a 28 nm-class design (SRAM read/write, average on-chip wire traversal,
  ALU operation, register-file access), all scaling with supply voltage the
  same way as the IMC models (``(V/0.9)^2``).

The interesting output is the ratio between this baseline and the in-memory
execution for a given operation mix, which is exactly the "reduce the data
movement" benefit the paper claims.  Default constants put the data-movement
share at roughly 60-80 % of the processor-centric energy for simple
element-wise kernels, in line with the architectural literature the paper
cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuits.energy import OperationEnergyModel
from repro.core.operations import Opcode, cycles_for
from repro.errors import ConfigurationError
from repro.tech.calibration import MacroCalibration, default_macro_calibration
from repro.utils.validation import check_positive

__all__ = ["ProcessorCostParameters", "ProcessorCentricBaseline"]


@dataclass(frozen=True)
class ProcessorCostParameters:
    """Per-word energy/time constants of the processor-centric path (0.9 V)."""

    #: SRAM array read of one 8-bit word (sense + column mux + I/O latch).
    sram_read_j: float = 250e-15
    #: SRAM write of one 8-bit word.
    sram_write_j: float = 280e-15
    #: Driving one 8-bit word across the on-chip interconnect to the core.
    interconnect_j: float = 600e-15
    #: Register-file read/write pair for one operand.
    register_file_j: float = 60e-15
    #: 8-bit ALU add (multiplication scales with the operand width).
    alu_add_j: float = 30e-15
    alu_mult_j: float = 180e-15
    #: Core clock and the number of words the core processes per cycle.
    core_frequency_hz: float = 2.0e9
    words_per_core_cycle: float = 1.0
    #: Reference supply for the quadratic voltage scaling.
    reference_vdd: float = 0.9

    def __post_init__(self) -> None:
        for name in (
            "sram_read_j",
            "sram_write_j",
            "interconnect_j",
            "register_file_j",
            "alu_add_j",
            "alu_mult_j",
            "core_frequency_hz",
            "words_per_core_cycle",
            "reference_vdd",
        ):
            check_positive(name, getattr(self, name))


class ProcessorCentricBaseline:
    """Energy/latency of running the macro's workloads on a conventional core."""

    def __init__(
        self,
        parameters: ProcessorCostParameters | None = None,
        calibration: MacroCalibration | None = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else ProcessorCostParameters()
        self.calibration = (
            calibration if calibration is not None else default_macro_calibration()
        )
        self._imc_energy = OperationEnergyModel(self.calibration)

    # ------------------------------------------------------------------ #
    # Per-operation costs of the processor-centric path
    # ------------------------------------------------------------------ #
    def _scale(self, vdd: float) -> float:
        return (vdd / self.parameters.reference_vdd) ** 2

    def _alu_energy(self, opcode: Opcode, precision_bits: int) -> float:
        parameters = self.parameters
        width_factor = precision_bits / 8.0
        if opcode is Opcode.MULT:
            return parameters.alu_mult_j * width_factor * width_factor
        return parameters.alu_add_j * width_factor

    def energy_per_operation_j(
        self, opcode: Opcode, precision_bits: int = 8, vdd: float = 0.9
    ) -> float:
        """Energy of one word-level operation on the processor-centric path.

        Two operand reads, two interconnect traversals, register-file
        accesses, the ALU operation, one interconnect traversal back and the
        result write.
        """
        check_positive("precision_bits", precision_bits)
        parameters = self.parameters
        width_factor = precision_bits / 8.0
        movement = (
            2 * parameters.sram_read_j
            + parameters.sram_write_j
            + 3 * parameters.interconnect_j
        ) * width_factor
        compute = 2 * parameters.register_file_j * width_factor + self._alu_energy(
            opcode, precision_bits
        )
        return (movement + compute) * self._scale(vdd)

    def data_movement_share(self, opcode: Opcode, precision_bits: int = 8) -> float:
        """Fraction of the processor-centric energy spent on data movement."""
        parameters = self.parameters
        width_factor = precision_bits / 8.0
        movement = (
            2 * parameters.sram_read_j
            + parameters.sram_write_j
            + 3 * parameters.interconnect_j
        ) * width_factor
        total = self.energy_per_operation_j(opcode, precision_bits, vdd=parameters.reference_vdd)
        return movement / total

    def latency_per_operation_s(self, opcode: Opcode, precision_bits: int = 8) -> float:
        """Per-word latency of the processor-centric path.

        The core pipeline needs roughly one cycle per word for element-wise
        operations (load/compute/store overlapped), plus extra cycles for the
        iterative multiplier at wider precisions.
        """
        del precision_bits
        cycles = 1.0
        if opcode is Opcode.MULT:
            cycles = 3.0
        return cycles / (
            self.parameters.core_frequency_hz * self.parameters.words_per_core_cycle
        )

    # ------------------------------------------------------------------ #
    # Comparison against the in-memory path
    # ------------------------------------------------------------------ #
    def compare(
        self,
        opcode: Opcode,
        precision_bits: int = 8,
        vdd: float = 0.9,
        imc_parallel_words: int = 4,
        imc_cycle_time_s: float = 603e-12,
    ) -> Dict[str, float]:
        """Energy and throughput comparison for one operation type.

        Returns the per-word energies of both paths, the energy ratio
        (processor / IMC), and the per-word latencies given the IMC vector
        width and cycle time.
        """
        if opcode not in (Opcode.ADD, Opcode.SUB, Opcode.MULT) and not opcode.is_logic:
            raise ConfigurationError(
                f"comparison supports element-wise operations, got {opcode.name}"
            )
        check_positive("imc_parallel_words", imc_parallel_words)
        check_positive("imc_cycle_time_s", imc_cycle_time_s)
        processor_energy = self.energy_per_operation_j(opcode, precision_bits, vdd)
        imc_energy = self._imc_energy.energy_for(
            opcode.energy_mnemonic, precision_bits, vdd=vdd
        ).total_j
        processor_latency = self.latency_per_operation_s(opcode, precision_bits)
        imc_latency = (
            cycles_for(opcode, precision_bits) * imc_cycle_time_s / imc_parallel_words
        )
        return {
            "processor_energy_j": processor_energy,
            "imc_energy_j": imc_energy,
            "energy_ratio": processor_energy / imc_energy,
            "data_movement_share": self.data_movement_share(opcode, precision_bits),
            "processor_latency_s": processor_latency,
            "imc_latency_s": imc_latency,
            "throughput_ratio": processor_latency / imc_latency,
        }
