"""Word-line decoder / driver functional model.

The decoder has two jobs in the proposed architecture:

* translate a :class:`repro.core.array.RowRef` into the physical word line
  to pulse (main-array rows and dummy-array rows are driven by the same
  decoder, Fig. 3), and
* allow *two* word lines to be asserted in the same cycle for bit-line
  computing (one of the things a conventional SRAM decoder cannot do).

The decoder also owns the :class:`repro.circuits.wordline.WordlineDriver`
that shapes the pulse according to the configured drive scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AddressError, ConfigurationError
from repro.core.array import ArraySpace, RowRef
from repro.circuits.wordline import WordlineDriver, WordlinePulse, WordlineScheme
from repro.tech.calibration import MacroCalibration
from repro.tech.technology import OperatingPoint, TechnologyProfile

__all__ = ["WordlineSelection", "RowDecoder"]


@dataclass(frozen=True)
class WordlineSelection:
    """The word lines asserted in one access."""

    rows: Tuple[RowRef, ...]
    pulse: WordlinePulse

    @property
    def is_dual(self) -> bool:
        """Whether two word lines are asserted simultaneously."""
        return len(self.rows) == 2


class RowDecoder:
    """Functional row decoder with dual-WL support."""

    def __init__(
        self,
        rows: int,
        dummy_rows: int,
        technology: TechnologyProfile,
        calibration: MacroCalibration,
        scheme: WordlineScheme = WordlineScheme.SHORT_PULSE_BOOST,
    ) -> None:
        self.rows = rows
        self.dummy_rows = dummy_rows
        self.driver = WordlineDriver(
            technology=technology, calibration=calibration, scheme=scheme
        )
        self.activation_history: List[WordlineSelection] = []

    def _validate(self, ref: RowRef) -> None:
        limit = self.dummy_rows if ref.space is ArraySpace.DUMMY else self.rows
        if not 0 <= ref.index < limit:
            raise AddressError(
                f"{ref.space.value} row {ref.index} outside [0, {limit})"
            )

    def select(
        self,
        point: OperatingPoint,
        row_a: RowRef,
        row_b: Optional[RowRef] = None,
        record: bool = True,
    ) -> WordlineSelection:
        """Assert one or two word lines and return the pulse applied."""
        self._validate(row_a)
        rows: Tuple[RowRef, ...]
        if row_b is None:
            rows = (row_a,)
        else:
            self._validate(row_b)
            if row_a == row_b:
                raise ConfigurationError(
                    "dual-WL selection requires two distinct rows"
                )
            rows = (row_a, row_b)
        selection = WordlineSelection(rows=rows, pulse=self.driver.pulse(point))
        if record:
            self.activation_history.append(selection)
        return selection

    def reset_history(self) -> None:
        """Forget the recorded activations (used between experiments)."""
        self.activation_history.clear()

    @property
    def dual_activation_count(self) -> int:
        """How many dual-WL accesses have been issued."""
        return sum(1 for item in self.activation_history if item.is_dual)
