"""Symmetric fixed-point quantisation for IMC inference.

Weights and activations are quantised to signed integers of 2/4/8 bits using
the symmetric per-tensor scheme of :class:`repro.utils.fixedpoint
.FixedPointFormat`.  The integer codes are what the IMC macro actually
multiplies/accumulates; the scales are folded back in after the integer
arithmetic, exactly as an integer-only inference accelerator would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.fixedpoint import FixedPointFormat

__all__ = ["QuantizedTensor", "quantize_tensor"]


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer-code tensor plus the fixed-point format that produced it."""

    codes: np.ndarray
    fmt: FixedPointFormat

    @property
    def width(self) -> int:
        """Bit width of the codes."""
        return self.fmt.width

    @property
    def scale(self) -> float:
        """Real value of one LSB."""
        return self.fmt.scale

    def dequantize(self) -> np.ndarray:
        """Recover the (lossy) real-valued tensor."""
        return self.fmt.dequantize(self.codes)

    def quantization_error(self, reference: np.ndarray) -> float:
        """Root-mean-square error against the original tensor."""
        reference = np.asarray(reference, dtype=np.float64)
        if reference.shape != self.codes.shape:
            raise ConfigurationError(
                "reference tensor shape does not match the quantised tensor"
            )
        return float(np.sqrt(np.mean((self.dequantize() - reference) ** 2)))


def quantize_tensor(tensor: np.ndarray, width: int) -> QuantizedTensor:
    """Quantise a float tensor to ``width``-bit symmetric signed integers."""
    tensor = np.asarray(tensor, dtype=np.float64)
    fmt = FixedPointFormat.for_tensor(tensor, width)
    return QuantizedTensor(codes=fmt.quantize(tensor), fmt=fmt)
