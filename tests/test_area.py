"""Unit tests for the area-overhead model."""

import pytest

from repro.analysis.area import AreaParameters, MacroAreaModel
from repro.core import MacroConfig
from repro.errors import ConfigurationError


class TestDefaultOverhead:
    def test_matches_paper_5_2_percent(self):
        model = MacroAreaModel()
        assert model.overhead_fraction() == pytest.approx(0.052, abs=0.003)

    def test_breakdown_components_present(self):
        breakdown = MacroAreaModel().breakdown()
        for name in (
            "bl_booster",
            "fa_logics",
            "muxes",
            "flipflops",
            "bl_separator",
            "control",
        ):
            assert name in breakdown.components
            assert breakdown.components[name] >= 0

    def test_fractions_sum_to_one(self):
        breakdown = MacroAreaModel().breakdown()
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_dummy_rows_reported_separately(self):
        breakdown = MacroAreaModel().breakdown()
        assert breakdown.dummy_cells == 3 * 128
        assert "dummy_array" not in breakdown.components

    def test_fa_logics_is_largest_per_column_block(self):
        components = MacroAreaModel().breakdown().components
        per_column = {
            name: components[name]
            for name in ("bl_booster", "fa_logics", "muxes", "flipflops")
        }
        assert max(per_column, key=per_column.get) == "fa_logics"


class TestScaling:
    def test_overhead_shrinks_with_taller_arrays(self):
        sweep = MacroAreaModel().overhead_vs_geometry((64, 128, 256, 512))
        values = [sweep[rows] for rows in (64, 128, 256, 512)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_overhead_halves_when_rows_double(self):
        sweep = MacroAreaModel().overhead_vs_geometry((128, 256))
        assert sweep[256] == pytest.approx(sweep[128] / 2, rel=0.01)

    def test_invalid_row_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroAreaModel().overhead_vs_geometry((0,))

    def test_wider_interleave_lowers_overhead(self):
        narrow = MacroAreaModel(MacroConfig(interleave=4)).overhead_fraction()
        wide = MacroAreaModel(MacroConfig(interleave=8, precision_bits=4)).overhead_fraction()
        assert wide < narrow


class TestComparisons:
    def test_peripheral_approach_beats_cell_modification(self):
        comparison = MacroAreaModel().compare_to_cell_modification()
        assert (
            comparison["proposed_peripheral_overhead"]
            < comparison["cell_modification_overhead"]
        )

    def test_cell_modification_overhead_formula(self):
        comparison = MacroAreaModel().compare_to_cell_modification(extra_transistors_per_cell=4)
        assert comparison["cell_modification_overhead"] == pytest.approx(4 / 6)

    def test_custom_parameters(self):
        parameters = AreaParameters(control_cells=0.0, bl_separator_cells_per_column=0.0)
        smaller = MacroAreaModel(parameters=parameters).overhead_fraction()
        assert smaller < MacroAreaModel().overhead_fraction()

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            AreaParameters(control_cells=-1.0)
