"""Tests for the benchmark-regression comparator (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def _write(tmp_path: Path, results: dict, baselines: dict):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    for name, payload in results.items():
        (results_dir / name).write_text(json.dumps(payload), encoding="utf-8")
    baselines_path = tmp_path / "baselines.json"
    baselines_path.write_text(json.dumps(baselines), encoding="utf-8")
    return results_dir, baselines_path


@pytest.fixture()
def base_config():
    return {
        "default_tolerance": 0.2,
        "metrics": {
            "cycles": {
                "file": "bench.json",
                "path": "nested/cycles",
                "direction": "lower",
                "value": 100.0,
            },
            "speedup": {
                "file": "bench.json",
                "path": "speedup",
                "direction": "higher",
                "value": 10.0,
            },
        },
    }


class TestGate:
    def test_within_tolerance_passes(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path,
            {"bench.json": {"nested": {"cycles": 110}, "speedup": 9.0}},
            base_config,
        )
        assert check_regression.run(results_dir, baselines, update=False) == 0

    def test_lower_metric_regression_fails(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path,
            {"bench.json": {"nested": {"cycles": 121}, "speedup": 10.0}},
            base_config,
        )
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_higher_metric_regression_fails(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path,
            {"bench.json": {"nested": {"cycles": 100}, "speedup": 7.9}},
            base_config,
        )
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_improvement_passes(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path,
            {"bench.json": {"nested": {"cycles": 10}, "speedup": 100.0}},
            base_config,
        )
        assert check_regression.run(results_dir, baselines, update=False) == 0

    def test_missing_results_file_fails(self, tmp_path, base_config):
        results_dir, baselines = _write(tmp_path, {}, base_config)
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_missing_path_fails(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path, {"bench.json": {"speedup": 10.0}}, base_config
        )
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_zero_tolerance_is_exact(self, tmp_path):
        config = {
            "metrics": {
                "flag": {
                    "file": "bench.json",
                    "path": "flag",
                    "direction": "higher",
                    "value": 1.0,
                    "tolerance": 0.0,
                }
            }
        }
        results_dir, baselines = _write(tmp_path, {"bench.json": {"flag": 0.999}}, config)
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_smoke_only_metric_skipped_on_full_results(self, tmp_path):
        config = {
            "metrics": {
                "cycles": {
                    "file": "bench.json",
                    "path": "cycles",
                    "direction": "lower",
                    "value": 1.0,
                    "smoke_only": True,
                }
            }
        }
        # Full-mode results (smoke: false) with a hugely "regressed" value:
        # the smoke-only metric must be skipped, not failed.
        results_dir, baselines = _write(
            tmp_path, {"bench.json": {"smoke": False, "cycles": 999.0}}, config
        )
        assert check_regression.run(results_dir, baselines, update=False) == 0

    def test_update_with_unmeasurable_metric_fails(self, tmp_path, base_config):
        # A renamed/missing JSON key must not let --update report success
        # while silently keeping the stale baseline value.
        results_dir, baselines = _write(
            tmp_path, {"bench.json": {"speedup": 42.0}}, base_config
        )
        assert check_regression.run(results_dir, baselines, update=True) == 1
        rewritten = json.loads(baselines.read_text(encoding="utf-8"))
        assert rewritten["metrics"]["cycles"]["value"] == 100.0  # stale, kept
        assert rewritten["metrics"]["speedup"]["value"] == 42.0

    def test_update_rewrites_baselines(self, tmp_path, base_config):
        results_dir, baselines = _write(
            tmp_path,
            {"bench.json": {"nested": {"cycles": 50}, "speedup": 42.0}},
            base_config,
        )
        assert check_regression.run(results_dir, baselines, update=True) == 0
        rewritten = json.loads(baselines.read_text(encoding="utf-8"))
        assert rewritten["metrics"]["cycles"]["value"] == 50.0
        assert rewritten["metrics"]["speedup"]["value"] == 42.0


class TestUntrackedResults:
    """A new bench that writes results nobody gates must fail the check."""

    def _good_results(self):
        return {"bench.json": {"nested": {"cycles": 100}, "speedup": 10.0}}

    def test_untracked_results_file_fails(self, tmp_path, base_config):
        results = self._good_results()
        results["new_bench.json"] = {"metric": 1.0}
        results_dir, baselines = _write(tmp_path, results, base_config)
        assert check_regression.run(results_dir, baselines, update=False) == 1

    def test_untracked_failure_message_names_the_file(
        self, tmp_path, base_config, capsys
    ):
        results = self._good_results()
        results["new_bench.json"] = {"metric": 1.0}
        results_dir, baselines = _write(tmp_path, results, base_config)
        check_regression.run(results_dir, baselines, update=False)
        output = capsys.readouterr().out
        assert "MISSING BASELINES" in output
        assert "new_bench.json" in output

    def test_allow_untracked_lifts_the_requirement(self, tmp_path, base_config):
        results = self._good_results()
        results["new_bench.json"] = {"metric": 1.0}
        results_dir, baselines = _write(tmp_path, results, base_config)
        assert (
            check_regression.run(
                results_dir, baselines, update=False, allow_untracked=True
            )
            == 0
        )

    def test_update_does_not_hide_untracked_results(self, tmp_path, base_config):
        results = self._good_results()
        results["new_bench.json"] = {"metric": 1.0}
        results_dir, baselines = _write(tmp_path, results, base_config)
        # --update cannot invent a baseline entry for a file it knows
        # nothing about, so it must still fail.
        assert check_regression.run(results_dir, baselines, update=True) == 1

    def test_every_tracked_file_present_passes(self, tmp_path, base_config):
        results_dir, baselines = _write(tmp_path, self._good_results(), base_config)
        assert check_regression.run(results_dir, baselines, update=False) == 0

    def test_untracked_helper_lists_only_unreferenced(self, tmp_path, base_config):
        results = self._good_results()
        results["orphan.json"] = {"x": 1}
        results_dir, _ = _write(tmp_path, results, base_config)
        untracked = check_regression._untracked_results(
            results_dir, base_config["metrics"]
        )
        assert untracked == ["orphan.json"]


class TestRepoBaselines:
    def test_committed_baselines_are_well_formed(self):
        config = json.loads(
            (SCRIPT.parent / "baselines.json").read_text(encoding="utf-8")
        )
        assert config["metrics"], "no tracked metrics"
        for name, spec_ in config["metrics"].items():
            assert spec_["file"].endswith(".json"), name
            assert spec_["path"], name
            if spec_.get("check") == "present":
                # Presence-only gates carry no numeric baseline.
                continue
            assert spec_["direction"] in ("lower", "higher"), name
            assert isinstance(spec_["value"], (int, float)), name
