"""The wire gateway end to end: live TCP server, client SDK, backpressure.

Run with::

    python examples/gateway_serve.py

Everything below :mod:`repro.cluster` serves in-process; this example puts
the fleet behind a real socket.  A :class:`repro.gateway.ThreadedGateway`
serves a two-node analytic fleet on an ephemeral loopback port, and a
pooled :class:`repro.gateway.GatewayClient` talks to it over the
length-prefixed JSON frame protocol of ``docs/PROTOCOL.md``: first a full
image upload, then content-addressed ``images_ref`` requests, a PING, the
STATS counters — and finally a deliberate overload drill against a
one-slot admission queue, showing the SDK absorbing ``BUSY`` refusals
with retry/backoff while the server loses nothing.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cluster import ClusterNode, ClusterRouter, ExecutionMode, ForwardMemo
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn
from repro.gateway import GatewayClient, ThreadedGateway

NUM_MACROS = 4


def build_router(cnn) -> ClusterRouter:
    memo = ForwardMemo()
    fleet = [
        ClusterNode(
            node_id,
            vdd=vdd,
            num_macros=NUM_MACROS,
            execution_mode=ExecutionMode.ANALYTIC,
            forward_memo=memo,
        )
        for node_id, vdd in (("fast-0", 1.0), ("eco-0", 0.6))
    ]
    router = ClusterRouter(fleet, coalesce=True)
    router.register_model("cnn", cnn)
    return router


def main() -> None:
    print("=== Training the pattern CNN (8-bit) ===")
    dataset = make_pattern_image_dataset(samples=150, size=8, seed=13)
    cnn, report = train_pattern_cnn(
        dataset, conv_channels=(2,), hidden_sizes=(8,), epochs=8, seed=13
    )
    print(f"  test accuracy {report.test_accuracy:.2f}")
    images = dataset.test_images[:4]

    print("\n=== Serving over TCP (ephemeral loopback port) ===")
    with ThreadedGateway(build_router(cnn)) as gateway:
        host, port = gateway.server.host, gateway.server.port
        print(f"  gateway up on {host}:{port}")
        with GatewayClient(host, port) as client:
            print(f"  PING round trip: {client.ping() * 1e3:.2f} ms")

            first = client.predict("cnn", images, sla="throughput")
            print(
                f"  upload request : predictions {first.predictions.tolist()} "
                f"on {first.trace['node_id']}, wire {first.wire_latency_s * 1e3:.2f} ms"
            )
            print(f"  cached as ref  : {first.images_ref[:16]}…")

            again = client.predict("cnn", images, sla="throughput")
            print(
                f"  ref request    : predictions {again.predictions.tolist()}, "
                f"wire {again.wire_latency_s * 1e3:.2f} ms (no tensor re-upload)"
            )
            assert np.array_equal(first.predictions, cnn.predict(images))
            assert np.array_equal(again.predictions, first.predictions)
            print("  predictions verified bit-exact against the local model")

            deadline = client.predict("cnn", images, sla="latency", deadline_s=0.5)
            print(
                f"  latency class  : deadline_missed="
                f"{deadline.trace['deadline_missed']} "
                f"(modeled {deadline.trace['latency_s'] * 1e6:.1f} us)"
            )

    print("\n=== Backpressure drill: one-slot admission queue ===")
    with ThreadedGateway(build_router(cnn), max_queue=1) as gateway:
        server = gateway.server
        with GatewayClient(
            server.host,
            server.port,
            pool_size=3,
            retries=30,
            backoff_base_s=0.05,
            backoff_cap_s=0.2,
        ) as client:
            client.predict("cnn", images)  # seed the ref cache pre-drill
            server.pause_dispatch()  # hold the dispatcher: the queue fills
            # Release the hold shortly; until then the overflow requests
            # get BUSY frames and the SDK sleeps out its backoff schedule.
            threading.Timer(0.25, server.resume_dispatch).start()
            results: list = [None] * 3
            workers = [
                threading.Thread(
                    target=lambda i=i: results.__setitem__(
                        i, client.predict("cnn", images)
                    )
                )
                for i in range(3)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            for index, result in enumerate(results):
                print(
                    f"  request {index}: answered after {result.attempts} "
                    f"admission attempt(s)"
                )
            stats = client.stats()
        print(
            f"  server refused {stats['busy_sent']:.0f} admission(s) with BUSY, "
            f"answered {stats['responses_sent']:.0f} requests, "
            f"dropped {stats['responses_dropped']:.0f}"
        )
        assert max(result.attempts for result in results) > 1
        assert stats["responses_dropped"] == 0
        print("  zero loss: every offered request was answered")


if __name__ == "__main__":
    main()
