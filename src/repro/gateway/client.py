"""Client SDK for the gateway wire protocol: sync + async, pool + retry.

Two clients share the protocol module and the retry policy:

* :class:`GatewayClient` — synchronous, built on blocking sockets behind a
  thread-safe connection pool (one request in flight per pooled
  connection); the ergonomic entry point for scripts and notebooks;
* :class:`AsyncGatewayClient` — asyncio, one connection, *pipelined*: many
  requests in flight at once, demultiplexed by the request ``id`` the
  protocol echoes back.  The load generator's building block.

Both honour the server's explicit backpressure: a ``BUSY`` frame is
retried after ``max(server hint, base * 2**attempt)`` capped at
``backoff_cap_s`` (deterministic, no jitter — the hint already spreads
clients out because it scales with the queue each client observed), up to
``retries`` attempts, then :class:`GatewayBusyError` propagates.  The
sleep is injectable, so tests assert the backoff schedule without real
waiting.

Image tensors are transferred once: the SDK computes the wire content
digest locally (:func:`~repro.gateway.protocol.images_digest`), optimistically
sends ``images_ref``, and falls back to a full ``images`` payload when the
server answers ``unknown_images_ref`` (a restarted server loses its
cache).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gateway.protocol import (
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
    encode_images,
    images_digest,
)

__all__ = [
    "GatewayError",
    "GatewayBusyError",
    "GatewayRequestError",
    "GatewayResult",
    "GatewayClient",
    "AsyncGatewayClient",
]


class GatewayError(RuntimeError):
    """Base class of every client-side gateway failure."""


class GatewayBusyError(GatewayError):
    """The server refused admission and the retry budget is exhausted.

    Attributes:
        retry_after_s: The server's last backoff hint in seconds.
        draining: True when the refusal came from a draining server.
    """

    def __init__(self, message: str, retry_after_s: float, draining: bool) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.draining = draining


class GatewayRequestError(GatewayError):
    """The server answered with an ERROR frame.

    Attributes:
        code: The machine-readable error code from the wire.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


@dataclass(frozen=True)
class GatewayResult:
    """One successful wire inference: predictions plus the modeled trace.

    Attributes:
        predictions: Predicted class labels, one per image.
        request_id: The router-side request id.
        trace: The modeled telemetry the server returned (node, modeled
            latency/energy, deadline outcome, execution mode...).
        images_ref: Content digest under which the server cached the
            images (present when this request uploaded them).
        attempts: Admission attempts taken (1 = no BUSY retry).
        wire_latency_s: Wall-clock send-to-response time of the winning
            attempt.
    """

    predictions: np.ndarray
    request_id: int
    trace: Dict[str, object]
    images_ref: Optional[str]
    attempts: int
    wire_latency_s: float


def _backoff_delay_s(
    attempt: int, hint_s: float, base_s: float, cap_s: float
) -> float:
    """The retry policy both clients share.

    Args:
        attempt: Zero-based index of the attempt that just got BUSY.
        hint_s: The server's ``retry_after_s`` hint.
        base_s: First-retry backoff.
        cap_s: Upper bound of any single delay.

    Returns:
        Seconds to wait before the next attempt.
    """
    return min(cap_s, max(hint_s, base_s * (2.0**attempt)))


def _request_payload(
    wire_id,
    model_id: str,
    images: np.ndarray,
    ref: str,
    send_full: bool,
    sla: str,
    deadline_s: Optional[float],
) -> dict:
    """Build one REQUEST payload, by reference or with the full tensor."""
    payload: dict = {"id": wire_id, "model_id": model_id, "sla": sla}
    if deadline_s is not None:
        payload["deadline_s"] = deadline_s
    if send_full:
        payload["images"] = encode_images(images)
    else:
        payload["images_ref"] = ref
    return payload


def _result_from_response(payload: dict, attempts: int, latency_s: float) -> GatewayResult:
    """Convert a RESPONSE payload into a :class:`GatewayResult`."""
    return GatewayResult(
        predictions=np.asarray(payload["predictions"]),
        request_id=int(payload["request_id"]),
        trace=payload.get("trace", {}),
        images_ref=payload.get("images_ref"),
        attempts=attempts,
        wire_latency_s=latency_s,
    )


class _PooledConnection:
    """One blocking socket plus its incremental decoder."""

    def __init__(self, host: str, port: int, timeout_s: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()

    def close(self) -> None:
        """Close the socket, ignoring teardown races."""
        try:
            self.sock.close()
        except OSError:
            pass

    def roundtrip(self, frame: bytes):
        """Send one frame and block for the next reply on the stream.

        Unsolicited ``DRAIN`` notices (a server beginning its graceful
        shutdown) are skipped — the caller still gets its terminal frame.

        Returns:
            The ``(frame_type, payload)`` of the reply.

        Raises:
            ConnectionError: If the server closes the stream first.
        """
        self.sock.sendall(frame)
        while True:
            for decoded in self.decoder.feed(b""):
                if decoded[0] is not FrameType.DRAIN:
                    return decoded
            chunk = self.sock.recv(64 * 1024)
            if not chunk:
                raise ConnectionError("server closed the connection")
            for decoded in self.decoder.feed(chunk):
                if decoded[0] is not FrameType.DRAIN:
                    return decoded


class GatewayClient:
    """Synchronous gateway client with connection pooling and retry.

    Thread-safe: up to ``pool_size`` threads issue requests concurrently,
    each on its own pooled connection (strict request/response per
    connection keeps demultiplexing trivial; use
    :class:`AsyncGatewayClient` for pipelining).

    Args:
        host: Gateway host.
        port: Gateway port.
        pool_size: Maximum concurrently open connections.
        retries: Admission attempts before :class:`GatewayBusyError`.
        backoff_base_s: First-retry backoff (doubles per attempt).
        backoff_cap_s: Upper bound of any single backoff delay.
        timeout_s: Socket connect/read timeout.
        sleep: Injectable sleep for the backoff waits (tests pass a
            recorder; production leaves ``time.sleep``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        retries: int = 6,
        backoff_base_s: float = 0.01,
        backoff_cap_s: float = 1.0,
        timeout_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._sleep = sleep
        self._idle: List[_PooledConnection] = []
        self._slots = threading.BoundedSemaphore(pool_size)
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._known_refs: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Pool plumbing
    # ------------------------------------------------------------------ #
    def _checkout(self) -> _PooledConnection:
        """Borrow a pooled connection (opening one when none is idle)."""
        self._slots.acquire()
        with self._lock:
            if self._idle:
                return self._idle.pop()
        try:
            return _PooledConnection(self.host, self.port, self.timeout_s)
        except BaseException:
            self._slots.release()
            raise

    def _checkin(self, connection: Optional[_PooledConnection]) -> None:
        """Return a connection to the pool (None = it died, drop the slot)."""
        if connection is not None:
            with self._lock:
                self._idle.append(connection)
        self._slots.release()

    def close(self) -> None:
        """Close every idle pooled connection (idempotent)."""
        self._closed = True
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "GatewayClient":
        """The client is its own context value."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Close the pool on exit."""
        self.close()

    # ------------------------------------------------------------------ #
    # Wire operations
    # ------------------------------------------------------------------ #
    def predict(
        self,
        model_id: str,
        images: np.ndarray,
        sla: str = "best_effort",
        deadline_s: Optional[float] = None,
    ) -> GatewayResult:
        """Run one inference over the wire.

        Args:
            model_id: Registered model to run.
            images: ``(batch, channels, height, width)`` image tensor.
            sla: Wire SLA class name (``latency`` / ``throughput`` /
                ``best_effort``).
            deadline_s: Virtual-time deadline (required by the server for
                the latency class).

        Returns:
            The :class:`GatewayResult` with predictions and trace.

        Raises:
            GatewayBusyError: Admission kept failing past the retry budget.
            GatewayRequestError: The server rejected or failed the request.
            GatewayError: The connection died repeatedly or the server
                answered out of protocol.
        """
        images = np.asarray(images, dtype=np.float64)
        ref = images_digest(images)
        send_full = ref not in self._known_refs
        last_hint = 0.0
        draining = False
        for attempt in range(self.retries + 1):
            wire_id = next(self._ids)
            payload = _request_payload(
                wire_id, model_id, images, ref, send_full, sla, deadline_s
            )
            frame_type, reply, latency_s = self._roundtrip(
                encode_frame(FrameType.REQUEST, payload)
            )
            if frame_type is FrameType.RESPONSE:
                self._known_refs.add(ref)
                return _result_from_response(reply, attempt + 1, latency_s)
            if frame_type is FrameType.BUSY:
                last_hint = float(reply.get("retry_after_s", 0.0))
                draining = bool(reply.get("draining", False))
                if attempt < self.retries:
                    self._sleep(
                        _backoff_delay_s(
                            attempt, last_hint, self.backoff_base_s, self.backoff_cap_s
                        )
                    )
                continue
            if frame_type is FrameType.ERROR:
                if reply.get("code") == "unknown_images_ref" and not send_full:
                    # A restarted server lost its cache: re-upload once.
                    self._known_refs.discard(ref)
                    send_full = True
                    continue
                raise GatewayRequestError(
                    reply.get("code", "unknown"), reply.get("message", "")
                )
            raise GatewayError(f"unexpected frame {frame_type.name} to a request")
        raise GatewayBusyError(
            f"server still busy after {self.retries + 1} attempts",
            retry_after_s=last_hint,
            draining=draining,
        )

    def ping(self) -> float:
        """Round-trip a PING; returns the wall-clock latency in seconds."""
        _, _, latency_s = self._roundtrip(
            encode_frame(FrameType.PING, {"id": next(self._ids)})
        )
        return latency_s

    def stats(self) -> Dict[str, float]:
        """Fetch the server's counters via the wire STATS query."""
        frame_type, reply, _ = self._roundtrip(
            encode_frame(FrameType.STATS, {"id": next(self._ids)})
        )
        if frame_type is not FrameType.STATS:
            raise GatewayError(f"unexpected frame {frame_type.name} to STATS")
        return reply["stats"]

    def metrics(self) -> dict:
        """Scrape the server's full metrics registry (wire METRICS query).

        Returns the JSON-safe registry snapshot (see
        ``repro.obs.MetricsRegistry.snapshot``); render it with
        ``repro.obs.render_prometheus`` / ``render_json`` or feed it to
        ``python -m repro.obs report``.  METRICS is a protocol revision-2
        frame, so this raises against a pre-revision-2 server.
        """
        frame_type, reply, _ = self._roundtrip(
            encode_frame(FrameType.METRICS, {"id": next(self._ids)})
        )
        if frame_type is not FrameType.METRICS:
            raise GatewayError(f"unexpected frame {frame_type.name} to METRICS")
        return reply["snapshot"]

    def _roundtrip(self, frame: bytes):
        """One request/response exchange on a pooled connection.

        Reconnects once on a dead pooled socket (idle connections outlive
        server restarts); a second consecutive failure propagates.

        Returns:
            ``(frame_type, payload, wall_latency_s)``.
        """
        if self._closed:
            raise GatewayError("client is closed")
        connection = self._checkout()
        try:
            try:
                started = time.perf_counter()
                frame_type, payload = connection.roundtrip(frame)
            except (ConnectionError, OSError, ProtocolError):
                # A pooled socket can outlive a server restart: reconnect
                # once and resend (inference is stateless, so a re-run of
                # a possibly-served request is safe — see PROTOCOL.md).
                connection.close()
                connection = _PooledConnection(self.host, self.port, self.timeout_s)
                started = time.perf_counter()
                frame_type, payload = connection.roundtrip(frame)
        except BaseException:
            connection.close()
            self._checkin(None)
            raise
        self._checkin(connection)
        return frame_type, payload, time.perf_counter() - started


class AsyncGatewayClient:
    """Pipelined asyncio client: many requests in flight on one stream.

    A single reader task demultiplexes replies by the echoed request id,
    so callers simply ``await predict(...)`` concurrently; BUSY retries
    re-submit under a fresh id after an (injectable) async sleep.

    Args:
        host: Gateway host.
        port: Gateway port.
        retries: Admission attempts before :class:`GatewayBusyError`.
        backoff_base_s: First-retry backoff (doubles per attempt).
        backoff_cap_s: Upper bound of any single backoff delay.
        sleep: Injectable async sleep (tests pass a recorder).
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 6,
        backoff_base_s: float = 0.01,
        backoff_cap_s: float = 1.0,
        sleep=asyncio.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[object, asyncio.Future] = {}
        self._ids = itertools.count()
        self._known_refs: set = set()
        self.drained = False

    async def connect(self) -> None:
        """Open the stream and start the demultiplexing reader task."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        """Close the stream and cancel the reader task (idempotent)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def __aenter__(self) -> "AsyncGatewayClient":
        """Connect on entry."""
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        """Close on exit."""
        await self.close()

    async def _read_loop(self) -> None:
        """Route every inbound frame to the future waiting on its id."""
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await self._reader.read(64 * 1024)
                if not chunk:
                    raise ConnectionError("server closed the connection")
                for frame_type, payload in decoder.feed(chunk):
                    if frame_type is FrameType.DRAIN:
                        self.drained = True
                        continue
                    waiter = self._waiters.pop(payload.get("id"), None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result((frame_type, payload))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - fan the failure out
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(GatewayError(str(error)))
            self._waiters.clear()

    async def _exchange(self, frame_type: FrameType, payload: dict):
        """Send one frame and await the reply frame with the same id."""
        waiter = asyncio.get_event_loop().create_future()
        self._waiters[payload["id"]] = waiter
        self._writer.write(encode_frame(frame_type, payload))
        await self._writer.drain()
        return await waiter

    async def predict(
        self,
        model_id: str,
        images: np.ndarray,
        sla: str = "best_effort",
        deadline_s: Optional[float] = None,
    ) -> GatewayResult:
        """Run one inference over the pipelined stream.

        Args:
            model_id: Registered model to run.
            images: ``(batch, channels, height, width)`` image tensor.
            sla: Wire SLA class name.
            deadline_s: Virtual-time deadline (latency class).

        Returns:
            The :class:`GatewayResult`.

        Raises:
            GatewayBusyError: Admission kept failing past the retry budget.
            GatewayRequestError: The server rejected or failed the request.
            GatewayError: The stream failed.
        """
        images = np.asarray(images, dtype=np.float64)
        ref = images_digest(images)
        send_full = ref not in self._known_refs
        last_hint = 0.0
        draining = False
        for attempt in range(self.retries + 1):
            wire_id = next(self._ids)
            started = time.perf_counter()
            frame_type, reply = await self._exchange(
                FrameType.REQUEST,
                _request_payload(
                    wire_id, model_id, images, ref, send_full, sla, deadline_s
                ),
            )
            latency_s = time.perf_counter() - started
            if frame_type is FrameType.RESPONSE:
                self._known_refs.add(ref)
                return _result_from_response(reply, attempt + 1, latency_s)
            if frame_type is FrameType.BUSY:
                last_hint = float(reply.get("retry_after_s", 0.0))
                draining = bool(reply.get("draining", False))
                if attempt < self.retries:
                    await self._sleep(
                        _backoff_delay_s(
                            attempt, last_hint, self.backoff_base_s, self.backoff_cap_s
                        )
                    )
                continue
            if frame_type is FrameType.ERROR:
                if reply.get("code") == "unknown_images_ref" and not send_full:
                    self._known_refs.discard(ref)
                    send_full = True
                    continue
                raise GatewayRequestError(
                    reply.get("code", "unknown"), reply.get("message", "")
                )
            raise GatewayError(f"unexpected frame {frame_type.name} to a request")
        raise GatewayBusyError(
            f"server still busy after {self.retries + 1} attempts",
            retry_after_s=last_hint,
            draining=draining,
        )

    async def stats(self) -> Dict[str, float]:
        """Fetch the server's counters via the wire STATS query."""
        frame_type, reply = await self._exchange(
            FrameType.STATS, {"id": next(self._ids)}
        )
        if frame_type is not FrameType.STATS:
            raise GatewayError(f"unexpected frame {frame_type.name} to STATS")
        return reply["stats"]
