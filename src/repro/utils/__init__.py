"""Generic helpers shared by every subsystem.

The helpers are intentionally free of any architecture knowledge: they deal
with bits, two's-complement encodings, fixed-point values and argument
validation only.
"""

from repro.utils.bitops import (
    bit_length_for,
    bits_to_int,
    bitwise_not,
    from_twos_complement,
    int_to_bits,
    mask,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    sign_extend,
    to_twos_complement,
)
from repro.utils.fixedpoint import FixedPointFormat, dequantize_value, quantize_value
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "bit_length_for",
    "bits_to_int",
    "bitwise_not",
    "from_twos_complement",
    "int_to_bits",
    "mask",
    "popcount",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
    "sign_extend",
    "to_twos_complement",
    "FixedPointFormat",
    "quantize_value",
    "dequantize_value",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
