"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, times the
experiment with pytest-benchmark, and prints the regenerated rows/series so
the output can be compared line by line against the publication (the
paper-vs-measured record lives in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def _format_block(title: str, body: str) -> str:
    banner = "=" * max(len(title), 20)
    return f"\n{banner}\n{title}\n{banner}\n{body}\n"


@pytest.fixture()
def reporter(capsys):
    """Print helper that bypasses pytest's output capture.

    Using ``capsys.disabled()`` means the regenerated tables/figures appear
    directly in the terminal output, so
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
    them without needing ``-s``.
    """

    def print_block(title: str, body: str) -> None:
        with capsys.disabled():
            print(_format_block(title, body))

    return print_block
