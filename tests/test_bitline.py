"""Unit tests for the bit-line compute transient model (repro.circuits.bitline)
and the BL boosting circuit / sense amplifier it composes."""

import pytest

from repro.circuits.bitline import Bitline, BitlineComputeModel
from repro.circuits.blboost import BitlineBooster
from repro.circuits.senseamp import SenseAmplifier
from repro.circuits.wordline import WordlineScheme
from repro.tech import OperatingPoint, ProcessCorner


@pytest.fixture()
def model(technology, calibration):
    return BitlineComputeModel(technology, calibration, rows=128)


class TestBitline:
    def test_capacitance_scales_with_rows(self, calibration):
        short = Bitline(rows=128, calibration=calibration).capacitance
        long = Bitline(rows=1024, calibration=calibration).capacitance
        assert long > short
        assert long < 8.5 * short  # fixed wire component keeps it sub-linear

    def test_capacitance_is_tens_of_femtofarads(self, calibration):
        capacitance = Bitline(rows=128, calibration=calibration).capacitance
        assert 5e-15 < capacitance < 100e-15


class TestBitlineBooster:
    def test_trigger_swing_from_calibration(self, technology, calibration):
        booster = BitlineBooster(technology, calibration)
        assert booster.trigger_swing == pytest.approx(
            calibration.bitline.boost_trigger_v
        )

    def test_boost_current_exceeds_cell_current(self, technology, calibration, model):
        booster = BitlineBooster(technology, calibration)
        point = OperatingPoint()
        cell = model.cell_discharge_current(point, wl_voltage=point.vdd)
        assert booster.boost_current(point) > 2 * cell

    def test_residual_time_zero_when_no_swing_left(self, technology, calibration):
        booster = BitlineBooster(technology, calibration)
        assert booster.residual_discharge_time(0.0, 20e-15, OperatingPoint()) == 0.0

    def test_residual_time_positive(self, technology, calibration):
        booster = BitlineBooster(technology, calibration)
        assert booster.residual_discharge_time(0.1, 20e-15, OperatingPoint()) > 0.0


class TestSenseAmplifier:
    def test_resolve_time_reference(self, technology, calibration):
        sense_amp = SenseAmplifier(technology, calibration)
        resolve = sense_amp.resolve_time(OperatingPoint(vdd=0.9))
        assert resolve == pytest.approx(130e-12, rel=1e-6)

    def test_resolve_time_slows_at_low_voltage(self, technology, calibration):
        sense_amp = SenseAmplifier(technology, calibration)
        assert sense_amp.resolve_time(OperatingPoint(vdd=0.6)) > sense_amp.resolve_time(
            OperatingPoint(vdd=1.0)
        )

    def test_output_polarity(self, technology, calibration):
        sense_amp = SenseAmplifier(technology, calibration)
        assert sense_amp.output(bitline_low=True) == 0
        assert sense_amp.output(bitline_low=False) == 1


class TestBitlineComputeModel:
    def test_proposed_scheme_triggers_boost(self, model):
        result = model.compute(OperatingPoint(), WordlineScheme.SHORT_PULSE_BOOST)
        assert result.boosted is True
        assert result.trigger_time_s < result.pulse.width_s

    def test_wlud_scheme_does_not_boost(self, model):
        result = model.compute(OperatingPoint(), WordlineScheme.WLUD)
        assert result.boosted is False

    def test_proposed_is_much_faster_than_wlud(self, model):
        point = OperatingPoint()
        proposed = model.compute_delay(point, WordlineScheme.SHORT_PULSE_BOOST)
        wlud = model.compute_delay(point, WordlineScheme.WLUD)
        assert proposed < 0.35 * wlud

    def test_proposed_delay_near_paper_breakdown(self, model):
        # WL activation (140 ps) + BL sensing (130 ps) = 270 ps at 0.9 V NN.
        delay = model.compute_delay(OperatingPoint(vdd=0.9))
        assert delay == pytest.approx(270e-12, rel=0.1)

    def test_weak_cell_increases_delay(self, model):
        point = OperatingPoint()
        nominal = model.compute_delay(point, WordlineScheme.WLUD)
        weak = model.compute_delay(point, WordlineScheme.WLUD, cell_vth_shift=0.05)
        assert weak > nominal

    def test_weak_cell_affects_proposed_much_less(self, model):
        point = OperatingPoint()
        shift = 0.05
        proposed_ratio = model.compute_delay(
            point, WordlineScheme.SHORT_PULSE_BOOST, cell_vth_shift=shift
        ) / model.compute_delay(point, WordlineScheme.SHORT_PULSE_BOOST)
        wlud_ratio = model.compute_delay(
            point, WordlineScheme.WLUD, cell_vth_shift=shift
        ) / model.compute_delay(point, WordlineScheme.WLUD)
        assert proposed_ratio < wlud_ratio

    def test_delay_increases_at_slow_corner(self, model):
        nn = model.compute_delay(OperatingPoint(corner=ProcessCorner.NN))
        ss = model.compute_delay(OperatingPoint(corner=ProcessCorner.SS))
        ff = model.compute_delay(OperatingPoint(corner=ProcessCorner.FF))
        assert ss > nn > ff

    def test_sensing_component_matches_breakdown_slice(self, model):
        sensing = model.sensing_component(OperatingPoint(vdd=0.9))
        assert sensing == pytest.approx(130e-12, rel=0.05)

    def test_longer_bitline_slows_wlud_compute(self, technology, calibration):
        short = BitlineComputeModel(technology, calibration, rows=128)
        long = BitlineComputeModel(technology, calibration, rows=512)
        point = OperatingPoint()
        assert long.compute_delay(point, WordlineScheme.WLUD) > short.compute_delay(
            point, WordlineScheme.WLUD
        )

    def test_swing_at_pulse_end_reported(self, model):
        result = model.compute(OperatingPoint(), WordlineScheme.SHORT_PULSE_BOOST)
        assert 0.0 < result.swing_at_pulse_end_v <= OperatingPoint().vdd
