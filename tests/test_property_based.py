"""Property-based tests (hypothesis) on the core data structures and the
bit-exact equivalence between the in-memory arithmetic and ordinary integers."""

import numpy as np
from hypothesis import given, strategies as st

from repro.baselines.bitserial import BitSerialIMC
from repro.baselines.logicfa import LogicGateRippleAdder
from repro.core import IMCMacro, MacroConfig, Opcode
from repro.core.array import BitlineComputeOutput
from repro.core.periphery import ColumnPeriphery
from repro.core.ypath import fa_from_bitline
from repro.utils.bitops import (
    bits_to_int,
    bitwise_not,
    from_twos_complement,
    int_to_bits,
    reverse_bits,
    to_twos_complement,
)


#: One shared macro per precision keeps the hypothesis runs fast.
_MACROS = {}


def _macro(precision: int) -> IMCMacro:
    if precision not in _MACROS:
        _MACROS[precision] = IMCMacro(MacroConfig(precision_bits=precision))
    return _MACROS[precision]


# Hypothesis policy (example counts, derandomization, health checks) comes
# from the shared profiles in conftest.py: "ci" by default, "nightly" via
# REPRO_HYPOTHESIS_PROFILE=nightly.


# ---------------------------------------------------------------------- #
# Bit-level utilities
# ---------------------------------------------------------------------- #
class TestBitopsProperties:
    @given(value=st.integers(min_value=0, max_value=2**32 - 1), width=st.just(32))
    def test_int_bits_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(value=st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_twos_complement_roundtrip(self, value):
        assert from_twos_complement(to_twos_complement(value, 16), 16) == value

    @given(value=st.integers(min_value=0, max_value=255))
    def test_double_complement_is_identity(self, value):
        assert bitwise_not(bitwise_not(value, 8), 8) == value

    @given(value=st.integers(min_value=0, max_value=255))
    def test_reverse_is_involution(self, value):
        assert reverse_bits(reverse_bits(value, 8), 8) == value


# ---------------------------------------------------------------------- #
# FA-Logics equations
# ---------------------------------------------------------------------- #
class TestFullAdderProperties:
    @given(a=st.integers(0, 1), b=st.integers(0, 1), carry=st.integers(0, 1))
    def test_fa_from_bitline_equals_integer_addition(self, a, b, carry):
        and_ab = a & b
        nor_ab = 1 - (a | b)
        sum_bit, carry_out = fa_from_bitline(and_ab, nor_ab, carry)
        assert 2 * carry_out + sum_bit == a + b + carry

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        carry=st.integers(0, 1),
    )
    def test_ripple_chain_equals_integer_addition(self, a, b, carry):
        periphery = ColumnPeriphery(active_columns=8)
        bits_a = np.array(int_to_bits(a, 8), dtype=np.int64)
        bits_b = np.array(int_to_bits(b, 8), dtype=np.int64)
        output = BitlineComputeOutput(
            and_bits=(bits_a & bits_b).astype(np.uint8),
            nor_bits=(1 - (bits_a | bits_b)).astype(np.uint8),
            dual_wordline=True,
        )
        result = periphery.ripple_add(output, [(0, 8)], carry_in=carry)
        assert result.group_value(0) + 256 * result.carry_out[0] == a + b + carry

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        carry=st.integers(0, 1),
    )
    def test_logic_gate_adder_equals_integer_addition(self, a, b, carry):
        adder = LogicGateRippleAdder(width=8)
        total, carry_out = adder.add(a, b, carry_in=carry)
        assert total + 256 * carry_out == a + b + carry


# ---------------------------------------------------------------------- #
# Macro arithmetic vs plain integers
# ---------------------------------------------------------------------- #
class TestMacroArithmeticProperties:
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_add_matches_modular_integer_addition(self, a, b):
        assert _macro(8).add(a, b) == (a + b) % 256

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_sub_matches_twos_complement(self, a, b):
        assert _macro(8).subtract(a, b) == (a - b) % 256

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_mult_matches_full_product(self, a, b):
        assert _macro(8).multiply(a, b) == a * b

    @given(
        a=st.integers(min_value=0, max_value=15),
        b=st.integers(min_value=0, max_value=15),
    )
    def test_4bit_mult_matches_full_product(self, a, b):
        assert _macro(4).multiply(a, b) == a * b

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_logic_identities(self, a, b):
        macro = _macro(8)
        assert macro.compute(Opcode.XOR, a, b) == (
            macro.compute(Opcode.OR, a, b) & macro.compute(Opcode.NAND, a, b)
        )
        assert macro.compute(Opcode.XNOR, a, b) == 255 - macro.compute(Opcode.XOR, a, b)

    @given(a=st.integers(min_value=0, max_value=255))
    def test_add_shift_is_add_then_shift(self, a):
        macro = _macro(8)
        assert macro.compute(Opcode.ADD_SHIFT, a, a) == ((2 * a) << 1) % 256

    @given(
        values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=9),
    )
    def test_elementwise_matches_scalar_results(self, values):
        macro = _macro(8)
        doubled = macro.elementwise(Opcode.ADD, values, values)
        assert doubled == [(2 * v) % 256 for v in values]


# ---------------------------------------------------------------------- #
# Proposed macro vs bit-serial baseline (cross-simulator agreement)
# ---------------------------------------------------------------------- #
class TestCrossSimulatorProperties:
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        opcode=st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MULT, Opcode.XOR]),
    )
    def test_bit_parallel_and_bit_serial_agree(self, a, b, opcode):
        proposed = _macro(8).compute(opcode, a, b)
        serial = BitSerialIMC().elementwise(opcode, [a], [b], 8).values[0]
        assert proposed == serial


# ---------------------------------------------------------------------- #
# Energy model invariants
# ---------------------------------------------------------------------- #
class TestEnergyProperties:
    @given(
        bits=st.sampled_from([2, 4, 8, 16]),
        vdd=st.floats(min_value=0.6, max_value=1.1),
    )
    def test_separator_never_increases_energy(self, bits, vdd, calibration):
        from repro.circuits.energy import OperationEnergyModel

        model = OperationEnergyModel(calibration)
        for method in (model.sub_energy, model.mult_energy, model.add_shift_energy):
            assert (
                method(bits, vdd=vdd, bl_separator=True).total_j
                <= method(bits, vdd=vdd, bl_separator=False).total_j
            )

    @given(bits=st.sampled_from([2, 4, 8]))
    def test_mult_energy_exceeds_add_energy(self, bits, calibration):
        from repro.circuits.energy import OperationEnergyModel

        model = OperationEnergyModel(calibration)
        assert model.mult_energy(bits).total_j > model.add_energy(bits).total_j

    @given(
        low=st.floats(min_value=0.6, max_value=0.84),
        high=st.floats(min_value=0.85, max_value=1.1),
    )
    def test_energy_monotone_in_voltage(self, low, high, calibration):
        from repro.circuits.energy import OperationEnergyModel

        model = OperationEnergyModel(calibration)
        assert model.add_energy(8, vdd=low).total_j < model.add_energy(8, vdd=high).total_j


# ---------------------------------------------------------------------- #
# Timing model invariants
# ---------------------------------------------------------------------- #
class TestTimingProperties:
    @given(vdd=st.floats(min_value=0.6, max_value=1.09))
    def test_frequency_increases_with_voltage(self, vdd, technology, calibration):
        from repro.circuits.frequency import FrequencyModel

        model = FrequencyModel(technology, calibration)
        assert (
            model.max_frequency(vdd).max_frequency_hz
            < model.max_frequency(min(vdd + 0.01, 1.1)).max_frequency_hz
        )

    @given(bits=st.sampled_from([2, 4, 8, 16]))
    def test_cycle_time_grows_with_precision(self, bits, technology, calibration):
        from repro.circuits.delay import CycleDelayModel
        from repro.tech import OperatingPoint

        model = CycleDelayModel(technology, calibration)
        point = OperatingPoint()
        if bits < 16:
            assert model.cycle_time(point, bits) < model.cycle_time(point, 2 * bits)


# ---------------------------------------------------------------------- #
# Kernel and program invariants
# ---------------------------------------------------------------------- #
class TestKernelProperties:
    @given(
        values=st.lists(
            st.integers(min_value=-127, max_value=127), min_size=2, max_size=8
        ),
    )
    def test_dot_product_matches_numpy(self, values):
        from repro.core.kernels import VectorKernels

        kernels = VectorKernels(_macro(8), precision_bits=8)
        mirrored = list(reversed(values))
        expected = int(np.dot(values, mirrored))
        assert kernels.dot(values, mirrored).value == expected

    @given(
        a=st.lists(st.integers(min_value=-127, max_value=127), min_size=1, max_size=8),
    )
    def test_signed_add_then_subtract_roundtrips(self, a):
        from repro.core.kernels import VectorKernels

        kernels = VectorKernels(_macro(8), precision_bits=8)
        b = [((-v) if abs(v) < 64 else 0) for v in a]
        total = kernels.add(a, b).values
        back = kernels.subtract(total, b).values
        assert back == a


class TestProgramProperties:
    @given(
        opcodes=st.lists(
            st.sampled_from(
                [Opcode.ADD, Opcode.SUB, Opcode.MULT, Opcode.XOR, Opcode.NOT]
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_trace_cycles_equal_static_estimate(self, opcodes):
        from repro.core.program import Instruction, Program, ProgramExecutor

        program = Program(name="generated")
        for index, opcode in enumerate(opcodes):
            row_a = index % 8
            row_b = (index % 8) + 8 if opcode.is_dual_wordline else None
            dest = 20 + (index % 8)
            program.append(
                Instruction(opcode, row_a=row_a, row_b=row_b, dest_row=dest)
            )
        macro = IMCMacro(MacroConfig())
        trace = ProgramExecutor(macro).run(program)
        assert trace.total_cycles == program.cycle_estimate(macro.precision_bits)
