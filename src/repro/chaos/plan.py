"""Seeded, deterministic chaos scripting for the wire layer.

A :class:`ChaosPlan` is the wire-level mirror of
:class:`~repro.reliability.faults.FaultPlan`: where a ``FaultPlan`` scripts
*node* failures on the cluster's virtual clock, a ``ChaosPlan`` scripts
*transport* failures on the byte stream between a client and a live
:class:`~repro.gateway.server.GatewayServer` — connection resets,
byte-level frame corruption, latency spikes, throttled/partial writes and
slow-loris readers.  The plan is applied by :class:`~repro.chaos.proxy.ChaosProxy`,
a TCP interposer sitting between the two.

Determinism contract: every injection decision is drawn from a
``random.Random`` seeded by ``(plan seed, connection index)``, one draw
per rule per forwarded frame, in rule order.  Given the same seed and the
same per-connection frame sequence, the proxy injects the identical fault
sequence — a chaos run is a *scripted input*, not noise, exactly as a
``FaultPlan`` replay is.

Corruption detectability: the wire's JSON framing carries no payload
checksum, so a byte flip that happens to leave a decodable frame would be
indistinguishable from legitimate traffic (and would silently break the
zero-acknowledged-loss accounting every resilience gate rests on).  The
proxy therefore guarantees every injected corruption is *detectable*: if
the flipped bytes still decode as a valid frame, the frame's magic is
mangled too, forcing the server's ``malformed_frame`` path.  Undetectable
corruption needs an end-to-end payload digest, which the protocol does not
yet define (see docs/PROTOCOL.md §2.1, reserved bits).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["ChaosKind", "ChaosRule", "ChaosPlan"]


class ChaosKind(enum.Enum):
    """What the proxy does to the stream when the rule fires."""

    #: Abort both sides of the link (RST-style, mid-stream).
    RESET = "reset"
    #: Flip payload bytes of one client->server frame (made detectable).
    CORRUPT = "corrupt"
    #: Hold one client->server frame for ``delay_s`` (latency spike).
    DELAY = "delay"
    #: Forward one frame in ``chunk_bytes`` pieces with ``delay_s`` gaps
    #: between them (throttled/partial writes).
    THROTTLE = "throttle"
    #: Pause reading the server->client direction for ``delay_s`` — the
    #: slow-loris reader, exercising the gateway's write-side flow control.
    STALL_READ = "stall_read"


@dataclass(frozen=True)
class ChaosRule:
    """One probabilistic injection rule, evaluated per forwarded frame.

    Attributes:
        kind: The fault injected when the rule fires.
        probability: Per-evaluation firing probability in ``[0, 1]``.
        delay_s: DELAY / STALL_READ pause; THROTTLE inter-chunk gap.
        chunk_bytes: THROTTLE only — partial-write size in bytes.
        flip_bytes: CORRUPT only — how many payload bytes to flip.
        after_frames: The rule arms only once this many frames have been
            forwarded on the connection (lets a link establish before the
            chaos starts, mirroring ``FaultEvent.at_s``).
    """

    kind: ChaosKind
    probability: float
    delay_s: float = 0.0
    chunk_bytes: int = 0
    flip_bytes: int = 1
    after_frames: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("chaos rule probability must be in [0, 1]")
        if self.after_frames < 0:
            raise ConfigurationError("after_frames must be non-negative")
        if self.kind in (ChaosKind.DELAY, ChaosKind.STALL_READ) and self.delay_s <= 0:
            raise ConfigurationError(f"{self.kind.value} rules need a positive delay_s")
        if self.kind is ChaosKind.THROTTLE and self.chunk_bytes <= 0:
            raise ConfigurationError("throttle rules need a positive chunk_bytes")
        if self.kind is ChaosKind.CORRUPT and self.flip_bytes <= 0:
            raise ConfigurationError("corrupt rules need a positive flip_bytes")


class ChaosPlan:
    """An immutable, seeded set of chaos rules.

    Like a :class:`~repro.reliability.faults.FaultPlan`, the plan holds no
    cursor: the proxy derives one RNG per connection from the seed, so the
    same plan can drive many proxies (or repeated runs) identically.
    """

    def __init__(self, rules: Iterable[ChaosRule] = (), seed: int = 0) -> None:
        ordered = list(rules)
        for rule in ordered:
            if not isinstance(rule, ChaosRule):
                raise ConfigurationError(f"not a ChaosRule: {rule!r}")
        self.rules: Tuple[ChaosRule, ...] = tuple(ordered)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def standard(cls, seed: int = 0) -> "ChaosPlan":
        """The standard resilience-gate plan (see bench_gateway_resilience).

        Connection resets, 5% frame corruption and latency spikes — the
        scripted chaos every acceptance number in ``baselines.json`` is
        measured under.
        """
        return cls(
            [
                ChaosRule(ChaosKind.RESET, probability=0.01, after_frames=1),
                ChaosRule(ChaosKind.CORRUPT, probability=0.05, flip_bytes=2),
                ChaosRule(ChaosKind.DELAY, probability=0.02, delay_s=0.005),
                ChaosRule(
                    ChaosKind.THROTTLE,
                    probability=0.02,
                    chunk_bytes=7,
                    delay_s=0.0005,
                ),
                ChaosRule(ChaosKind.STALL_READ, probability=0.01, delay_s=0.005),
            ],
            seed=seed,
        )

    def merged(self, other: "ChaosPlan") -> "ChaosPlan":
        """The union of two plans (this plan's seed wins)."""
        return ChaosPlan(self.rules + other.rules, seed=self.seed)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def rules_for(self, kind: ChaosKind) -> List[ChaosRule]:
        """The plan restricted to one fault kind."""
        return [rule for rule in self.rules if rule.kind is kind]

    def rng_for(self, connection_index: int) -> random.Random:
        """The deterministic decision stream of one proxied connection.

        Seeded by ``seed * 1_000_003 + connection_index`` (an injective
        map for any realistic connection count), so decision sequences are
        reproducible across processes — no string hashing involved.
        """
        return random.Random(self.seed * 1_000_003 + int(connection_index))
