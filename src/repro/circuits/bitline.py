"""Bit-line compute transient model.

This is the model behind Fig. 2 (delay distribution), Fig. 7(a) (delay
across corners) and the "WL activation" / "BL sensing" slices of the Fig. 8
breakdown.  It approximates the BL discharge as piecewise-constant-current
phases:

1. **Cell phase** — while the WL pulse is high, the accessed cell(s)
   discharge the BL with the access-transistor current at the WL drive
   voltage.
2. **Boost phase** (proposed scheme only) — once the swing crosses the boost
   trigger, the booster's large LVT pull-down stack takes over and finishes
   the swing, even after the WL has closed.
3. **Sensing** — once the swing reaches the single-ended SA requirement, the
   SA resolves after its strobe-to-output delay.

For the conventional WLUD scheme there is no boost phase: the weakened cell
must develop the whole sensing swing on its own, which is what produces the
long, variation-sensitive delays of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.circuits.blboost import BitlineBooster
from repro.circuits.senseamp import SenseAmplifier
from repro.circuits.wordline import WordlineDriver, WordlinePulse, WordlineScheme
from repro.tech.calibration import MacroCalibration
from repro.tech.devices import DeviceType, Transistor
from repro.tech.technology import OperatingPoint, TechnologyProfile
from repro.utils.validation import check_positive

__all__ = ["Bitline", "BitlineComputeResult", "BitlineComputeModel"]


@dataclass(frozen=True)
class Bitline:
    """Physical description of one bit line."""

    rows: int
    calibration: MacroCalibration

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)

    @property
    def capacitance(self) -> float:
        """Total BL capacitance in farads (cell diffusion + wire)."""
        bitline = self.calibration.bitline
        return self.rows * bitline.cell_bl_cap_f + bitline.bl_fixed_cap_f


@dataclass(frozen=True)
class BitlineComputeResult:
    """Timing outcome of one BL-computing access."""

    scheme: WordlineScheme
    pulse: WordlinePulse
    trigger_time_s: float
    swing_complete_time_s: float
    sense_resolve_s: float
    total_delay_s: float
    boosted: bool
    swing_at_pulse_end_v: float


class BitlineComputeModel:
    """Computes BL-computing delay for a given drive scheme.

    Parameters
    ----------
    technology / calibration:
        Technology profile and calibrated constants.
    rows:
        Number of cells on the bit line (128 for the paper's macro).
    """

    def __init__(
        self,
        technology: TechnologyProfile,
        calibration: MacroCalibration,
        rows: int = 128,
    ) -> None:
        self.technology = technology
        self.calibration = calibration
        self.bitline = Bitline(rows=rows, calibration=calibration)
        self.booster = BitlineBooster(technology=technology, calibration=calibration)
        self.sense_amp = SenseAmplifier(technology=technology, calibration=calibration)
        self._cell = Transistor(
            technology=technology,
            device_type=DeviceType.NMOS,
            drive_factor=calibration.bitline.cell_drive_factor,
            width_factor=1.0,
            lvt=False,
        )

    # ------------------------------------------------------------------ #
    # Device-level helpers
    # ------------------------------------------------------------------ #
    def cell_discharge_current(
        self,
        point: OperatingPoint,
        wl_voltage: float,
        cell_vth_shift: float = 0.0,
    ) -> float:
        """Discharge current (A) of the accessed cell's access/pull-down path."""
        return self._cell.on_current(point, vgs=wl_voltage, vth_shift=cell_vth_shift)

    def _driver(self, scheme: WordlineScheme) -> WordlineDriver:
        return WordlineDriver(
            technology=self.technology, calibration=self.calibration, scheme=scheme
        )

    # ------------------------------------------------------------------ #
    # Transient evaluation
    # ------------------------------------------------------------------ #
    def compute(
        self,
        point: OperatingPoint,
        scheme: WordlineScheme = WordlineScheme.SHORT_PULSE_BOOST,
        cell_vth_shift: float = 0.0,
        boost_vth_shift: float = 0.0,
        sa_offset_s: float = 0.0,
    ) -> BitlineComputeResult:
        """Evaluate one BL-computing access and return its timing.

        The optional ``*_shift``/``offset`` arguments inject local variation
        (used by :class:`repro.circuits.montecarlo.MonteCarloEngine`).
        """
        if scheme not in WordlineScheme:
            raise ConfigurationError(f"unknown word-line scheme {scheme!r}")

        capacitance = self.bitline.capacitance
        pulse = self._driver(scheme).pulse(point)
        cell_current = self.cell_discharge_current(
            point, wl_voltage=pulse.voltage, cell_vth_shift=cell_vth_shift
        )
        sense_swing = self.sense_amp.required_swing
        use_boost = scheme is WordlineScheme.SHORT_PULSE_BOOST

        if not use_boost:
            # The cell alone must develop the whole sensing swing; the WL is
            # held long enough in these schemes (WLUD / naive full drive).
            swing_time = capacitance * sense_swing / cell_current
            trigger_time = swing_time
            swing_at_pulse_end = min(
                sense_swing, cell_current * pulse.width_s / capacitance
            )
            boosted = False
        else:
            trigger_swing = self.booster.trigger_swing
            trigger_time = capacitance * trigger_swing / cell_current
            swing_at_pulse_end = min(
                point.vdd, cell_current * pulse.width_s / capacitance
            )
            if trigger_time >= pulse.width_s:
                # The cell was too weak to trip the booster inside the pulse;
                # whatever swing exists at pulse end keeps developing only if
                # it already crossed the trigger, otherwise sensing fails
                # slow: fall back to a conservative cell-only evaluation with
                # the swing frozen at pulse end plus booster leakage-free
                # continuation from the trigger point.
                boosted = False
                swing_time = capacitance * sense_swing / cell_current
            else:
                boosted = True
                boost_current = self.booster.boost_current(
                    point, vth_shift=boost_vth_shift
                )
                remaining = sense_swing - trigger_swing
                # While the WL is still high both the cell and the booster
                # discharge the BL; afterwards only the booster does.  Treat
                # the combined phase first.
                combined_current = cell_current + boost_current
                time_left_in_pulse = pulse.width_s - trigger_time
                swing_during_pulse = combined_current * time_left_in_pulse / capacitance
                if swing_during_pulse >= remaining:
                    swing_time = trigger_time + capacitance * remaining / combined_current
                else:
                    after_pulse_swing = remaining - swing_during_pulse
                    swing_time = pulse.width_s + (
                        capacitance * after_pulse_swing / boost_current
                    )

        sense_resolve = self.sense_amp.resolve_time(point, offset_s=sa_offset_s)
        if use_boost:
            # The SA strobe is generated off the WL-pulse timing chain, so the
            # evaluation window is never shorter than the pulse itself.
            evaluation_window = max(swing_time, pulse.width_s)
        else:
            evaluation_window = swing_time
        total = evaluation_window + sense_resolve

        return BitlineComputeResult(
            scheme=scheme,
            pulse=pulse,
            trigger_time_s=trigger_time,
            swing_complete_time_s=swing_time,
            sense_resolve_s=sense_resolve,
            total_delay_s=total,
            boosted=boosted,
            swing_at_pulse_end_v=swing_at_pulse_end,
        )

    def compute_delay(
        self,
        point: OperatingPoint,
        scheme: WordlineScheme = WordlineScheme.SHORT_PULSE_BOOST,
        **variation: float,
    ) -> float:
        """Convenience wrapper returning only the total delay in seconds."""
        return self.compute(point, scheme=scheme, **variation).total_delay_s

    def compute_delays(
        self,
        point: OperatingPoint,
        scheme: WordlineScheme,
        cell_vth_shifts,
        boost_vth_shifts,
        sa_offsets_s,
    ):
        """Vectorised BL-computing delays for a whole variation population.

        The batched counterpart of :meth:`compute_delay`: one call prices
        every Monte-Carlo sample with array arithmetic that mirrors the
        scalar transient evaluation expression for expression; each element
        agrees with the scalar model (which the tests keep as the oracle)
        to floating-point round-off — the only divergence is the last-ulp
        freedom of the vectorised power function.  This is what makes
        Fig. 2-style populations of 10^5+ samples a milliseconds-scale
        operation.
        """

        if scheme not in WordlineScheme:
            raise ConfigurationError(f"unknown word-line scheme {scheme!r}")
        cell_vth_shifts = np.asarray(cell_vth_shifts, dtype=np.float64)
        boost_vth_shifts = np.asarray(boost_vth_shifts, dtype=np.float64)
        sa_offsets_s = np.asarray(sa_offsets_s, dtype=np.float64)

        capacitance = self.bitline.capacitance
        pulse = self._driver(scheme).pulse(point)
        cell_currents = self._cell.on_current_batch(
            point, cell_vth_shifts, vgs=pulse.voltage
        )
        sense_swing = self.sense_amp.required_swing
        use_boost = scheme is WordlineScheme.SHORT_PULSE_BOOST

        if not use_boost:
            swing_times = capacitance * sense_swing / cell_currents
            evaluation_windows = swing_times
        else:
            trigger_swing = self.booster.trigger_swing
            trigger_times = capacitance * trigger_swing / cell_currents
            # Cells too weak to trip the booster inside the pulse fall back
            # to the conservative cell-only evaluation (same branch as the
            # scalar model).
            swing_times = capacitance * sense_swing / cell_currents
            boosted = trigger_times < pulse.width_s
            if boosted.any():
                boost_currents = self.booster.boost_currents(
                    point, boost_vth_shifts[boosted]
                )
                cell_on = cell_currents[boosted]
                trigger_on = trigger_times[boosted]
                remaining = sense_swing - trigger_swing
                combined = cell_on + boost_currents
                time_left = pulse.width_s - trigger_on
                swing_during_pulse = combined * time_left / capacitance
                fits = swing_during_pulse >= remaining
                boosted_times = np.where(
                    fits,
                    trigger_on + capacitance * remaining / combined,
                    pulse.width_s
                    + (capacitance * (remaining - swing_during_pulse) / boost_currents),
                )
                swing_times = swing_times.copy()
                swing_times[boosted] = boosted_times
            # The SA strobe is generated off the WL-pulse timing chain, so
            # the evaluation window is never shorter than the pulse itself.
            evaluation_windows = np.maximum(swing_times, pulse.width_s)

        resolves = self.sense_amp.resolve_times(point, sa_offsets_s)
        return evaluation_windows + resolves

    def sensing_component(self, point: OperatingPoint) -> float:
        """The 'BL sensing' slice of the Fig. 8 breakdown for the proposed
        scheme: whatever swing time extends past the WL pulse, plus the SA
        resolve time."""
        result = self.compute(point, scheme=WordlineScheme.SHORT_PULSE_BOOST)
        residual = max(0.0, result.swing_complete_time_s - result.pulse.width_s)
        return residual + result.sense_resolve_s
