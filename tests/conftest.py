"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import IMCMacro, MacroConfig
from repro.dnn import make_classification_dataset
from repro.tech import CALIBRATED_28NM, OperatingPoint, default_macro_calibration


@pytest.fixture(scope="session")
def technology():
    """The calibrated 28 nm technology profile."""
    return CALIBRATED_28NM


@pytest.fixture(scope="session")
def calibration():
    """The default calibrated constant bundle."""
    return default_macro_calibration()


@pytest.fixture(scope="session")
def nominal_point():
    """The nominal operating point (0.9 V, 25 C, NN)."""
    return OperatingPoint(vdd=0.9)


@pytest.fixture()
def macro():
    """A fresh default macro (128x128, 8-bit precision)."""
    return IMCMacro()


@pytest.fixture()
def small_macro():
    """A small macro (fast for exhaustive sweeps): 32 rows x 32 cols."""
    return IMCMacro(MacroConfig(rows=32, cols=32, precision_bits=4))


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic classification dataset (session-cached)."""
    return make_classification_dataset(
        samples=400, features=10, classes=3, seed=5
    )
