"""Calibrated constants for the 28 nm behavioural models.

The paper reports a handful of absolute anchor numbers from its post-layout
simulation:

* cycle-delay breakdown at 0.9 V / NN / 25 C — BL precharge 60 ps, WL
  activation (short pulse) 140 ps, BL sensing 130 ps, logic (16-bit adder)
  222 ps, write-back 51 ps (Fig. 8 left),
* 2.25 GHz maximum frequency at 1.0 V and 372 MHz at 0.6 V (FF, Fig. 8 right,
  Table III),
* energy per operation for ADD/SUB/MULT at 2/4/8-bit, with and without the BL
  separator (Table II),
* 8.09 / 0.68 TOPS/W for 8-bit ADD / MULT at 0.6 V (Table III),
* WLUD baseline at 0.55 V WL and an iso read-disturb failure rate of 2.5e-5
  (Fig. 2).

The constants below were chosen so the behavioural models land on those
anchors; everything else (corner spread, Monte-Carlo distributions, voltage
scaling, ratios between schemes) is *produced by the models*, not hard-coded.
See DESIGN.md section 5 for the calibration policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import CalibrationError
from repro.tech.technology import TechnologyProfile
from repro.utils.validation import check_positive

__all__ = [
    "TimingCalibration",
    "EnergyCalibration",
    "BitlineCalibration",
    "DisturbCalibration",
    "MacroCalibration",
    "CALIBRATED_28NM",
    "default_macro_calibration",
]


@dataclass(frozen=True)
class TimingCalibration:
    """Reference component delays (seconds) at 0.9 V, NN corner, 25 C.

    ``vth_eff``/``alpha_eff`` define the supply-voltage scaling law used for
    every digital component: ``delay(V) ~ V / (V - vth_eff)^alpha_eff``.
    ``vth_eff_logic_fa`` is slightly higher for the logic-gate FA baseline
    because its stacked-gate carry path loses headroom faster at low supply
    (this is what makes the Fig. 7(b) speed-up grow from ~1.8x at 1.1 V to
    ~2.2x at 0.7 V).
    """

    reference_vdd: float = 0.9
    bl_precharge_s: float = 60e-12
    wl_pulse_s: float = 140e-12
    sense_amp_resolve_s: float = 130e-12
    writeback_separator_s: float = 51e-12
    writeback_no_separator_s: float = 82e-12
    fa_tg_per_bit_s: float = 13e-12
    fa_tg_setup_s: float = 14e-12
    fa_logic_per_bit_s: float = 26e-12
    fa_logic_setup_s: float = 20e-12
    vth_eff: float = 0.43
    vth_eff_logic_fa: float = 0.46
    alpha_eff: float = 2.0
    #: Chip-wide threshold offset (volts) applied on top of any corner
    #: shift — the per-die global variation term chip binning derates
    #: through.  Behaves exactly like a corner shift: the reference delay
    #: stays pinned to the typical die, so a shifted die is slower (or
    #: faster) even at the reference supply.
    vth_global_shift_v: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "reference_vdd",
            "bl_precharge_s",
            "wl_pulse_s",
            "sense_amp_resolve_s",
            "writeback_separator_s",
            "writeback_no_separator_s",
            "fa_tg_per_bit_s",
            "fa_tg_setup_s",
            "fa_logic_per_bit_s",
            "fa_logic_setup_s",
            "alpha_eff",
        ):
            check_positive(name, getattr(self, name))
        if self.vth_eff >= self.reference_vdd:
            raise CalibrationError(
                "effective threshold must be below the reference supply"
            )

    def voltage_scale(self, vdd: float, vth_shift: float = 0.0, logic_fa: bool = False) -> float:
        """Delay multiplier at supply ``vdd`` relative to the reference supply.

        ``vth_shift`` lets callers add a corner shift; ``logic_fa`` selects the
        slightly higher effective threshold of the logic-gate FA baseline.
        """
        base = self.vth_eff_logic_fa if logic_fa else self.vth_eff
        vth = base + vth_shift + self.vth_global_shift_v
        if vdd <= vth + 0.02:
            raise CalibrationError(
                f"supply voltage {vdd} V is too close to the effective threshold "
                f"{vth} V for the delay model to be meaningful"
            )
        # The reference delay is always defined at the typical (NN) corner so
        # that a corner shift changes the delay even at the reference supply.
        reference = self.reference_vdd / (self.reference_vdd - base) ** self.alpha_eff
        scaled = vdd / (vdd - vth) ** self.alpha_eff
        return scaled / reference


@dataclass(frozen=True)
class EnergyCalibration:
    """Per-bit energy components (joules) at the reference supply (0.9 V).

    The decomposition was fit to Table II of the paper:

    * ``ADD(N)   = N * (bl_dual + logic)``
    * ``SUB(N)   = ADD(N) + N * (bl_single + writeback)``
    * ``MULT(N)  = N*writeback + N*(bl_single + writeback) + N^2*(bl_dual +
      logic + writeback)`` (two init cycles that scale with the operand width
      plus N add-and-shift cycles),

    with ``writeback`` taking the separator / no-separator value.  Energy
    scales with supply as ``(V / 0.9)^2``.
    """

    reference_vdd: float = 0.9
    bl_compute_dual_per_bit_j: float = 26.0e-15
    bl_compute_single_per_bit_j: float = 20.0e-15
    logic_per_bit_j: float = 8.35e-15
    writeback_separator_per_bit_j: float = 13.85e-15
    writeback_no_separator_per_bit_j: float = 22.15e-15
    precharge_per_bit_j: float = 0.0
    flipflop_per_bit_j: float = 0.6e-15

    def __post_init__(self) -> None:
        check_positive("reference_vdd", self.reference_vdd)
        for name in (
            "bl_compute_dual_per_bit_j",
            "bl_compute_single_per_bit_j",
            "logic_per_bit_j",
            "writeback_separator_per_bit_j",
            "writeback_no_separator_per_bit_j",
        ):
            check_positive(name, getattr(self, name))

    def voltage_scale(self, vdd: float) -> float:
        """CV^2 energy multiplier relative to the reference supply."""
        check_positive("vdd", vdd)
        return (vdd / self.reference_vdd) ** 2

    def writeback_per_bit(self, bl_separator: bool) -> float:
        """Write-back energy per bit for the chosen BL-separator setting."""
        if bl_separator:
            return self.writeback_separator_per_bit_j
        return self.writeback_no_separator_per_bit_j


@dataclass(frozen=True)
class BitlineCalibration:
    """Electrical constants of the bit-line compute path.

    These drive the transient model used for Fig. 2 / Fig. 7(a):

    * ``cell_bl_cap_f`` / ``bl_fixed_cap_f`` set the bit-line capacitance
      (about 20 fF for a 128-row BL),
    * ``cell_drive_factor`` is the alpha-power drive factor of the bit-cell
      access/pull-down stack,
    * ``boost_drive_factor`` the (much larger) LVT boost pull-down stack,
    * ``boost_trigger_v`` the BL swing at which the booster's P0 device turns
      the mirror node on,
    * ``sense_swing_v`` the swing the single-ended SA needs,
    * ``wlud_wl_voltage`` the under-driven WL level of the conventional
      scheme (0.55 V in the paper),
    * ``sa_resolve_sigma_s`` the one-sigma variation of the SA resolve time
      used in the Monte-Carlo distribution.
    """

    cell_bl_cap_f: float = 0.15e-15
    bl_fixed_cap_f: float = 0.8e-15
    cell_drive_factor: float = 150e-6
    boost_drive_factor: float = 450e-6
    boost_width_factor: float = 1.0
    boost_trigger_v: float = 0.12
    sense_swing_v: float = 0.25
    wlud_wl_voltage: float = 0.55
    sa_resolve_sigma_s: float = 8e-12

    def __post_init__(self) -> None:
        for name in (
            "cell_bl_cap_f",
            "bl_fixed_cap_f",
            "cell_drive_factor",
            "boost_drive_factor",
            "boost_width_factor",
            "boost_trigger_v",
            "sense_swing_v",
            "wlud_wl_voltage",
        ):
            check_positive(name, getattr(self, name))
        if self.boost_trigger_v >= self.sense_swing_v:
            raise CalibrationError(
                "the boost trigger swing must be smaller than the sense swing"
            )


@dataclass(frozen=True)
class DisturbCalibration:
    """Analytic access-disturb-margin (ADM) model.

    The margin shrinks with WL voltage and (logarithmically) with WL exposure
    time; the failure rate is the Gaussian tail probability of the margin over
    its local-variation sigma.  The constants are calibrated so that both the
    paper's operating points — WLUD at 0.55 V with a conventional (long) WL
    pulse and the proposed full-VDD 140 ps short pulse — land at the quoted
    2.5e-5 failure rate.
    """

    adm_nominal_v: float = 0.1388
    wl_voltage_coeff: float = 0.0678
    log_time_coeff_v: float = 0.010
    sigma_adm_v: float = 0.025
    reference_time_s: float = 0.1e-9
    reference_wl_voltage: float = 0.40
    conventional_pulse_s: float = 1.5e-9

    def __post_init__(self) -> None:
        for name in (
            "adm_nominal_v",
            "wl_voltage_coeff",
            "log_time_coeff_v",
            "sigma_adm_v",
            "reference_time_s",
            "reference_wl_voltage",
            "conventional_pulse_s",
        ):
            check_positive(name, getattr(self, name))


@dataclass(frozen=True)
class MacroCalibration:
    """Bundle of every calibrated constant the macro models need."""

    timing: TimingCalibration = field(default_factory=TimingCalibration)
    energy: EnergyCalibration = field(default_factory=EnergyCalibration)
    bitline: BitlineCalibration = field(default_factory=BitlineCalibration)
    disturb: DisturbCalibration = field(default_factory=DisturbCalibration)
    area_overhead_fraction: float = 0.052
    interleave_factor: int = 4

    def __post_init__(self) -> None:
        check_positive("area_overhead_fraction", self.area_overhead_fraction)
        check_positive("interleave_factor", self.interleave_factor)

    def with_variation(
        self,
        bl_speed_scale: float = 1.0,
        energy_scale: float = 1.0,
        vth_shift_v: float = 0.0,
    ) -> "MacroCalibration":
        """A per-chip derated copy of the calibration bundle.

        Chip binning (``repro.reliability``) expresses one die's measured
        variation as three scalars derived from its Monte-Carlo delay
        population and its chip-wide (global) threshold offset:

        * ``bl_speed_scale`` stretches the *variation-limited* bit-line path
          components — precharge and sense-amp resolve — so the chip's safe
          cycle budget covers its own p99.9 delay tail (the Fig. 2 result:
          variation, not the nominal corner, sets the safe frequency).  The
          WL pulse width is a design constant (disturb-calibrated) and is
          not scaled.
        * ``vth_shift_v`` moves the effective threshold of the digital
          (logic/FA/write-back) timing path by the die's global Vth offset
          through the existing ``voltage_scale`` law — a slow (high-Vth)
          die loses digital headroom exactly the way a slow corner does.
        * ``energy_scale`` scales every per-bit switching-energy component
          (a fast, low-Vth die burns more dynamic and short-circuit energy
          per access; a slow die less).

        All default to neutral, returning an identical bundle — the nominal
        chip is the degenerate bin.
        """
        check_positive("bl_speed_scale", bl_speed_scale)
        check_positive("energy_scale", energy_scale)
        if bl_speed_scale == 1.0 and energy_scale == 1.0 and vth_shift_v == 0.0:
            return self
        timing = replace(
            self.timing,
            bl_precharge_s=self.timing.bl_precharge_s * bl_speed_scale,
            sense_amp_resolve_s=self.timing.sense_amp_resolve_s * bl_speed_scale,
            vth_global_shift_v=self.timing.vth_global_shift_v + vth_shift_v,
        )
        energy = replace(
            self.energy,
            bl_compute_dual_per_bit_j=self.energy.bl_compute_dual_per_bit_j
            * energy_scale,
            bl_compute_single_per_bit_j=self.energy.bl_compute_single_per_bit_j
            * energy_scale,
            logic_per_bit_j=self.energy.logic_per_bit_j * energy_scale,
            writeback_separator_per_bit_j=self.energy.writeback_separator_per_bit_j
            * energy_scale,
            writeback_no_separator_per_bit_j=self.energy.writeback_no_separator_per_bit_j
            * energy_scale,
            flipflop_per_bit_j=self.energy.flipflop_per_bit_j * energy_scale,
        )
        return replace(self, timing=timing, energy=energy)


#: The calibrated 28 nm technology profile used throughout the reproduction.
CALIBRATED_28NM = TechnologyProfile(
    name="calibrated-28nm-dac2020",
    node_nm=28.0,
    vdd_nominal=0.9,
    vdd_min=0.6,
    vdd_max=1.1,
    vth_n=0.38,
    vth_p=0.40,
    vth_lvt_offset=0.10,
    alpha=2.0,
    sigma_vth_mismatch=0.025,
    boost_mismatch_scale=0.4,
)


def default_macro_calibration() -> MacroCalibration:
    """Return the default calibrated constant bundle for the 28 nm profile."""
    return MacroCalibration()
