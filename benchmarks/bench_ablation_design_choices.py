"""Ablation study — how much each design choice of the paper contributes.

DESIGN.md calls out three design choices whose benefit the paper quantifies
only indirectly; this benchmark isolates each one:

1. short WL pulse + BL boosting vs WLUD        (cycle time / max frequency)
2. transmission-gate FA-Logics vs logic-gate FA (logic-delay slice)
3. BL separator on vs off                       (write-back energy of MULT)
"""

from repro.analysis.report import format_table
from repro.baselines.wlud import WLUDMacroModel
from repro.circuits.delay import CycleDelayModel
from repro.circuits.energy import OperationEnergyModel
from repro.circuits.fa import AdderStyle, FullAdderTiming
from repro.tech import CALIBRATED_28NM, OperatingPoint, default_macro_calibration


def _run():
    technology = CALIBRATED_28NM
    calibration = default_macro_calibration()
    point = OperatingPoint(vdd=0.9)

    proposed_delay = CycleDelayModel(technology, calibration)
    wlud = WLUDMacroModel(technology=technology, calibration=calibration)
    fa = FullAdderTiming(technology, calibration)
    energy = OperationEnergyModel(calibration)

    proposed_cycle = proposed_delay.cycle_time(point, precision_bits=8)
    wlud_cycle = wlud.cycle_time_s(point, precision_bits=8)
    tg_logic = fa.critical_path_delay(16, point, AdderStyle.TRANSMISSION_GATE)
    gate_logic = fa.critical_path_delay(16, point, AdderStyle.LOGIC_GATE)
    mult_sep = energy.mult_energy(8, bl_separator=True).total_fj
    mult_nosep = energy.mult_energy(8, bl_separator=False).total_fj

    return {
        "wl_scheme": {
            "proposed_cycle_ps": proposed_cycle * 1e12,
            "wlud_cycle_ps": wlud_cycle * 1e12,
            "speedup": wlud_cycle / proposed_cycle,
        },
        "fa_style": {
            "tg_ps": tg_logic * 1e12,
            "logic_ps": gate_logic * 1e12,
            "speedup": gate_logic / tg_logic,
        },
        "bl_separator": {
            "mult_with_fj": mult_sep,
            "mult_without_fj": mult_nosep,
            "saving_percent": 100.0 * (1.0 - mult_sep / mult_nosep),
        },
    }


def _render(result) -> str:
    rows = [
        [
            "short WL + boost vs WLUD",
            f"{result['wl_scheme']['proposed_cycle_ps']:.0f} ps cycle",
            f"{result['wl_scheme']['wlud_cycle_ps']:.0f} ps cycle",
            f"{result['wl_scheme']['speedup']:.2f}x faster clock",
        ],
        [
            "TG FA-Logics vs logic FA",
            f"{result['fa_style']['tg_ps']:.0f} ps (16b)",
            f"{result['fa_style']['logic_ps']:.0f} ps (16b)",
            f"{result['fa_style']['speedup']:.2f}x faster carry path",
        ],
        [
            "BL separator on vs off",
            f"{result['bl_separator']['mult_with_fj']:.0f} fJ 8b MULT",
            f"{result['bl_separator']['mult_without_fj']:.0f} fJ 8b MULT",
            f"{result['bl_separator']['saving_percent']:.1f}% energy saved",
        ],
    ]
    return format_table(
        ["design choice", "with (proposed)", "without (baseline)", "benefit"],
        rows,
        title="Ablation of the three main design choices (0.9 V, NN, 8-bit)",
    )


def test_ablation_design_choices(benchmark, reporter):
    result = benchmark(_run)
    reporter("Ablation — contribution of each design choice", _render(result))
    assert result["wl_scheme"]["speedup"] > 2.0
    assert 1.7 < result["fa_style"]["speedup"] < 2.3
    assert result["bl_separator"]["saving_percent"] > 10.0
