"""Vectorized trace-driven load generation for cluster studies.

Million-request scheduling experiments need million-request workloads, and
synthesising them one Python object at a time would cost more than serving
them on the analytic fast path.  This module builds whole traces as numpy
arrays:

* :func:`poisson_trace` — stationary Poisson arrivals (exponential gaps);
* :func:`diurnal_trace` — an inhomogeneous Poisson process whose rate
  follows a raised-cosine day/night profile, sampled exactly by inverting
  the integrated rate function (no thinning loop);
* :func:`burst_trace` — a stationary baseline overlaid with periodic
  rate-multiplied burst windows, sampled through the same inverse-transform
  machinery.

Every generator decorates the arrival times with vectorized draws of the
request mix: model, SLA class, image count and (for the latency class) a
deadline.  :func:`replay` streams a trace through a
:class:`~repro.cluster.router.ClusterRouter` in arrival order, drawing each
request's images from a finite pool of distinct batches — pool slots double
as the ``input_digest`` the analytic execution mode memoises forwards by —
and drains in bounded chunks so queues (and the per-dispatch reservation
re-chaining) stay short.

Everything is seeded and deterministic: the same seed always produces the
same trace, so trace studies are reproducible down to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.scheduler import SLAClass
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = [
    "WorkloadTrace",
    "poisson_trace",
    "diurnal_trace",
    "burst_trace",
    "replay",
]

#: Canonical SLA order of the ``sla_indices`` column.
SLA_ORDER: Tuple[SLAClass, ...] = (
    SLAClass.LATENCY,
    SLAClass.THROUGHPUT,
    SLAClass.BEST_EFFORT,
)


@dataclass(frozen=True)
class WorkloadTrace:
    """One synthesised request trace, column-oriented.

    ``arrivals_s`` is sorted and non-negative; ``sla_indices`` indexes
    :data:`SLA_ORDER`; ``model_indices`` indexes :attr:`model_ids`;
    ``deadlines_s`` is ``nan`` for requests without a deadline.
    """

    scenario: str
    model_ids: Tuple[str, ...]
    arrivals_s: np.ndarray
    image_counts: np.ndarray
    model_indices: np.ndarray
    sla_indices: np.ndarray
    deadlines_s: np.ndarray

    def __len__(self) -> int:
        return int(self.arrivals_s.shape[0])

    @property
    def duration_s(self) -> float:
        """Span of the trace on the virtual clock."""
        if len(self) == 0:
            return 0.0
        return float(self.arrivals_s[-1])

    @property
    def total_images(self) -> int:
        """Images across every request of the trace."""
        return int(self.image_counts.sum())

    @property
    def mean_rate_rps(self) -> float:
        """Average arrival rate over the trace span."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return len(self) / duration

    def head(self, requests: int) -> "WorkloadTrace":
        """The first ``requests`` arrivals as a trace of their own."""
        return WorkloadTrace(
            scenario=self.scenario,
            model_ids=self.model_ids,
            arrivals_s=self.arrivals_s[:requests],
            image_counts=self.image_counts[:requests],
            model_indices=self.model_indices[:requests],
            sla_indices=self.sla_indices[:requests],
            deadlines_s=self.deadlines_s[:requests],
        )

    def summary(self) -> Dict[str, float]:
        """Flat description for reports."""
        sla_counts = np.bincount(self.sla_indices, minlength=len(SLA_ORDER))
        summary = {
            "requests": float(len(self)),
            "images": float(self.total_images),
            "duration_s": self.duration_s,
            "mean_rate_rps": self.mean_rate_rps,
        }
        for sla, count in zip(SLA_ORDER, sla_counts):
            summary[f"{sla.value}_requests"] = float(count)
        return summary


def _normalised(name: str, weights: Optional[Sequence[float]], size: int) -> np.ndarray:
    if weights is None:
        return np.full(size, 1.0 / size)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (size,) or (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError(
            f"{name} must be {size} non-negative weights with a positive sum"
        )
    return weights / weights.sum()


def _assemble(
    scenario: str,
    arrivals: np.ndarray,
    rng: np.random.Generator,
    model_ids: Sequence[str],
    model_weights: Optional[Sequence[float]],
    image_counts: Sequence[int],
    image_count_weights: Optional[Sequence[float]],
    sla_mix: Optional[Dict[str, float]],
    deadline_s: Optional[float],
) -> WorkloadTrace:
    """Decorate sorted arrivals with the vectorized request mix."""
    model_ids = tuple(model_ids)
    if not model_ids:
        raise ConfigurationError("at least one model id is required")
    image_counts = np.asarray(list(image_counts), dtype=np.int64)
    if image_counts.size == 0 or (image_counts <= 0).any():
        raise ConfigurationError("image_counts must be positive integers")
    requests = arrivals.shape[0]

    mix = {sla.value: 0.0 for sla in SLA_ORDER}
    if sla_mix is None:
        mix["best_effort"] = 1.0
    else:
        unknown = set(sla_mix) - set(mix)
        if unknown:
            raise ConfigurationError(f"unknown SLA classes in sla_mix: {sorted(unknown)}")
        mix.update(sla_mix)
    sla_weights = _normalised(
        "sla_mix", [mix[sla.value] for sla in SLA_ORDER], len(SLA_ORDER)
    )
    if sla_weights[0] > 0 and (deadline_s is None or deadline_s <= 0):
        raise ConfigurationError(
            "a latency-class share requires a positive deadline_s"
        )

    model_p = _normalised("model_weights", model_weights, len(model_ids))
    count_p = _normalised("image_count_weights", image_count_weights, image_counts.size)

    model_indices = rng.choice(len(model_ids), size=requests, p=model_p)
    counts = image_counts[rng.choice(image_counts.size, size=requests, p=count_p)]
    sla_indices = rng.choice(len(SLA_ORDER), size=requests, p=sla_weights)
    deadlines = np.full(requests, np.nan)
    if deadline_s is not None:
        deadlines[sla_indices == 0] = float(deadline_s)

    return WorkloadTrace(
        scenario=scenario,
        model_ids=model_ids,
        arrivals_s=arrivals,
        image_counts=counts,
        model_indices=model_indices.astype(np.int64),
        sla_indices=sla_indices.astype(np.int64),
        deadlines_s=deadlines,
    )


def poisson_trace(
    requests: int,
    rate_rps: float,
    model_ids: Sequence[str] = ("model-a",),
    model_weights: Optional[Sequence[float]] = None,
    image_counts: Sequence[int] = (4, 8, 16),
    image_count_weights: Optional[Sequence[float]] = None,
    sla_mix: Optional[Dict[str, float]] = None,
    deadline_s: Optional[float] = None,
    seed: int = 2020,
) -> WorkloadTrace:
    """Stationary Poisson arrivals at ``rate_rps`` requests per second."""
    check_positive("requests", requests)
    check_positive("rate_rps", rate_rps)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=requests))
    return _assemble(
        "poisson",
        arrivals,
        rng,
        model_ids,
        model_weights,
        image_counts,
        image_count_weights,
        sla_mix,
        deadline_s,
    )


def _inverse_transform_arrivals(
    rng: np.random.Generator,
    requests: int,
    grid_t: np.ndarray,
    rate_fn,
) -> np.ndarray:
    """Exact inhomogeneous-Poisson arrivals via the integrated rate.

    The cumulative rate ``L(t) = \\int rate(u) du`` is evaluated on a dense
    grid (trapezoid rule); arrivals are the inverse images of sorted
    uniforms on ``[0, L(T)]`` — the textbook time-change construction,
    fully vectorized.
    """
    rates = rate_fn(grid_t)
    if (rates < 0).any():
        raise ConfigurationError("rate function must be non-negative")
    gaps = np.diff(grid_t)
    cumulative = np.concatenate(
        ([0.0], np.cumsum(0.5 * (rates[1:] + rates[:-1]) * gaps))
    )
    total = cumulative[-1]
    if total <= 0:
        raise ConfigurationError("rate function integrates to zero over the span")
    targets = np.sort(rng.uniform(0.0, total, size=requests))
    return np.interp(targets, cumulative, grid_t)


def diurnal_trace(
    requests: int,
    period_s: float,
    base_rate_rps: float,
    peak_rate_rps: float,
    periods: float = 2.0,
    model_ids: Sequence[str] = ("model-a",),
    model_weights: Optional[Sequence[float]] = None,
    image_counts: Sequence[int] = (4, 8, 16),
    image_count_weights: Optional[Sequence[float]] = None,
    sla_mix: Optional[Dict[str, float]] = None,
    deadline_s: Optional[float] = None,
    grid_points: int = 4096,
    seed: int = 2020,
) -> WorkloadTrace:
    """Day/night arrivals: a raised-cosine rate between base and peak.

    ``rate(t) = base + (peak - base) * (1 - cos(2 pi t / period)) / 2`` —
    the trough sits at ``t = 0`` and the peak half a period later.
    """
    check_positive("requests", requests)
    check_positive("period_s", period_s)
    check_positive("base_rate_rps", base_rate_rps)
    check_positive("periods", periods)
    if peak_rate_rps < base_rate_rps:
        raise ConfigurationError("peak_rate_rps must be >= base_rate_rps")
    rng = np.random.default_rng(seed)
    span = period_s * periods
    grid = np.linspace(0.0, span, grid_points)

    def rate(t: np.ndarray) -> np.ndarray:
        swing = (peak_rate_rps - base_rate_rps) * 0.5
        return base_rate_rps + swing * (1.0 - np.cos(2.0 * np.pi * t / period_s))

    arrivals = _inverse_transform_arrivals(rng, requests, grid, rate)
    return _assemble(
        "diurnal",
        arrivals,
        rng,
        model_ids,
        model_weights,
        image_counts,
        image_count_weights,
        sla_mix,
        deadline_s,
    )


def burst_trace(
    requests: int,
    base_rate_rps: float,
    burst_every_s: float,
    burst_duration_s: float,
    burst_multiplier: float = 8.0,
    span_s: Optional[float] = None,
    model_ids: Sequence[str] = ("model-a",),
    model_weights: Optional[Sequence[float]] = None,
    image_counts: Sequence[int] = (4, 8, 16),
    image_count_weights: Optional[Sequence[float]] = None,
    sla_mix: Optional[Dict[str, float]] = None,
    deadline_s: Optional[float] = None,
    grid_points: int = 8192,
    seed: int = 2020,
) -> WorkloadTrace:
    """A stationary baseline punctuated by periodic rate-multiplied bursts.

    Every ``burst_every_s`` seconds the rate jumps to ``burst_multiplier``
    times the baseline for ``burst_duration_s`` — flash crowds on top of
    steady traffic.  ``span_s`` defaults to the time the baseline alone
    would need to carry the trace, so several bursts always fit.
    """
    check_positive("requests", requests)
    check_positive("base_rate_rps", base_rate_rps)
    check_positive("burst_every_s", burst_every_s)
    check_positive("burst_duration_s", burst_duration_s)
    if burst_duration_s >= burst_every_s:
        raise ConfigurationError("burst_duration_s must be below burst_every_s")
    if burst_multiplier < 1.0:
        raise ConfigurationError("burst_multiplier must be >= 1")
    rng = np.random.default_rng(seed)
    span = span_s if span_s is not None else requests / base_rate_rps
    check_positive("span_s", span)
    grid = np.linspace(0.0, span, grid_points)

    def rate(t: np.ndarray) -> np.ndarray:
        in_burst = np.mod(t, burst_every_s) < burst_duration_s
        return base_rate_rps * np.where(in_burst, burst_multiplier, 1.0)

    arrivals = _inverse_transform_arrivals(rng, requests, grid, rate)
    return _assemble(
        "burst",
        arrivals,
        rng,
        model_ids,
        model_weights,
        image_counts,
        image_count_weights,
        sla_mix,
        deadline_s,
    )


def build_image_pool(
    images_by_model: Dict[str, np.ndarray],
    image_counts: Sequence[int],
    pool_slots: int = 8,
) -> Dict[Tuple[str, int], List[Tuple[str, np.ndarray]]]:
    """Distinct request batches per (model, image count), with stable digests.

    Slices ``pool_slots`` distinct windows out of each model's image bank
    for every request size; the returned digests are unique per slot and
    safe to pass as ``input_digest`` (identical digest => identical bytes).
    """
    check_positive("pool_slots", pool_slots)
    pool: Dict[Tuple[str, int], List[Tuple[str, np.ndarray]]] = {}
    for model_id, bank in images_by_model.items():
        bank = np.ascontiguousarray(np.asarray(bank, dtype=np.float64))
        for count in image_counts:
            if bank.shape[0] < count:
                raise ConfigurationError(
                    f"model {model_id!r} needs at least {count} bank images"
                )
            slots = []
            stride = max(1, (bank.shape[0] - count) // max(1, pool_slots - 1))
            for slot in range(pool_slots):
                start = min(slot * stride, bank.shape[0] - count)
                slots.append(
                    (
                        f"{model_id}/{count}/{start}",
                        np.ascontiguousarray(bank[start : start + count]),
                    )
                )
            pool[(model_id, count)] = slots
    return pool


def replay(
    router,
    trace: WorkloadTrace,
    image_pool: Dict[Tuple[str, int], List[Tuple[str, np.ndarray]]],
    drain_every: int = 64,
    autoscaler=None,
) -> Dict[str, float]:
    """Stream a trace through a router in arrival order.

    Requests draw their images round-robin from the pool's distinct slots
    (the slot digest rides along as ``input_digest``), and the backlog is
    drained every ``drain_every`` admissions — bounded queues keep the
    per-dispatch reservation re-chaining cheap and mirror a live router
    that serves while it admits.  ``autoscaler`` (a
    :class:`~repro.cluster.autoscale.ReactiveAutoscaler`) observes after
    every drain chunk, so fleet reshaping — including waking spares under
    the failure pressure of an injected crash — happens *inside* the
    serving loop, reacting to the same telemetry a live controller would.
    Returns flat replay statistics including the wall-clock requests/sec of
    the whole loop.
    """
    import time

    check_positive("drain_every", drain_every)
    arrivals = trace.arrivals_s
    counts = trace.image_counts
    model_indices = trace.model_indices
    sla_indices = trace.sla_indices
    deadlines = trace.deadlines_s
    model_ids = trace.model_ids
    slot_cursor: Dict[Tuple[str, int], int] = {}

    requests = len(trace)
    completed = 0
    start_wall = time.perf_counter()
    for index in range(requests):
        model_id = model_ids[model_indices[index]]
        count = int(counts[index])
        slots = image_pool[(model_id, count)]
        cursor = slot_cursor.get((model_id, count), 0)
        digest, images = slots[cursor]
        slot_cursor[(model_id, count)] = (cursor + 1) % len(slots)
        deadline = deadlines[index]
        router.submit(
            model_id,
            images,
            sla=SLA_ORDER[sla_indices[index]],
            deadline_s=None if np.isnan(deadline) else float(deadline),
            arrival_s=float(arrivals[index]),
            input_digest=digest,
        )
        if (index + 1) % drain_every == 0:
            # Observe *before* draining: queue depth (and therefore failure
            # pressure) is visible while the chunk's backlog is still real.
            if autoscaler is not None:
                autoscaler.observe()
            completed += len(router.drain())
    if autoscaler is not None:
        autoscaler.observe()
    completed += len(router.drain())
    wall_s = time.perf_counter() - start_wall

    return {
        "requests": float(requests),
        "completed": float(completed),
        "images": float(trace.total_images),
        "wall_s": wall_s,
        "requests_per_s": requests / wall_s if wall_s > 0 else 0.0,
        "images_per_s": trace.total_images / wall_s if wall_s > 0 else 0.0,
    }
