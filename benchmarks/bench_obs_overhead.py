"""Observability overhead: instrumented vs bare router replay, the 5% gate.

The ``repro.obs`` layer instruments the cluster through vectorized folds at
telemetry flush boundaries plus scrape-time collectors, with request spans
sampled deterministically (``request_id % sample_every == 0``).  The claim
that buys is "observability is cheap": a fully instrumented router —
metrics registry attached, tracer sampling at the default 1/1024 — must
replay the same trace at no more than ``OVERHEAD_GATE`` (5%) fewer
requests/sec than a bare router, while producing **bit-identical** cluster
ledgers and telemetry summaries (instrumentation must never perturb the
virtual-time simulation, only observe it).

Both sides run the columnar kernel in its aggregates-only deployment shape
on the same diurnal trace (10^5 requests by default, 10^4 in smoke mode).
Each side is replayed ``ROUNDS`` times and the best requests/sec is kept,
so a single scheduler hiccup cannot fail the gate; fidelity is compared on
every run, so a single divergence *does* fail it.

The instrumented run's final registry snapshot is written to
``benchmarks/results/metrics_snapshot.json`` — the ``metrics-snapshot``
CI artifact, and the demo input for ``python -m repro.obs report``.

Acceptance gates of the observability PR:

* ``overhead_fraction = 1 - instrumented_rps / bare_rps`` <= 5%,
* zero field mismatches between bare and instrumented summaries/ledgers
  (host-wall fields excluded),
* no requests lost on either side,
* the registry's ``cluster_requests_total`` agrees with the replay.

JSON lands in ``benchmarks/results/obs_overhead.json`` for the
bench-regression CI gate.
"""

import gc
import os

from repro.analysis.report import format_table
from repro.cluster import (
    ClusterNode,
    ClusterRouter,
    ColumnarTelemetry,
    ExecutionMode,
    ForwardMemo,
    SLAScheduler,
    build_image_pool,
    diurnal_trace,
)
from repro.dnn.pipeline import make_pattern_image_dataset, train_pattern_cnn
from repro.obs import MetricsRegistry, Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Same workload geometry as ``bench_event_kernel`` so the bare side here
#: is directly comparable to that bench's columnar runs.
IMAGE_SIZE = 24
IMAGE_COUNTS = (128, 192, 256)
NUM_MACROS = 8
HIDDEN_SIZES = (4,)
EPOCHS = 6
DRAIN_EVERY = 1_024

#: The ISSUE's 10^5-request overhead workload (10^4 in smoke mode).
REQUESTS = 10_000 if SMOKE else 100_000
#: Default trace sampling: one request in 1024 gets a full span tree.
SAMPLE_EVERY = 1_024
#: Maximum allowed throughput loss from full instrumentation.  The 5%
#: gate is defined on the full 10^5 replay; the ~20 ms smoke replay has
#: several percent of scheduler jitter even under the paired-median
#: estimator, so smoke gets headroom (it still catches a per-request
#: hot-path regression, which shows up as tens of percent).
OVERHEAD_GATE = 0.10 if SMOKE else 0.05
#: Timed bare/instrumented pairs (plus one untimed warm pair).
ROUNDS = 5

#: Host-wall fields excluded from the field-by-field fidelity comparison.
_WALL_FIELDS = ("wall_s", "requests_per_s", "images_per_s")


def _build_workload():
    dataset = make_pattern_image_dataset(
        samples=4 * max(IMAGE_COUNTS) + 400, size=IMAGE_SIZE, seed=13
    )
    cnn, _ = train_pattern_cnn(
        dataset, conv_channels=(1,), hidden_sizes=HIDDEN_SIZES, epochs=EPOCHS, seed=13
    )
    pool = build_image_pool({"cnn": dataset.test_images}, IMAGE_COUNTS)
    return cnn, pool


def _make_trace(requests: int):
    return diurnal_trace(
        requests,
        period_s=64.0,
        base_rate_rps=600.0,
        peak_rate_rps=2400.0,
        model_ids=("cnn",),
        image_counts=IMAGE_COUNTS,
        sla_mix={"latency": 0.2, "throughput": 0.5, "best_effort": 0.3},
        deadline_s=1.0,
        seed=13,
    )


def _make_router(cnn, instrumented: bool):
    """A 2-node columnar router; node ids match on both sides so the
    ledger comparison is label-for-label identical."""
    memo = ForwardMemo()
    nodes = [
        ClusterNode(
            f"node-{index}",
            vdd=vdd,
            num_macros=NUM_MACROS,
            max_batch_size=max(IMAGE_COUNTS),
            execution_mode=ExecutionMode.ANALYTIC,
            forward_memo=memo,
        )
        for index, vdd in enumerate((1.0, 0.6))
    ]
    metrics = MetricsRegistry() if instrumented else None
    tracer = Tracer(sample_every=SAMPLE_EVERY) if instrumented else None
    router = ClusterRouter(
        nodes,
        scheduler=SLAScheduler(),
        kernel="columnar",
        telemetry=ColumnarTelemetry(retain_traces=False),
        retain_results=False,
        metrics=metrics,
        tracer=tracer,
    )
    router.register_model("cnn", cnn)
    return router, metrics, tracer


def _warm_up(router, pool) -> None:
    """Program weights on every node and populate the shared memo outside
    the timed loop (steady-state replay is what the bench measures)."""
    for node in router.nodes:
        for slots in pool.values():
            for digest, images in slots:
                node.execute("cnn", images, input_digest=digest)


def _run_once(cnn, pool, requests: int, instrumented: bool):
    """One measured replay, returning (comparable stats, registry, tracer)."""
    trace = _make_trace(requests)
    router, metrics, tracer = _make_router(cnn, instrumented)
    try:
        _warm_up(router, pool)
        # A GC pause mid-replay is a 10x outlier on a ~20 ms smoke replay;
        # collecting the warm-up garbage first keeps the timing comparable.
        gc.collect()
        stats = router.replay_trace(trace, pool, drain_every=DRAIN_EVERY)
        stats["completed"] = float(router.completed_requests)
        stats.update(router.telemetry.summary())
        ledger = router.ledger()
        stats["ledger_cycles"] = float(ledger.total_cycles)
        stats["ledger_energy_j"] = ledger.total_energy_j
        snapshot = metrics.snapshot() if metrics is not None else None
    finally:
        router.shutdown()
    return stats, snapshot, tracer


def _measure(cnn, pool, requests: int, rounds: int) -> dict:
    """Interleaved bare/instrumented replay pairs; median pair overhead.

    Two defenses against host noise on a ~0.3 s replay:

    * **pairing** — each round replays bare then instrumented back to
      back, so a round's overhead ratio compares two runs under the same
      few seconds of machine state (running all bare rounds first would
      fold machine-speed drift straight into the estimate);
    * **median** — the gate reads the median of the per-round overheads,
      so a single descheduled round cannot fail (or pass) the bench.

    One untimed warm pair runs first to absorb process-level warmup.
    Fidelity must hold on *every* run, including the warm pair.
    """
    bare_best = None
    instr_best = None
    snapshot = None
    tracer = None
    runs = []
    overheads = []
    for round_index in range(rounds + 1):
        bare_stats, _, _ = _run_once(cnn, pool, requests, False)
        instr_stats, instr_snapshot, instr_tracer = _run_once(
            cnn, pool, requests, True
        )
        runs.extend((bare_stats, instr_stats))
        if round_index == 0:
            continue  # warm pair: fidelity-checked, never timed
        overheads.append(
            1.0 - instr_stats["requests_per_s"] / bare_stats["requests_per_s"]
        )
        if bare_best is None or bare_stats["requests_per_s"] > bare_best["requests_per_s"]:
            bare_best = bare_stats
        if instr_best is None or instr_stats["requests_per_s"] > instr_best["requests_per_s"]:
            instr_best = instr_stats
            snapshot = instr_snapshot
            tracer = instr_tracer
    overheads.sort()
    return {
        "bare": bare_best,
        "instrumented": instr_best,
        "snapshot": snapshot,
        "tracer": tracer,
        "runs": runs,
        "round_overheads": overheads,
        "overhead_fraction": overheads[len(overheads) // 2],
    }


def _mismatched_fields(reference: dict, candidate: dict) -> list:
    return [
        key
        for key, value in reference.items()
        if key not in _WALL_FIELDS and candidate.get(key) != value
    ]


def _registry_request_count(snapshot: dict) -> float:
    family = snapshot.get("metrics", {}).get("cluster_requests_total", {})
    return float(sum(s["value"] for s in family.get("samples", ())))


def test_obs_overhead(benchmark, reporter, write_results_json):
    cnn, pool = _build_workload()

    measured = benchmark.pedantic(
        _measure,
        args=(cnn, pool, REQUESTS, ROUNDS),
        rounds=1,
        iterations=1,
    )
    bare = measured["bare"]
    instrumented = measured["instrumented"]
    snapshot = measured["snapshot"]
    tracer = measured["tracer"]

    # Fidelity: every run — bare or instrumented — must match the bare
    # reference field-for-field (the simulation is deterministic, so any
    # drift is a bug either way).
    mismatches = sorted(
        {
            key
            for candidate in measured["runs"]
            for key in _mismatched_fields(bare, candidate)
        }
    )

    overhead_fraction = measured["overhead_fraction"]
    counted = _registry_request_count(snapshot)
    sampled = float(tracer.sampled_requests)

    rows = [
        [
            "bare",
            int(bare["requests"]),
            f"{bare['requests_per_s']:.0f}",
            "—",
        ],
        [
            "instrumented",
            int(instrumented["requests"]),
            f"{instrumented['requests_per_s']:.0f}",
            f"{overhead_fraction * 100:+.2f}%",
        ],
    ]
    reporter(
        "Observability overhead: columnar replay, metrics+tracing attached",
        format_table(["router", "requests", "req/s", "overhead"], rows)
        + f"\nregistry counted {int(counted)} requests, "
        f"tracer sampled {int(sampled)} (1/{SAMPLE_EVERY})"
        + f"\nfidelity mismatches vs bare: "
        f"{mismatches if mismatches else 'none'}",
    )

    write_results_json(
        "obs_overhead",
        {
            "smoke": SMOKE,
            "image_size": IMAGE_SIZE,
            "image_counts": list(IMAGE_COUNTS),
            "num_macros": NUM_MACROS,
            "requests": REQUESTS,
            "sample_every": SAMPLE_EVERY,
            "rounds_per_side": ROUNDS,
            "bare": bare,
            "instrumented": instrumented,
            "overhead_fraction": overhead_fraction,
            "overhead_gate": OVERHEAD_GATE,
            "overhead_within_gate": 1.0 if overhead_fraction <= OVERHEAD_GATE else 0.0,
            "round_overheads": measured["round_overheads"],
            "registry_requests_total": counted,
            "registry_matches_replay": 1.0 if counted == instrumented["requests"] else 0.0,
            "tracer_sampled_requests": sampled,
            "ledger_bit_exact": 0.0 if mismatches else 1.0,
            "fidelity_mismatches": mismatches,
        },
    )
    # The metrics-snapshot CI artifact: the instrumented run's final
    # registry state, renderable via `python -m repro.obs report`.
    write_results_json("metrics_snapshot", snapshot)

    # Acceptance gates of the observability PR.
    assert not mismatches, f"instrumentation perturbed the replay: {mismatches}"
    assert overhead_fraction <= OVERHEAD_GATE
    assert bare["completed"] == bare["requests"]
    assert instrumented["completed"] == instrumented["requests"]
    assert counted == instrumented["requests"]
    assert sampled > 0
