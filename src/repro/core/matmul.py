"""Weight-stationary tiled integer matmul engine on the sharded chip.

The seed's DNN path (:class:`repro.dnn.imc_backend.IMCMatmulBackend`)
re-sends *both* operands of every scalar product to the engine on every
call — the opposite of how an IMC accelerator amortises its array.  Real
deployments program a layer's weight matrix into the arrays **once** and
then stream activation batches past the stationary weights.  This module is
that execution discipline:

* :class:`TiledMatmulEngine` cuts a weight matrix into ``tile_rows x
  tile_cols`` tiles, deals the tiles round-robin across the macros of an
  :class:`repro.core.chip.IMCChip`, and charges the array-write cost of
  programming a tile **once** — on first touch — through a
  :class:`WeightCache` keyed by layer id;
* subsequent matmuls with the same weights stream activation batches
  through the vectorized column-parallel MULT path of each tile's macro and
  accumulate the per-tile partial sums near-memory (accounted as one ADD
  per product at the accumulator precision), merging every per-tile ledger
  into the chip-level statistics;
* the cache is capacity-aware: when the resident tiles would exceed the
  chip's capacity the least-recently-used layers are evicted, and touching
  an evicted layer charges the re-programming cost again (exactly the
  behaviour a serving system has to plan around);
* :meth:`TiledMatmulEngine.matmul_reference` retains the per-lane on-array
  execution as the bit-exactness oracle, and configurations that inject
  read disturb are routed to it automatically;
* :meth:`TiledMatmulEngine.charge_dispatch` is the *exact-charge* API: it
  lands a dispatch's complete accounting (programming, per-tile MULT/ADD
  streams, cache and engine counters) through the very same code path as
  :meth:`TiledMatmulEngine.matmul` without computing the product — the
  primitive behind the cluster layer's analytic execution mode, where
  million-request scheduling studies run at wall-clock speed with ledgers
  bit-identical to real execution.

The engine is a drop-in integer matmul backend: calling it with
``(activation_codes, weight_codes)`` mirrors
:class:`~repro.dnn.imc_backend.NumpyIntBackend` bit-exactly (including
``mac_count`` accounting), so ``QuantizedMLP.with_backend(engine)`` and
``QuantizedCNN.with_backend(engine)`` run whole networks weight-stationary.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chip import IMCChip
from repro.core.operations import Opcode, cycles_for
from repro.errors import ConfigurationError
from repro.utils.bitops import mask
from repro.utils.validation import check_positive

__all__ = [
    "TileAssignment",
    "ProgrammedWeights",
    "WeightCache",
    "MatmulDispatch",
    "DispatchEstimate",
    "TiledMatmulEngine",
    "matmul_mac_count",
]


def matmul_mac_count(activations: np.ndarray, weights: np.ndarray) -> int:
    """Multiply-accumulates of one ``(B x I) @ (I x O)`` integer product.

    Counted from the operand shapes alone — the single source of truth for
    every matmul backend.  Zero-valued activations whose products the sign
    path suppresses (``sign(0) * sign(w) = 0``) still traverse the MAC
    array, so they count exactly once; deriving the count from the executed
    multiplication stream instead would double-charge them whenever a
    backend both issues the magnitude MULT and re-walks the sign mask.
    """
    return activations.shape[0] * weights.shape[0] * weights.shape[1]


@dataclass(frozen=True)
class TileAssignment:
    """One weight tile pinned to one macro shard.

    ``rows`` spans the inner (contraction) dimension of the weight matrix,
    ``cols`` the output dimension; the tile occupies ``row_stop - row_start``
    array rows of macro ``macro_index``.
    """

    tile_index: int
    macro_index: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def rows(self) -> int:
        """Weight rows (array rows) the tile occupies."""
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        """Weight columns (output channels) the tile holds."""
        return self.col_stop - self.col_start

    @property
    def words(self) -> int:
        """Weight words stored by the tile."""
        return self.rows * self.cols


@dataclass
class ProgrammedWeights:
    """A weight matrix resident on the chip, tiled across macros.

    ``program_cycles`` / ``program_energy_j`` record what programming the
    tiles cost; the cost is charged when the entry is (re-)programmed, never
    on a cache hit — that is the whole point of weight-stationary execution.

    ``charge_plan`` caches the per-tile constants the dispatch path charges
    with — ``(macro_index, rows * cols, rows * col_groups)`` per tile — so
    streaming a resident layer costs a handful of integer multiplies per
    tile instead of re-deriving the tile geometry on every call.
    """

    layer_id: str
    shape: Tuple[int, int]
    precision_bits: int
    tiles: Tuple[TileAssignment, ...]
    program_cycles: int
    program_energy_j: float
    programmed_count: int = 1
    hits: int = 0
    charge_plan: Tuple[Tuple[int, int, int], ...] = ()
    #: Per-batch-size memo of fully evaluated per-tile charge rows (see
    #: :meth:`TiledMatmulEngine.charge_layers`); values only — applying a
    #: cached row performs the identical arithmetic in the identical order.
    charge_rows: Dict[int, Tuple[Tuple, ...]] = field(default_factory=dict)

    @property
    def tile_count(self) -> int:
        """Number of tiles the weight matrix occupies."""
        return len(self.tiles)

    @property
    def resident_rows(self) -> int:
        """Array rows the tiles occupy across the chip."""
        return sum(tile.rows for tile in self.tiles)


class WeightCache:
    """LRU cache of :class:`ProgrammedWeights`, bounded in resident array rows.

    A tile of ``r`` weight rows occupies ``r`` array rows of its macro (every
    multiplication slot of those rows), so the natural capacity unit is array
    rows across the chip.  The invariant the property tests pin down:
    ``resident_rows`` never exceeds ``capacity_rows``, and programming cost
    is charged exactly once per period of residency (program → hits →
    eviction → re-program).
    """

    def __init__(self, capacity_rows: int) -> None:
        check_positive("capacity_rows", capacity_rows)
        self.capacity_rows = capacity_rows
        self._entries: "OrderedDict[str, ProgrammedWeights]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, layer_id: str) -> bool:
        return layer_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_rows(self) -> int:
        """Array rows currently occupied by resident tiles."""
        return sum(entry.resident_rows for entry in self._entries.values())

    @property
    def resident_tiles(self) -> int:
        """Tiles currently held on the chip."""
        return sum(entry.tile_count for entry in self._entries.values())

    @property
    def resident_layers(self) -> List[str]:
        """Layer ids in LRU → MRU order."""
        return list(self._entries)

    def peek(self, layer_id: str) -> Optional[ProgrammedWeights]:
        """Return a resident entry without touching LRU order or counters.

        Planning-only view: the cluster router uses it to score weight
        affinity of candidate nodes without perturbing the very recency
        state it is scoring.
        """
        return self._entries.get(layer_id)

    def lookup(self, layer_id: str) -> Optional[ProgrammedWeights]:
        """Return (and touch) a resident entry, or record a miss."""
        entry = self._entries.get(layer_id)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(layer_id)
        entry.hits += 1
        self.hits += 1
        return entry

    def insert(self, entry: ProgrammedWeights) -> List[ProgrammedWeights]:
        """Make an entry resident, evicting LRU entries to fit.

        Returns the evicted entries.  An entry larger than the whole cache
        cannot become resident; the caller treats it as a transient
        programming (charged on every call) and nothing is evicted for it.
        """
        if entry.resident_rows > self.capacity_rows:
            return []
        evicted: List[ProgrammedWeights] = []
        while self.resident_rows + entry.resident_rows > self.capacity_rows:
            _, victim = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.append(victim)
        self._entries[entry.layer_id] = entry
        return evicted

    def invalidate(self, layer_id: str) -> bool:
        """Drop one entry (e.g. after a weight update); True if it existed."""
        return self._entries.pop(layer_id, None) is not None

    def clear(self) -> None:
        """Drop every resident entry (counters are kept)."""
        self._entries.clear()

    def summary(self) -> Dict[str, float]:
        """Flat counters for reports."""
        return {
            "capacity_rows": float(self.capacity_rows),
            "resident_rows": float(self.resident_rows),
            "resident_tiles": float(self.resident_tiles),
            "resident_layers": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
        }


@dataclass(frozen=True)
class MatmulDispatch:
    """Chip-level accounting of one engine matmul call."""

    layer_id: str
    batch: int
    inner: int
    outer: int
    tile_count: int
    programmed: bool
    macros: int
    total_cycles: int
    critical_path_cycles: int
    program_cycles: int
    energy_j: float
    latency_s: float

    @property
    def utilization(self) -> float:
        """Shard balance: work cycles over (macros x critical-path cycles)."""
        if self.critical_path_cycles == 0:
            return 0.0
        return self.total_cycles / (self.macros * self.critical_path_cycles)

    @property
    def parallel_speedup(self) -> float:
        """Work cycles over critical-path cycles (ideal = number of macros)."""
        if self.critical_path_cycles == 0:
            return 1.0
        return self.total_cycles / self.critical_path_cycles


@dataclass(frozen=True)
class DispatchEstimate:
    """Modeled cost of one matmul *before* running it (planning only).

    Produced by :meth:`TiledMatmulEngine.estimate_dispatch` without touching
    the chip ledgers, the weight cache's LRU order, or its hit/miss counters
    — the estimate a cluster scheduler ranks candidate nodes by.  For a
    resident layer the estimate reproduces the accounting of the real
    dispatch exactly (same tile plan, same cycle/energy recipes); for a
    non-resident layer the tile plan is hypothesised from the current
    round-robin cursor and includes the programming charge.
    """

    layer_id: Optional[str]
    batch: int
    inner: int
    outer: int
    resident: bool
    tile_count: int
    program_cycles: int
    program_energy_j: float
    compute_cycles: int
    critical_path_cycles: int
    energy_j: float
    latency_s: float

    @property
    def total_cycles(self) -> int:
        """Work cycles including the programming charge (if any)."""
        return self.compute_cycles + self.program_cycles

    @property
    def energy_per_row_j(self) -> float:
        """Modeled energy per activation row (the throughput-class metric)."""
        if self.batch == 0:
            return 0.0
        return self.energy_j / self.batch


@dataclass
class _EngineCounters:
    """Lifetime counters of the engine (all calls, all layers)."""

    mac_count: int = 0
    matmul_calls: int = 0
    programmed_tiles: int = 0
    program_cycles: int = 0
    program_energy_j: float = 0.0


class TiledMatmulEngine:
    """Weight-stationary tiled integer matmul on an :class:`IMCChip`.

    Parameters
    ----------
    chip:
        The sharded execution engine; defaults to a single-macro chip.
    precision_bits:
        Operand precision of the in-memory multiplications; defaults to the
        chip's configured precision.
    tile_rows:
        Weight rows per tile (array rows a tile occupies).  Defaults to the
        macro height minus the three scratch rows the scalar path reserves.
    tile_cols:
        Weight columns per tile.  Defaults to the macro's multiplication
        slots per row, so one activation broadcast fills every slot.
    capacity_rows:
        Array-row budget of the :class:`WeightCache` across the chip.
        Defaults to every non-scratch row of every macro shard.
    accumulator_bits:
        Precision of the near-memory accumulation ADDs (default 32).
    """

    def __init__(
        self,
        chip: Optional[IMCChip] = None,
        precision_bits: Optional[int] = None,
        tile_rows: Optional[int] = None,
        tile_cols: Optional[int] = None,
        capacity_rows: Optional[int] = None,
        accumulator_bits: int = 32,
    ) -> None:
        self.chip = chip if chip is not None else IMCChip()
        self.precision_bits = (
            precision_bits if precision_bits is not None else self.chip.precision_bits
        )
        config = self.chip.config
        default_rows = max(1, config.rows - config.dummy_rows)
        self.tile_rows = tile_rows if tile_rows is not None else default_rows
        self.tile_cols = (
            tile_cols
            if tile_cols is not None
            else self.chip.macro(0).mult_slots_per_row(self.precision_bits)
        )
        check_positive("tile_rows", self.tile_rows)
        check_positive("tile_cols", self.tile_cols)
        if self.tile_rows > config.rows:
            raise ConfigurationError(
                f"tile_rows {self.tile_rows} exceeds the macro height {config.rows}"
            )
        if capacity_rows is None:
            capacity_rows = self.chip.num_macros * default_rows
        self.cache = WeightCache(capacity_rows)
        self.accumulator_bits = accumulator_bits
        self.counters = _EngineCounters()
        self.last_dispatch: Optional[MatmulDispatch] = None
        self._slots = self.chip.macro(0).mult_slots_per_row(self.precision_bits)
        self._next_tile_macro = 0
        # Hot-path constants and running accounting accumulators.  The
        # accumulators mirror every cycle/energy charge the engine lands in
        # the macro ledgers, so callers can bracket a dispatch with
        # :meth:`ledger_mark` / :meth:`ledger_since` instead of snapshotting
        # the merged chip ledger (which is O(macros x opcodes) per read).
        self._macros = list(self.chip.macros)
        self._mult_cycles_per_invocation = cycles_for(Opcode.MULT, self.precision_bits)
        self._add_cycles_per_word = cycles_for(Opcode.ADD, accumulator_bits)
        self._copy_cycles_per_row = cycles_for(Opcode.COPY, self.precision_bits)
        self._macro_cycle_acc = [0] * self.chip.num_macros
        self._energy_acc = 0.0
        # Per-word energies are construction-time constants (every macro
        # shares the config's operating point), so hoist them off the
        # per-tile dispatch path.
        lead = self.chip.macro(0)
        vdd = lead.config.operating_point.vdd
        separator = lead.config.bl_separator
        self._mult_energy_per_word = lead.energy_model.energy_for(
            Opcode.MULT.energy_mnemonic,
            self.precision_bits,
            vdd=vdd,
            bl_separator=separator,
        ).total_j
        self._add_energy_per_word = lead.energy_model.energy_for(
            Opcode.ADD.energy_mnemonic,
            self.accumulator_bits,
            vdd=vdd,
            bl_separator=separator,
        ).total_j
        self._copy_energy_per_word = lead.energy_model.energy_for(
            Opcode.COPY.energy_mnemonic,
            self.precision_bits,
            vdd=vdd,
            bl_separator=separator,
        ).total_j

    # ------------------------------------------------------------------ #
    # Tiling and programming
    # ------------------------------------------------------------------ #
    @staticmethod
    def layer_id_for(weights: np.ndarray) -> str:
        """Content-derived stable id for a weight matrix."""
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        digest = hash((weights.shape, weights.tobytes()))
        return f"auto-{weights.shape[0]}x{weights.shape[1]}-{digest & 0xFFFFFFFFFFFF:012x}"

    def plan_tiles(self, inner: int, outer: int) -> List[TileAssignment]:
        """Cut an ``inner x outer`` weight matrix into macro-pinned tiles.

        Tiles are dealt round-robin across the macros, continuing from where
        the previous layer stopped so successive layers spread instead of
        piling onto macro 0.
        """
        tiles: List[TileAssignment] = []
        index = 0
        for row_start in range(0, inner, self.tile_rows):
            row_stop = min(row_start + self.tile_rows, inner)
            for col_start in range(0, outer, self.tile_cols):
                col_stop = min(col_start + self.tile_cols, outer)
                tiles.append(
                    TileAssignment(
                        tile_index=index,
                        macro_index=(self._next_tile_macro + index)
                        % self.chip.num_macros,
                        row_start=row_start,
                        row_stop=row_stop,
                        col_start=col_start,
                        col_stop=col_stop,
                    )
                )
                index += 1
        return tiles

    def _charge_programming(self, tiles: List[TileAssignment]) -> Tuple[int, float]:
        """Charge the array writes that make a layer's tiles resident.

        Programming one tile is one row write per weight row (the weights
        land in the multiplication slots), accounted as COPY operations on
        the owning macro so the cost lands in that shard's ledger.
        """
        bits = self.precision_bits
        total_cycles = 0
        total_energy = 0.0
        for tile in tiles:
            macro = self.chip.macro(tile.macro_index)
            cycles = tile.rows * cycles_for(Opcode.COPY, bits)
            energy = self._copy_energy_per_word * tile.words
            macro.stats.record_batch(
                Opcode.COPY,
                invocations=tile.rows,
                words=tile.words,
                cycles=cycles,
                energy_j=energy,
            )
            macro.array.access_count += tile.rows
            macro.stats.array_accesses = macro.array.access_count
            self._macro_cycle_acc[tile.macro_index] += cycles
            self._energy_acc += energy
            total_cycles += cycles
            total_energy += energy
        return total_cycles, total_energy

    def program(
        self, weights: np.ndarray, layer_id: Optional[str] = None
    ) -> Tuple[ProgrammedWeights, bool]:
        """Make a weight matrix resident; returns (entry, was_programmed).

        On a cache hit nothing is charged.  On a miss the tiles are planned,
        the programming cost is charged to the owning macros, and the entry
        becomes resident (evicting LRU layers as needed).  A layer too large
        for the cache is programmed transiently: charged on *every* call and
        never resident.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ConfigurationError("weights must be a 2-D code matrix")
        if layer_id is None:
            layer_id = self.layer_id_for(weights)
        entry = self.cache.lookup(layer_id)
        if entry is not None:
            if entry.shape != weights.shape:
                raise ConfigurationError(
                    f"layer {layer_id!r} is resident with shape {entry.shape}, "
                    f"got weights of shape {weights.shape}"
                )
            return entry, False

        inner, outer = weights.shape
        tiles = self.plan_tiles(inner, outer)
        self._next_tile_macro = (self._next_tile_macro + len(tiles)) % self.chip.num_macros
        cycles, energy = self._charge_programming(tiles)
        entry = ProgrammedWeights(
            layer_id=layer_id,
            shape=(inner, outer),
            precision_bits=self.precision_bits,
            tiles=tuple(tiles),
            program_cycles=cycles,
            program_energy_j=energy,
            charge_plan=self._build_charge_plan(tiles),
        )
        self.cache.insert(entry)
        self.counters.programmed_tiles += len(tiles)
        self.counters.program_cycles += cycles
        self.counters.program_energy_j += energy
        return entry, True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _check_operands(self, activations: np.ndarray, weights: np.ndarray) -> None:
        if activations.ndim != 2 or weights.ndim != 2:
            raise ConfigurationError("the engine expects 2-D code matrices")
        if activations.shape[1] != weights.shape[0]:
            raise ConfigurationError(
                f"shape mismatch: activations {activations.shape} x weights "
                f"{weights.shape}"
            )
        limit = mask(self.precision_bits - 1)
        magnitude = 0
        if activations.size:
            magnitude = int(np.abs(activations).max())
        if weights.size:
            magnitude = max(magnitude, int(np.abs(weights).max()))
        if magnitude > limit:
            raise ConfigurationError(
                f"operand magnitudes exceed the {self.precision_bits}-bit precision"
            )

    def _build_charge_plan(
        self, tiles: Sequence[TileAssignment]
    ) -> Tuple[Tuple[int, int, int], ...]:
        """Per-tile charging constants: (macro, rows*cols, rows*col_groups)."""
        return tuple(
            (
                tile.macro_index,
                tile.rows * tile.cols,
                tile.rows * -(-tile.cols // self._slots),
            )
            for tile in tiles
        )

    def _charge_plan_for(self, entry: ProgrammedWeights) -> Tuple[Tuple[int, int, int], ...]:
        """The entry's charge plan (derived lazily for hand-built entries)."""
        if not entry.charge_plan:
            entry.charge_plan = self._build_charge_plan(entry.tiles)
        return entry.charge_plan

    def _charge_tile(
        self, macro_index: int, products_pr: int, invocations_pr: int, batch: int
    ) -> None:
        """Charge one tile's MULT/ADD stream for a ``batch``-row dispatch.

        ``products_pr`` / ``invocations_pr`` are the per-activation-row
        product and MULT-invocation counts of the tile (from its charge
        plan).  This is the single charging path of the engine: the real
        dispatch and the analytic fast path both land their accounting here,
        which is what makes the two modes ledger-identical by construction.
        Every charge is mirrored into the engine's running accumulators so
        dispatch-level accounting never has to re-read the macro ledgers.
        """
        macro = self._macros[macro_index]
        bits = self.precision_bits
        products = batch * products_pr

        # MULT accounting: each activation scalar is broadcast over the
        # tile's columns; a row invocation covers min(tile_cols, slots)
        # product slots.
        invocations = batch * invocations_pr
        mult_cycles = self._mult_cycles_per_invocation * invocations
        mult_energy = self._mult_energy_per_word * products
        record = macro.stats.records[Opcode.MULT]
        record.invocations += invocations
        record.words += products
        record.cycles += mult_cycles
        record.energy_j += mult_energy
        macro.array.access_count += (bits + 1) * invocations

        # Accumulation: one near-memory ADD per product at the accumulator
        # precision (the partial sums never leave the tile's periphery).
        add_cycles = self._add_cycles_per_word * products
        add_energy = self._add_energy_per_word * products
        record = macro.stats.records[Opcode.ADD]
        record.invocations += products
        record.words += products
        record.cycles += add_cycles
        record.energy_j += add_energy
        macro.array.access_count += products
        macro.stats.array_accesses = macro.array.access_count

        self._macro_cycle_acc[macro_index] += mult_cycles + add_cycles
        self._energy_acc += mult_energy + add_energy

    def _tile_dispatch(
        self,
        tile: TileAssignment,
        plan: Tuple[int, int, int],
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Stream one activation batch past one stationary tile.

        The charging goes through :meth:`_charge_tile`; the arithmetic
        itself is the macro's exact column-parallel model (int64 products +
        signed accumulation), so the result is bit-identical to the golden
        int64 matrix product.
        """
        a_block = activations[:, tile.row_start : tile.row_stop]
        w_block = weights[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop]
        self._charge_tile(plan[0], plan[1], plan[2], a_block.shape[0])
        return a_block @ w_block

    def matmul(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        layer_id: Optional[str] = None,
    ) -> np.ndarray:
        """Weight-stationary integer product of ``(B x I) @ (I x O)`` codes.

        Bit-exact against the int64 golden path; statistics land in the
        per-macro ledgers of the tiles' owners and therefore in the merged
        chip ledger.  Read-disturb-injecting configurations are routed to
        the per-lane reference oracle.
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        self._check_operands(activations, weights)
        if self.chip.config.inject_read_disturb:
            return self.matmul_reference(activations, weights, layer_id=layer_id)

        batch, inner = activations.shape
        outer = weights.shape[1]
        entry, programmed = self.program(weights, layer_id=layer_id)
        plan = self._charge_plan_for(entry)

        mark = self.ledger_mark()
        output = np.zeros((batch, outer), dtype=np.int64)
        for tile, tile_plan in zip(entry.tiles, plan):
            partial = self._tile_dispatch(tile, tile_plan, activations, weights)
            output[:, tile.col_start : tile.col_stop] += partial

        self.last_dispatch = self._dispatch_from_mark(
            mark, entry, programmed, batch, inner, outer
        )
        self.counters.mac_count += matmul_mac_count(activations, weights)
        self.counters.matmul_calls += 1
        return output

    def __call__(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Drop-in matmul backend interface (layer id derived from content)."""
        return self.matmul(activations, weights)

    # ------------------------------------------------------------------ #
    # Dispatch accounting (running accumulators)
    # ------------------------------------------------------------------ #
    def ledger_mark(self) -> Tuple[float, Tuple[int, ...]]:
        """Cheap accounting bookmark: (energy so far, per-macro cycles so far).

        The accumulators track every charge the engine lands in the macro
        ledgers (tile streams *and* programming writes), so bracketing any
        stretch of engine work with a mark and :meth:`ledger_since` yields
        exactly the cycles/energy that stretch added — without the
        O(macros x opcodes) cost of merging the chip ledger per read.
        """
        return (self._energy_acc, tuple(self._macro_cycle_acc))

    def ledger_since(self, mark: Tuple[float, Tuple[int, ...]]) -> Tuple[int, int, float]:
        """(total_cycles, critical_path_cycles, energy_j) since a mark."""
        energy_before, cycles_before = mark
        total = 0
        critical = 0
        for after, before in zip(self._macro_cycle_acc, cycles_before):
            delta = after - before
            total += delta
            if delta > critical:
                critical = delta
        return total, critical, self._energy_acc - energy_before

    def _dispatch_from_mark(
        self,
        mark: Tuple[float, Tuple[int, ...]],
        entry: ProgrammedWeights,
        programmed: bool,
        batch: int,
        inner: int,
        outer: int,
    ) -> MatmulDispatch:
        """Build the dispatch record from the accumulator deltas."""
        total_cycles, critical, energy = self.ledger_since(mark)
        return MatmulDispatch(
            layer_id=entry.layer_id,
            batch=batch,
            inner=inner,
            outer=outer,
            tile_count=entry.tile_count,
            programmed=programmed,
            macros=self.chip.num_macros,
            total_cycles=total_cycles,
            critical_path_cycles=critical,
            program_cycles=entry.program_cycles if programmed else 0,
            energy_j=energy,
            latency_s=critical * self.chip.cycle_time_s(self.precision_bits),
        )

    def charge_dispatch(
        self,
        batch: int,
        weights: np.ndarray,
        layer_id: Optional[str] = None,
    ) -> MatmulDispatch:
        """Charge a ``(batch x I) @ (I x O)`` dispatch without computing it.

        The exact-charge half of :meth:`matmul`: weights are programmed (or
        LRU-touched) through the same :meth:`program` path, every tile's
        MULT/ADD stream lands in the macro ledgers through the same
        :meth:`_charge_tile` calls in the same order, and the engine/cache
        counters advance identically — only the integer arithmetic itself is
        skipped.  The returned :class:`MatmulDispatch` is field-for-field
        identical to what the real ``matmul`` would have produced, which is
        the fidelity contract the analytic cluster execution mode rests on
        (pinned by the property tests in ``tests/test_execution_modes.py``).

        Read-disturb-injecting configurations execute on the per-lane
        reference path whose accounting depends on the actual operand
        values, so they cannot be charged analytically and are refused.
        """
        if batch <= 0:
            check_positive("batch", batch)
        if self.chip.config.inject_read_disturb:
            raise ConfigurationError(
                "analytic charging is undefined under read-disturb injection; "
                "use matmul() (which routes to the reference oracle)"
            )

        # Resident fast path: the weights were validated when they were
        # programmed, so a hit only needs the same lookup + shape check the
        # program() hit path performs (identical LRU / counter effects).
        # peek() first so a cold layer does not record a double miss (the
        # program() path below runs its own counted lookup).
        entry = self.cache.peek(layer_id) if layer_id is not None else None
        if entry is not None:
            self.cache.lookup(layer_id)
            shape = getattr(weights, "shape", None)
            if shape is not None and entry.shape != shape:
                raise ConfigurationError(
                    f"layer {layer_id!r} is resident with shape {entry.shape}, "
                    f"got weights of shape {shape}"
                )
            programmed = False
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.ndim != 2:
                raise ConfigurationError("the engine expects a 2-D weight code matrix")
            if weights.size:
                if int(np.abs(weights).max()) > mask(self.precision_bits - 1):
                    raise ConfigurationError(
                        f"operand magnitudes exceed the "
                        f"{self.precision_bits}-bit precision"
                    )
            entry, programmed = self.program(weights, layer_id=layer_id)
        inner, outer = entry.shape
        plan = self._charge_plan_for(entry)

        mark = self.ledger_mark()
        for macro_index, products_pr, invocations_pr in plan:
            self._charge_tile(macro_index, products_pr, invocations_pr, batch)

        dispatch = self._dispatch_from_mark(mark, entry, programmed, batch, inner, outer)
        self.last_dispatch = dispatch
        self.counters.mac_count += batch * inner * outer
        self.counters.matmul_calls += 1
        return dispatch

    def _charge_rows_for(self, entry: ProgrammedWeights, batch: int) -> Tuple[Tuple, ...]:
        """Fully evaluated per-tile charge rows of one (entry, batch) pair.

        Each row holds exactly the values :meth:`_charge_tile` would compute
        for the tile at this batch size — the same multiplications, memoised
        — so applying a cached row replays the identical float/int updates.
        """
        rows = entry.charge_rows.get(batch)
        if rows is None:
            bits_plus = self.precision_bits + 1
            built = []
            for macro_index, products_pr, invocations_pr in self._charge_plan_for(entry):
                products = batch * products_pr
                invocations = batch * invocations_pr
                mult_cycles = self._mult_cycles_per_invocation * invocations
                mult_energy = self._mult_energy_per_word * products
                add_cycles = self._add_cycles_per_word * products
                add_energy = self._add_energy_per_word * products
                built.append(
                    (
                        macro_index,
                        invocations,
                        products,
                        mult_cycles,
                        mult_energy,
                        add_cycles,
                        add_energy,
                        bits_plus * invocations + products,
                        mult_cycles + add_cycles,
                        mult_energy + add_energy,
                    )
                )
            rows = tuple(built)
            if len(entry.charge_rows) >= 64:
                entry.charge_rows.clear()
            entry.charge_rows[batch] = rows
        return rows

    def charge_layers(self, layers: Sequence[Tuple[int, np.ndarray, Optional[str]]]) -> None:
        """Lean exact-charge of several dispatches: (batch, weights, id) each.

        The trace-replay hot path: per resident layer this is one counted
        cache lookup plus the application of memoised per-tile charge rows —
        no dispatch record, no per-layer accounting mark.  Every ledger and
        counter mutation is value- and order-identical to a
        :meth:`charge_dispatch` (and therefore :meth:`matmul`) of the same
        layers; cold layers fall back to :meth:`charge_dispatch` so the
        programming path stays the single shared one.
        """
        cache_peek = self.cache.peek
        macros = self._macros
        acc = self._macro_cycle_acc
        counters = self.counters
        mult_op = Opcode.MULT
        add_op = Opcode.ADD
        for batch, weights, layer_id in layers:
            entry = cache_peek(layer_id) if layer_id is not None else None
            if entry is None:
                self.charge_dispatch(batch, weights, layer_id=layer_id)
                continue
            self.cache.lookup(layer_id)
            for row in self._charge_rows_for(entry, batch):
                macro = macros[row[0]]
                stats = macro.stats
                record = stats.records[mult_op]
                record.invocations += row[1]
                record.words += row[2]
                record.cycles += row[3]
                record.energy_j += row[4]
                record = stats.records[add_op]
                record.invocations += row[2]
                record.words += row[2]
                record.cycles += row[5]
                record.energy_j += row[6]
                macro.array.access_count += row[7]
                stats.array_accesses = macro.array.access_count
                acc[row[0]] += row[8]
                self._energy_acc += row[9]
            inner, outer = entry.shape
            counters.mac_count += batch * inner * outer
            counters.matmul_calls += 1

    # ------------------------------------------------------------------ #
    # Planning (no side effects)
    # ------------------------------------------------------------------ #
    @property
    def resident_layer_ids(self) -> List[str]:
        """Layer ids currently programmed on the chip (LRU -> MRU order)."""
        return self.cache.resident_layers

    def is_resident(self, layer_id: str) -> bool:
        """Whether a layer is programmed, without touching the LRU order."""
        return self.cache.peek(layer_id) is not None

    def estimate_dispatch(
        self,
        batch: int,
        weights_shape: Tuple[int, int],
        layer_id: Optional[str] = None,
    ) -> DispatchEstimate:
        """Model the cost of ``matmul`` on a ``(batch x I) @ (I x O)`` product.

        Pure planning: nothing is charged, programmed, or LRU-touched.  When
        ``layer_id`` is resident the tile plan is the entry's actual plan and
        the estimate matches the subsequent dispatch's accounting exactly;
        otherwise the plan is hypothesised from the current round-robin
        cursor and the programming charge is included (which is precisely the
        re-programming penalty weight-affinity routing tries to avoid).
        """
        check_positive("batch", batch)
        inner, outer = weights_shape
        check_positive("inner", inner)
        check_positive("outer", outer)
        entry = self.cache.peek(layer_id) if layer_id is not None else None
        resident = entry is not None
        tiles = entry.tiles if entry is not None else tuple(self.plan_tiles(inner, outer))

        bits = self.precision_bits
        mult_cycles_per_invocation = cycles_for(Opcode.MULT, bits)
        add_cycles_per_word = cycles_for(Opcode.ADD, self.accumulator_bits)
        copy_cycles_per_row = cycles_for(Opcode.COPY, bits)

        per_macro = [0] * self.chip.num_macros
        program_cycles = 0
        program_energy = 0.0
        compute_cycles = 0
        energy = 0.0
        for tile in tiles:
            products = batch * tile.rows * tile.cols
            col_groups = -(-tile.cols // self._slots)
            tile_cycles = (
                batch * tile.rows * col_groups * mult_cycles_per_invocation
                + products * add_cycles_per_word
            )
            compute_cycles += tile_cycles
            energy += (self._mult_energy_per_word + self._add_energy_per_word) * products
            per_macro[tile.macro_index] += tile_cycles
            if not resident:
                tile_program = tile.rows * copy_cycles_per_row
                program_cycles += tile_program
                program_energy += self._copy_energy_per_word * tile.words
                per_macro[tile.macro_index] += tile_program
        critical = max(per_macro, default=0)
        return DispatchEstimate(
            layer_id=layer_id,
            batch=batch,
            inner=inner,
            outer=outer,
            resident=resident,
            tile_count=len(tiles),
            program_cycles=program_cycles,
            program_energy_j=program_energy,
            compute_cycles=compute_cycles,
            critical_path_cycles=critical,
            energy_j=energy + program_energy,
            latency_s=critical * self.chip.cycle_time_s(self.precision_bits),
        )

    # ------------------------------------------------------------------ #
    # Reference oracle
    # ------------------------------------------------------------------ #
    def matmul_reference(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        layer_id: Optional[str] = None,
    ) -> np.ndarray:
        """Per-lane on-array execution of the tiled matmul (ground truth).

        Every tile's products run through the owning macro's
        :meth:`~repro.core.macro.IMCMacro.elementwise_reference` — the full
        decoder / bit-line / Y-Path machinery — and the signed accumulation
        is done with exact Python integers.  Slow; used by the tests to pin
        the fast path down and by disturb-injecting configurations.
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        self._check_operands(activations, weights)
        batch = activations.shape[0]
        outer = weights.shape[1]
        entry, _ = self.program(weights, layer_id=layer_id)

        output = np.zeros((batch, outer), dtype=np.int64)
        for tile in entry.tiles:
            macro = self.chip.macro(tile.macro_index)
            a_block = activations[:, tile.row_start : tile.row_stop]
            w_block = weights[
                tile.row_start : tile.row_stop, tile.col_start : tile.col_stop
            ]
            a_mag = np.abs(a_block).reshape(batch, tile.rows, 1)
            w_mag = np.abs(w_block).reshape(1, tile.rows, tile.cols)
            a_flat = np.broadcast_to(a_mag, (batch, tile.rows, tile.cols)).reshape(-1)
            w_flat = np.broadcast_to(w_mag, (batch, tile.rows, tile.cols)).reshape(-1)
            magnitudes = macro.elementwise_reference(
                Opcode.MULT,
                a_flat.tolist(),
                w_flat.tolist(),
                precision_bits=self.precision_bits,
            )
            signs = np.sign(a_block)[:, :, None] * np.sign(w_block)[None, :, :]
            products = np.asarray(magnitudes, dtype=np.int64).reshape(
                batch, tile.rows, tile.cols
            )
            output[:, tile.col_start : tile.col_stop] += (products * signs).sum(axis=1)
        self.counters.mac_count += matmul_mac_count(activations, weights)
        self.counters.matmul_calls += 1
        return output

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def mac_count(self) -> int:
        """Multiply-accumulates executed so far (matches the golden backend)."""
        return self.counters.mac_count

    def statistics(self) -> Dict[str, float]:
        """Chip ledger + engine counters + cache counters in one flat dict."""
        summary = self.chip.stats.summary()
        summary["mac_count"] = float(self.counters.mac_count)
        summary["matmul_calls"] = float(self.counters.matmul_calls)
        summary["programmed_tiles"] = float(self.counters.programmed_tiles)
        summary["program_cycles"] = float(self.counters.program_cycles)
        summary["program_energy_j"] = self.counters.program_energy_j
        for key, value in self.cache.summary().items():
            summary[f"cache_{key}"] = value
        return summary

    def reset_stats(self) -> None:
        """Clear the chip ledgers and engine counters (cache stays resident)."""
        self.chip.reset_stats()
        self.counters = _EngineCounters()
        self.last_dispatch = None
        self._macro_cycle_acc = [0] * self.chip.num_macros
        self._energy_acc = 0.0
