"""Tests for the sharded multi-macro execution engine (repro.core.chip).

The contract pinned down here:

* the vectorized fast path is bit-exact against the per-lane reference
  execution for every opcode and precision,
* an ``IMCChip`` with N=1 reproduces the single-macro results *and*
  statistics exactly (the degenerate case),
* sharding across N macros preserves results, order and ragged tails, and
* the merged chip ledger equals the sum of the per-macro ledgers.
"""

import numpy as np
import pytest

from repro.core import IMCChip, IMCMacro, MacroConfig, Opcode, VectorKernels
from repro.errors import AddressError, OperandError

INT_KEYS = ("invocations", "operations", "cycles", "array_accesses", "disturb_events")


def _random_operands(n, bits, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << bits, size=n).tolist()
    b = rng.integers(0, 1 << bits, size=n).tolist()
    return a, b


def _assert_summaries_match(fast, reference):
    for key in INT_KEYS:
        assert fast[key] == reference[key], key
    assert fast["energy_j"] == pytest.approx(reference["energy_j"], rel=1e-12)


class TestVectorizedPathMatchesReference:
    @pytest.mark.parametrize("opcode", list(Opcode))
    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    def test_values_and_stats_bit_exact(self, opcode, bits):
        a, b = _random_operands(53, bits, seed=bits)
        b_arg = b if opcode.is_dual_wordline else None
        fast_macro = IMCMacro(MacroConfig())
        ref_macro = IMCMacro(MacroConfig())
        fast = fast_macro.elementwise(opcode, a, b_arg, precision_bits=bits)
        reference = ref_macro.elementwise_reference(opcode, a, b_arg, precision_bits=bits)
        assert fast == reference
        _assert_summaries_match(fast_macro.stats.summary(), ref_macro.stats.summary())

    def test_empty_vector(self):
        macro = IMCMacro(MacroConfig())
        assert macro.elementwise(Opcode.ADD, [], []) == []
        assert macro.stats.total_invocations == 0

    def test_operand_validation(self):
        macro = IMCMacro(MacroConfig())
        with pytest.raises(OperandError):
            macro.elementwise(Opcode.ADD, [256], [0])
        with pytest.raises(OperandError):
            macro.elementwise(Opcode.ADD, [1, 2], [1])
        with pytest.raises(OperandError):
            macro.elementwise(Opcode.ADD, [1])

    def test_disturb_injection_keeps_reference_path(self):
        # With read-disturb injection the dispatcher must run the real
        # cell-level accesses (the fast path cannot flip cells).
        macro = IMCMacro(MacroConfig(inject_read_disturb=True))
        a, b = _random_operands(8, 8, seed=9)
        assert macro.elementwise(Opcode.ADD, a, b) == [(x + y) % 256 for x, y in zip(a, b)]


class TestSingleMacroDegenerateCase:
    @pytest.mark.parametrize("opcode", [Opcode.ADD, Opcode.SUB, Opcode.MULT, Opcode.XOR])
    def test_chip_n1_equals_macro(self, opcode):
        a, b = _random_operands(300, 8, seed=3)
        chip = IMCChip(1)
        macro = IMCMacro(MacroConfig())
        assert chip.elementwise(opcode, a, b) == macro.elementwise(opcode, a, b)
        _assert_summaries_match(chip.stats.summary(), macro.stats.summary())

    def test_chip_n1_equals_reference(self):
        a, b = _random_operands(100, 8, seed=4)
        chip = IMCChip(1)
        reference = IMCMacro(MacroConfig())
        assert chip.elementwise(Opcode.MULT, a, b) == reference.elementwise_reference(
            Opcode.MULT, a, b
        )

    def test_kernels_on_chip_match_kernels_on_macro(self):
        rng = np.random.default_rng(5)
        a = rng.integers(-100, 100, size=96).tolist()
        b = rng.integers(-100, 100, size=96).tolist()
        on_chip = VectorKernels(IMCChip(1), precision_bits=8)
        on_macro = VectorKernels(IMCMacro(MacroConfig()), precision_bits=8)
        chip_dot = on_chip.dot(a, b)
        macro_dot = on_macro.dot(a, b)
        assert chip_dot.value == macro_dot.value == int(np.dot(a, b))
        assert chip_dot.cycles == macro_dot.cycles
        assert chip_dot.operations == macro_dot.operations
        assert chip_dot.energy_j == pytest.approx(macro_dot.energy_j, rel=1e-12)


class TestSharding:
    @pytest.mark.parametrize("num_macros", [2, 3, 4, 8])
    @pytest.mark.parametrize("opcode", [Opcode.ADD, Opcode.MULT])
    def test_sharded_results_bit_exact(self, num_macros, opcode):
        a, b = _random_operands(1000, 8, seed=num_macros)
        chip = IMCChip(num_macros)
        single = IMCMacro(MacroConfig())
        assert chip.elementwise(opcode, a, b) == single.elementwise(opcode, a, b)

    def test_ragged_tail_shard(self):
        # 16 lanes per ADD batch at 8-bit: 35 elements = 2 full batches + 3.
        chip = IMCChip(2)
        lanes = chip.macro(0).lane_count(Opcode.ADD, 8)
        n = 2 * lanes + 3
        a, b = _random_operands(n, 8, seed=7)
        result = chip.run_elementwise(Opcode.ADD, a, b)
        assert result.values.tolist() == [(x + y) % 256 for x, y in zip(a, b)]
        assert sum(result.shard_sizes) == n
        # The ragged batch lands on macro 0 (third batch, round-robin).
        assert result.shard_sizes == (lanes + 3, lanes)

    def test_vector_shorter_than_one_batch(self):
        chip = IMCChip(4)
        result = chip.run_elementwise(Opcode.ADD, [1, 2], [3, 4])
        assert result.values.tolist() == [4, 6]
        assert result.shard_sizes == (2, 0, 0, 0)
        assert result.critical_path_cycles == result.total_cycles

    def test_merged_stats_equal_sum_of_per_macro_stats(self):
        chip = IMCChip(4)
        a, b = _random_operands(777, 8, seed=11)
        chip.elementwise(Opcode.MULT, a, b)
        merged = chip.stats
        per_macro = chip.per_macro_statistics()
        assert merged.total_cycles == sum(s.total_cycles for s in per_macro)
        assert merged.total_operations == sum(s.total_operations for s in per_macro)
        assert merged.total_invocations == sum(s.total_invocations for s in per_macro)
        assert merged.total_energy_j == pytest.approx(
            sum(s.total_energy_j for s in per_macro)
        )
        assert merged.total_operations == 777

    def test_work_spreads_across_all_macros(self):
        chip = IMCChip(4)
        a, b = _random_operands(1024, 8, seed=13)
        chip.elementwise(Opcode.ADD, a, b)
        assert all(s.total_invocations > 0 for s in chip.per_macro_statistics())

    def test_critical_path_shrinks_with_macros(self):
        a, b = _random_operands(4096, 8, seed=17)
        criticals = {}
        for n in (1, 2, 4, 8):
            chip = IMCChip(n)
            result = chip.run_elementwise(Opcode.MULT, a, b)
            criticals[n] = result.critical_path_cycles
            # Work is independent of the shard count.
            assert result.total_cycles == result.parallel_speedup * criticals[n]
        assert criticals[1] > criticals[2] > criticals[4] > criticals[8]
        # Work is conserved: N=8 critical path is ~1/8 of the N=1 one.
        assert criticals[8] == pytest.approx(criticals[1] / 8, rel=0.02)

    def test_dispatch_result_accounting(self):
        chip = IMCChip(2)
        a, b = _random_operands(64, 8, seed=19)
        chip.reset_stats()
        result = chip.run_elementwise(Opcode.ADD, a, b)
        assert result.total_cycles == chip.stats.total_cycles
        assert result.energy_j == pytest.approx(chip.stats.total_energy_j)
        assert result.latency_s == pytest.approx(
            result.critical_path_cycles * chip.cycle_time_s(8)
        )
        assert result.parallel_speedup == pytest.approx(2.0)


class TestChipInterface:
    def test_precision_reconfiguration(self):
        chip = IMCChip(2)
        chip.set_precision(4)
        assert chip.precision_bits == 4
        assert all(m.precision_bits == 4 for m in chip.macros)
        assert chip.elementwise(Opcode.MULT, [15, 14], [15, 13], precision_bits=4) == [225, 182]

    def test_aggregate_geometry(self):
        chip = IMCChip(4)
        single = IMCMacro(MacroConfig())
        assert chip.words_per_row(8) == 4 * single.words_per_row(8)
        assert chip.mult_slots_per_row(8) == 4 * single.mult_slots_per_row(8)
        assert chip.capacity_bytes == 4 * single.config.capacity_bytes

    def test_scalar_compute_delegates(self):
        chip = IMCChip(2)
        assert chip.compute(Opcode.ADD, 100, 55) == 155
        assert chip.macro(0).stats.total_invocations == 1
        assert chip.macro(1).stats.total_invocations == 0

    def test_reduce_add(self):
        chip = IMCChip(2)
        values = list(range(-50, 75))
        assert chip.reduce_add(values, 32) == sum(values)

    def test_macro_index_bounds(self):
        chip = IMCChip(2)
        with pytest.raises(AddressError):
            chip.macro(2)

    def test_reset_stats(self):
        chip = IMCChip(2)
        a, b = _random_operands(100, 8, seed=23)
        chip.elementwise(Opcode.ADD, a, b)
        chip.reset_stats()
        assert chip.stats.total_cycles == 0
        assert chip.stats.total_invocations == 0

    def test_dual_operand_required(self):
        chip = IMCChip(2)
        with pytest.raises(OperandError):
            chip.elementwise(Opcode.ADD, [1, 2])

    def test_empty_dispatch(self):
        chip = IMCChip(3)
        result = chip.run_elementwise(Opcode.ADD, [], [])
        assert result.values.size == 0
        assert result.total_cycles == 0
        assert result.critical_path_cycles == 0

    def test_wide_mult_products_exceed_int64(self):
        # 32-bit MULT products need 64 unsigned bits; the sharded dispatch
        # must carry them as exact Python integers (object dtype).
        config = MacroConfig(cols=256, precision_bits=32)
        chip = IMCChip(2, config)
        value = (1 << 32) - 1
        assert chip.elementwise(Opcode.MULT, [value, 3, value], [value, 5, value]) == [
            value * value,
            15,
            value * value,
        ]

    def test_wide_mult_with_disturb_injection(self):
        # The disturb-routed reference path must survive >int64 products too.
        config = MacroConfig(cols=256, precision_bits=32, inject_read_disturb=True)
        chip = IMCChip(2, config)
        value = (1 << 32) - 1
        assert chip.elementwise(Opcode.MULT, [value, 3], [value, 5]) == [value * value, 15]

    def test_disturb_chip_uses_decorrelated_macro_seeds(self):
        chip = IMCChip(3, MacroConfig(inject_read_disturb=True, seed=5))
        assert [m.config.seed for m in chip.macros] == [5, 6, 7]
