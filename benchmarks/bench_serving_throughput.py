"""Batched CNN serving on the weight-stationary engine + the 50x gate.

Two measurements:

* **Acceptance gate** — end-to-end CNN inference (conv via im2col + MLP
  head) on the pattern dataset through the weight-stationary
  :class:`TiledMatmulEngine` must beat the per-scalar IMC matmul path (one
  ``macro.compute(MULT)`` round trip per multiply — the seed's execution
  discipline) by >= 50x per image.  The per-scalar path runs on a small
  image slice; both paths are timed on the *same* slice, so the ratio is a
  direct measurement, not an extrapolation.
* **Serving sweep** — :func:`repro.analysis.experiments.serving_throughput_study`:
  the trained CNN served through :class:`repro.serve.InferenceServer` at
  several coalescing batch sizes; throughput rises with the batch budget
  while the weight cache keeps every layer programmed exactly once.

JSON lands in ``benchmarks/results/serving_throughput.json`` for the
`bench-regression` CI gate.
"""

import os
import time

import numpy as np

from repro.analysis import experiments
from repro.analysis.report import format_table
from repro.core import IMCMacro, MacroConfig, Opcode
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SAMPLES = 120 if SMOKE else 240
EPOCHS = 8 if SMOKE else 12
BATCH_SIZES = (1, 8, 32) if SMOKE else (1, 4, 16, 64)
GATE_IMAGES = 2
NUM_MACROS = 16
SPEEDUP_GATE = 50.0


class PerScalarIMCBackend:
    """The seed's discipline: one in-memory round trip per scalar multiply.

    Every multiply writes both operand words into scratch rows, runs the
    full MULT micro-sequence on the array, and reads the product back —
    reprogramming the operands for every MAC, which is exactly what the
    weight-stationary engine exists to avoid.
    """

    def __init__(self, precision_bits: int = 8) -> None:
        self.macro = IMCMacro(MacroConfig(precision_bits=precision_bits))
        self.precision_bits = precision_bits

    def __call__(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        batch, inner = activations.shape
        outer = weights.shape[1]
        output = np.zeros((batch, outer), dtype=np.int64)
        for row in range(batch):
            for col in range(outer):
                total = 0
                for k in range(inner):
                    a = int(activations[row, k])
                    w = int(weights[k, col])
                    magnitude = self.macro.compute(
                        Opcode.MULT, abs(a), abs(w), self.precision_bits
                    )
                    total += (1 if a >= 0 else -1) * (1 if w >= 0 else -1) * magnitude
                output[row, col] = total
        return output


def test_cnn_speedup_vs_per_scalar_path(reporter, write_results_json):
    dataset = make_pattern_image_dataset(samples=SAMPLES, size=8)
    cnn, training = train_pattern_cnn(dataset, epochs=EPOCHS)
    slice_images = dataset.test_images[:GATE_IMAGES]

    scalar_model = cnn.with_backend(PerScalarIMCBackend())
    start = time.perf_counter()
    scalar_predictions = scalar_model.predict(slice_images)
    scalar_wall = time.perf_counter() - start

    engine_model = cnn.with_chip(num_macros=NUM_MACROS)
    start = time.perf_counter()
    engine_predictions = engine_model.predict(slice_images)
    engine_wall = time.perf_counter() - start

    reference_predictions = cnn.predict(slice_images)
    assert np.array_equal(engine_predictions, reference_predictions)
    assert np.array_equal(scalar_predictions, reference_predictions)

    macs = cnn.mac_count(slice_images)
    speedup = scalar_wall / engine_wall
    reporter(
        f"End-to-end CNN inference, {GATE_IMAGES} images "
        f"({macs} MACs) — weight-stationary engine vs per-scalar path",
        format_table(
            ["path", "host wall [s]", "per-image [ms]", "speedup"],
            [
                ["per-scalar IMC backend", scalar_wall, scalar_wall / GATE_IMAGES * 1e3, 1.0],
                [
                    f"tiled engine ({NUM_MACROS} macros)",
                    engine_wall,
                    engine_wall / GATE_IMAGES * 1e3,
                    speedup,
                ],
            ],
        ),
    )

    write_results_json(
        "serving_speedup",
        {
            "smoke": SMOKE,
            "gate_images": GATE_IMAGES,
            "mac_count": macs,
            "per_scalar_wall_s": scalar_wall,
            "engine_wall_s": engine_wall,
            "speedup": speedup,
            "gate": SPEEDUP_GATE,
            "float_test_accuracy": training.test_accuracy,
        },
    )
    # Acceptance gate of the matmul-engine PR.
    assert speedup >= SPEEDUP_GATE


def test_serving_throughput_sweep(benchmark, reporter, write_results_json):
    result = benchmark.pedantic(
        experiments.serving_throughput_study,
        kwargs={
            "batch_sizes": BATCH_SIZES,
            "num_macros": NUM_MACROS,
            "samples": SAMPLES,
            "epochs": EPOCHS,
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for batch_size in BATCH_SIZES:
        point = result[batch_size]
        rows.append(
            [
                batch_size,
                point.batches,
                point.mean_batch_size,
                point.throughput_images_per_s,
                point.mean_latency_s * 1e3,
                point.modeled_chip_time_s * 1e6,
                point.mean_utilization,
                point.accuracy,
            ]
        )
    reporter(
        f"Batched serving on {NUM_MACROS} macros — coalescing sweep",
        format_table(
            [
                "max batch",
                "batches",
                "mean size",
                "imgs/s (host)",
                "mean lat [ms]",
                "chip time [us]",
                "utilization",
                "accuracy",
            ],
            rows,
        ),
    )

    write_results_json(
        "serving_throughput",
        {
            "smoke": SMOKE,
            "num_macros": NUM_MACROS,
            "points": {
                str(batch_size): {
                    "requests": point.requests,
                    "images": point.images,
                    "batches": point.batches,
                    "mean_batch_size": point.mean_batch_size,
                    "throughput_images_per_s": point.throughput_images_per_s,
                    "mean_latency_s": point.mean_latency_s,
                    "max_latency_s": point.max_latency_s,
                    "modeled_chip_time_s": point.modeled_chip_time_s,
                    "mean_utilization": point.mean_utilization,
                    "cache_hits": point.cache_hits,
                    "cache_misses": point.cache_misses,
                    "accuracy": point.accuracy,
                }
                for batch_size, point in result.items()
            },
        },
    )

    largest = result[BATCH_SIZES[-1]]
    smallest = result[BATCH_SIZES[0]]
    # Coalescing must pay: bigger batches -> strictly higher host throughput
    # (generous 1.5x floor; in practice it is much larger).
    assert largest.throughput_images_per_s > 1.5 * smallest.throughput_images_per_s
    # Every point classifies the pattern task essentially as well as float.
    for point in result.values():
        assert point.accuracy >= 0.8
