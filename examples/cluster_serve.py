"""Mixed-SLA serving on a DVFS-aware multi-chip cluster.

Run with::

    python examples/cluster_serve.py

The fleet-scale path of the reproduction: two quantised CNNs are served by
a :class:`repro.cluster.ClusterRouter` over four chips pinned to different
supply-voltage operating points (two fast 1.0 V nodes, two efficient 0.6 V
nodes).  Latency-class requests carry deadlines and ride the fast rung;
throughput-class requests ride the efficient rung (joules scale with VDD^2,
cycle time with the delay model); weight-affinity routing keeps each
model's traffic on nodes whose caches already hold its layers until the
model runs hot and replicates.  A reactive autoscaler then parks the idle
half of the fleet once the burst passes.  Everything runs in modeled
virtual time, so every number printed here is deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterNode, ClusterRouter, ReactiveAutoscaler, SLAClass
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn

NUM_MACROS = 16
WAVES = 5


def main() -> None:
    print("=== Training two pattern CNNs (8-bit) ===")
    dataset = make_pattern_image_dataset(samples=150, size=8, seed=13)
    model_a, _ = train_pattern_cnn(dataset, epochs=8, seed=0)
    model_b, _ = train_pattern_cnn(dataset, epochs=8, seed=1)

    print("\n=== Building the DVFS fleet ===")
    fleet = [
        ClusterNode("fast-0", vdd=1.0, num_macros=NUM_MACROS),
        ClusterNode("fast-1", vdd=1.0, num_macros=NUM_MACROS),
        ClusterNode("eco-0", vdd=0.6, num_macros=NUM_MACROS),
        ClusterNode("eco-1", vdd=0.6, num_macros=NUM_MACROS),
    ]
    for node in fleet:
        print(
            f"  {node.node_id}: {node.vdd:.1f} V, "
            f"{node.max_frequency_hz / 1e6:7.0f} MHz, "
            f"{node.num_macros} macros"
        )

    with ClusterRouter(fleet) as router:
        router.register_model("model-a", model_a)
        router.register_model("model-b", model_b)

        # Deadline: 3x the warm modeled latency of a fast node.
        probe = dataset.test_images[:2]
        fleet[0].execute("model-a", probe)  # warm one fast node
        deadline_s = 3.0 * fleet[0].estimate_request("model-a", probe).latency_s
        print(f"\nlatency-class deadline: {deadline_s * 1e6:.1f} us")

        print(f"\n=== Serving {WAVES} mixed-SLA waves ===")
        cursor = 0
        for wave in range(WAVES):
            arrival = wave * 4.0 * deadline_s
            for model_id, count, sla in (
                ("model-a", 2, SLAClass.LATENCY),
                ("model-b", 6, SLAClass.THROUGHPUT),
                ("model-a", 2, SLAClass.BEST_EFFORT),
            ):
                images = dataset.test_images[cursor : cursor + count]
                cursor = (cursor + count) % (dataset.test_images.shape[0] - 8)
                router.submit(
                    model_id,
                    images,
                    sla=sla,
                    deadline_s=deadline_s if sla is SLAClass.LATENCY else None,
                    arrival_s=arrival,
                )
            for result in router.drain():
                flag = "MISS" if result.deadline_missed else (
                    "warm" if result.affinity_hit else "cold"
                )
                print(
                    f"  wave {wave}: {result.sla.value:>11} {result.model_id} "
                    f"-> {result.node_id:7s} lat {result.latency_s * 1e6:7.2f} us "
                    f"E {result.energy_j * 1e9:7.2f} nJ [{flag}]"
                )

        telemetry = router.telemetry
        print("\n=== Class outcomes (modeled) ===")
        for sla in SLAClass:
            traces = telemetry.traces_for(sla=sla.value)
            if not traces:
                continue
            print(
                f"  {sla.value:>11}: {len(traces):2d} requests, "
                f"mean latency {telemetry.mean_latency_s(sla=sla.value) * 1e6:7.2f} us, "
                f"energy/image {telemetry.energy_per_image_j(sla=sla.value) * 1e9:6.2f} nJ, "
                f"miss rate {telemetry.deadline_miss_rate(sla=sla.value):.2f}"
            )

        print("\n=== Per-node ledger (sums to the cluster ledger) ===")
        cluster = router.ledger()
        for node in router.nodes:
            ledger = node.ledger()
            print(
                f"  {node.node_id}: {node.telemetry.dispatches:2.0f} dispatches, "
                f"{ledger.total_cycles:9d} cycles, "
                f"{ledger.total_energy_j * 1e9:8.2f} nJ"
            )
        print(
            f"  cluster: {cluster.total_cycles:9d} cycles, "
            f"{cluster.total_energy_j * 1e9:8.2f} nJ"
        )

        print("\n=== Autoscaler reaction to the quiet period ===")
        scaler = ReactiveAutoscaler(router, min_active=1, park_after_idle=2)
        for _ in range(4):
            for action in scaler.observe():
                print(
                    f"  step {action.step}: {action.action} {action.node_id} "
                    f"(vdd {action.vdd:.1f}) — {action.reason}"
                )
        active = [node.node_id for node in router.active_nodes]
        print(f"  still active: {', '.join(active)}")

        # Sanity: the routed predictions match the reference models.
        check = dataset.test_images[:4]
        request = router.submit("model-a", check, sla=SLAClass.BEST_EFFORT)
        router.drain()
        assert np.array_equal(
            router.result(request).predictions, model_a.predict(check)
        )
        print("\nrouted predictions verified bit-exact against the reference")


if __name__ == "__main__":
    main()
