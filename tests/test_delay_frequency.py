"""Unit tests for the cycle breakdown (Fig. 8 left) and max-frequency model
(Fig. 8 right)."""

import pytest

from repro.circuits.delay import CycleDelayModel
from repro.circuits.frequency import FrequencyModel
from repro.tech import OperatingPoint, ProcessCorner


@pytest.fixture()
def delay_model(technology, calibration):
    return CycleDelayModel(technology, calibration)


@pytest.fixture()
def frequency_model(technology, calibration):
    return FrequencyModel(technology, calibration)


class TestCycleBreakdown:
    def test_components_match_paper_at_nominal(self, delay_model):
        breakdown = delay_model.breakdown(OperatingPoint(vdd=0.9), precision_bits=8)
        expected_ps = {
            "bl_precharge": 60.0,
            "wl_activation": 140.0,
            "bl_sensing": 130.0,
            "logic": 222.0,
            "writeback": 51.0,
        }
        for name, value in breakdown.as_dict().items():
            assert value * 1e12 == pytest.approx(expected_ps[name], rel=0.05), name

    def test_total_is_603ps_at_nominal(self, delay_model):
        breakdown = delay_model.breakdown(OperatingPoint(vdd=0.9), precision_bits=8)
        assert breakdown.total_s * 1e12 == pytest.approx(603.0, rel=0.05)

    def test_fractions_sum_to_one(self, delay_model):
        fractions = delay_model.breakdown(OperatingPoint()).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_logic_delay_dominates(self, delay_model):
        # The paper's breakdown shows the 16-bit adder (36.8 %) as the largest
        # single component.
        fractions = delay_model.breakdown(OperatingPoint(vdd=0.9)).fractions()
        assert fractions["logic"] == max(fractions.values())
        assert fractions["logic"] == pytest.approx(0.368, abs=0.05)

    def test_bl_separator_shortens_writeback(self, delay_model):
        point = OperatingPoint()
        with_sep = delay_model.breakdown(point, bl_separator=True)
        without_sep = delay_model.breakdown(point, bl_separator=False)
        assert with_sep.writeback_s < without_sep.writeback_s
        assert with_sep.total_s < without_sep.total_s

    def test_lower_precision_has_shorter_logic_delay(self, delay_model):
        point = OperatingPoint()
        assert delay_model.logic_delay(point, 2) < delay_model.logic_delay(point, 8)

    def test_cycle_time_wrapper(self, delay_model):
        point = OperatingPoint()
        assert delay_model.cycle_time(point) == pytest.approx(
            delay_model.breakdown(point).total_s
        )


class TestFrequencyModel:
    def test_2_25_ghz_at_1v(self, frequency_model):
        point = frequency_model.max_frequency(1.0, corner=ProcessCorner.FF)
        assert point.max_frequency_hz == pytest.approx(2.25e9, rel=0.05)

    def test_372_mhz_at_0p6v(self, frequency_model):
        point = frequency_model.max_frequency(0.6, corner=ProcessCorner.FF)
        assert point.max_frequency_hz == pytest.approx(372e6, rel=0.08)

    def test_frequency_monotone_in_voltage(self, frequency_model):
        sweep = frequency_model.voltage_sweep()
        frequencies = [point.max_frequency_hz for point in sweep]
        assert all(a < b for a, b in zip(frequencies, frequencies[1:]))

    def test_supply_range_covered(self, frequency_model, technology):
        sweep = frequency_model.voltage_sweep()
        assert sweep[0].vdd == pytest.approx(technology.vdd_min)
        assert sweep[-1].vdd == pytest.approx(technology.vdd_max)

    def test_corner_map_orders_ss_slowest(self, frequency_model):
        corner_map = frequency_model.corner_map(0.9)
        assert (
            corner_map[ProcessCorner.SS].max_frequency_hz
            < corner_map[ProcessCorner.NN].max_frequency_hz
            < corner_map[ProcessCorner.FF].max_frequency_hz
        )

    def test_out_of_range_voltage_rejected(self, frequency_model):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            frequency_model.max_frequency(1.3)

    def test_cycle_time_and_frequency_consistent(self, frequency_model):
        point = frequency_model.max_frequency(0.9)
        assert point.cycle_time_s * point.max_frequency_hz == pytest.approx(1.0)
