"""Generic parameter-sweep helpers.

The experiment drivers sweep three parameters over and over: supply voltage,
process corner and bit precision.  These helpers keep that code in one place
and return plain dictionaries that are easy to tabulate or assert on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, TypeVar

from repro.tech.technology import OperatingPoint, ProcessCorner, TechnologyProfile

__all__ = ["sweep_voltages", "sweep_corners", "sweep_precisions"]

T = TypeVar("T")


def sweep_voltages(
    evaluate: Callable[[OperatingPoint], T],
    technology: TechnologyProfile,
    voltages: Optional[Iterable[float]] = None,
    corner: ProcessCorner = ProcessCorner.NN,
    temperature_c: float = 25.0,
) -> Dict[float, T]:
    """Evaluate a function at a list of supply voltages."""
    if voltages is None:
        voltages = technology.supply_range(points=6)
    results: Dict[float, T] = {}
    for vdd in voltages:
        point = OperatingPoint(vdd=vdd, temperature_c=temperature_c, corner=corner)
        technology.validate_operating_point(point)
        results[round(vdd, 4)] = evaluate(point)
    return results


def sweep_corners(
    evaluate: Callable[[OperatingPoint], T],
    vdd: float = 0.9,
    temperature_c: float = 25.0,
    corners: Optional[Sequence[ProcessCorner]] = None,
) -> Dict[ProcessCorner, T]:
    """Evaluate a function at every process corner (Fig. 7a ordering)."""
    if corners is None:
        corners = ProcessCorner.evaluation_order()
    return {
        corner: evaluate(
            OperatingPoint(vdd=vdd, temperature_c=temperature_c, corner=corner)
        )
        for corner in corners
    }


def sweep_precisions(
    evaluate: Callable[[int], T],
    precisions: Sequence[int] = (2, 4, 8),
) -> Dict[int, T]:
    """Evaluate a function at every requested bit precision."""
    return {bits: evaluate(bits) for bits in precisions}
