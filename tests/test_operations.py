"""Unit tests for the opcode set and Table I cycle counts."""

import pytest

from repro.core.operations import (
    Opcode,
    OperationCategory,
    SUPPORTED_PRECISIONS,
    cycles_for,
)
from repro.errors import ConfigurationError


class TestOpcodeProperties:
    def test_single_wordline_operations(self):
        for opcode in (Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT):
            assert opcode.is_dual_wordline is False

    def test_dual_wordline_operations(self):
        for opcode in (Opcode.AND, Opcode.XOR, Opcode.ADD, Opcode.SUB, Opcode.MULT):
            assert opcode.is_dual_wordline is True

    def test_logic_category(self):
        for opcode in (Opcode.AND, Opcode.NAND, Opcode.OR, Opcode.NOR, Opcode.XOR, Opcode.XNOR):
            assert opcode.is_logic is True
            assert opcode.category is OperationCategory.LOGIC

    def test_composite_category(self):
        assert Opcode.SUB.category is OperationCategory.COMPOSITE
        assert Opcode.MULT.category is OperationCategory.COMPOSITE

    def test_move_operations_write_back(self):
        for opcode in (Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT, Opcode.ADD_SHIFT):
            assert opcode.writes_back is True
        assert Opcode.ADD.writes_back is False

    def test_energy_mnemonics_exist_for_every_opcode(self):
        for opcode in Opcode:
            assert isinstance(opcode.energy_mnemonic, str)
            assert opcode.energy_mnemonic


class TestCycleCounts:
    """Table I: every operation is 1 cycle except SUB (2) and MULT (N+2)."""

    @pytest.mark.parametrize("bits", [2, 4, 8, 16, 32])
    def test_single_cycle_operations(self, bits):
        for opcode in (
            Opcode.AND,
            Opcode.NAND,
            Opcode.OR,
            Opcode.NOR,
            Opcode.XOR,
            Opcode.XNOR,
            Opcode.NOT,
            Opcode.COPY,
            Opcode.SHIFT_LEFT,
            Opcode.ADD,
            Opcode.ADD_SHIFT,
        ):
            assert cycles_for(opcode, bits) == 1

    @pytest.mark.parametrize("bits", [2, 4, 8, 16, 32])
    def test_sub_is_two_cycles(self, bits):
        assert cycles_for(Opcode.SUB, bits) == 2

    @pytest.mark.parametrize("bits, expected", [(2, 4), (4, 6), (8, 10), (16, 18), (32, 34)])
    def test_mult_is_n_plus_two_cycles(self, bits, expected):
        assert cycles_for(Opcode.MULT, bits) == expected

    def test_supported_precisions(self):
        assert SUPPORTED_PRECISIONS == (2, 4, 8, 16, 32)

    def test_unsupported_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_for(Opcode.ADD, 3)

    def test_non_positive_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_for(Opcode.ADD, 0)
