"""Plain-text rendering of tables and distributions.

The benchmark harness prints the regenerated tables/figures as text so that a
reader can compare them line by line against the paper without any plotting
dependency.  Two renderers cover everything:

* :func:`format_table` — a fixed-width ASCII table, and
* :func:`histogram_text` — a horizontal-bar histogram used for the Fig. 2
  delay distributions.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["format_table", "histogram_text", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Human-friendly float formatting (scientific for very small/large)."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [
                format_float(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def histogram_text(
    samples: np.ndarray,
    bins: int = 20,
    width: int = 50,
    unit_scale: float = 1.0,
    unit_label: str = "",
) -> str:
    """Render a sample population as a horizontal-bar text histogram."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("cannot render an empty sample population")
    counts, edges = np.histogram(samples, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines: List[str] = []
    for index, count in enumerate(counts):
        low = edges[index] * unit_scale
        high = edges[index + 1] * unit_scale
        bar = "#" * int(round(width * count / peak))
        lines.append(
            f"{low:8.3f} - {high:8.3f} {unit_label} | {bar} ({count})"
        )
    return "\n".join(lines)
