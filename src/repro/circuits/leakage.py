"""Static (leakage) power model of the macro.

The paper's headline TOPS/W numbers are dynamic-energy figures (Table II /
Fig. 8); this module adds the piece a system designer needs on top of them:
how much the idle array leaks, and how that leakage eats into the effective
energy efficiency when the macro is clocked slowly (e.g. at 0.6 V / 372 MHz)
or sits partially idle.

The model is deliberately first-order:

* every 6T cell leaks a sub-threshold current that grows exponentially with
  supply voltage and temperature and shifts with the process corner,
* the added peripheral devices (booster, FA-Logics, flip-flops) contribute a
  fixed multiple of the cell leakage per active column, and
* the LVT devices of the BL booster leak roughly an order of magnitude more
  per width than regular-Vt devices, which is why the paper gates them with
  the BSTRS reset.

The default constants give a 128x128 macro roughly 15 uW of leakage at
0.9 V / 25 C — a typical figure for a 16 Kb 28 nm array — and the tests only
rely on the qualitative behaviour (monotonicity with V/T/corner and the
relative size of the contributions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.technology import OperatingPoint, TechnologyProfile
from repro.tech.calibration import CALIBRATED_28NM
from repro.utils.validation import check_positive

__all__ = ["LeakageParameters", "LeakageModel"]


@dataclass(frozen=True)
class LeakageParameters:
    """Constants of the leakage model."""

    #: Per-cell leakage current at the nominal supply / 25 C / NN corner.
    cell_leakage_a: float = 8.0e-10
    #: Exponential supply sensitivity (decades per volt ~ 1/0.3 natural).
    supply_sensitivity_per_v: float = 3.0
    #: Leakage doubles roughly every ``temperature_doubling_c`` degrees.
    temperature_doubling_c: float = 12.0
    #: Corner sensitivity: leakage change per volt of threshold shift.
    vth_sensitivity_per_v: float = 25.0
    #: Peripheral (Y-Path) leakage per active column, in cell equivalents.
    peripheral_cells_per_column: float = 8.0
    #: Extra leakage factor of the LVT boost devices (per active column,
    #: expressed in cell equivalents after the 10x LVT penalty).
    lvt_booster_cells_per_column: float = 6.0

    def __post_init__(self) -> None:
        for name in (
            "cell_leakage_a",
            "supply_sensitivity_per_v",
            "temperature_doubling_c",
            "vth_sensitivity_per_v",
            "peripheral_cells_per_column",
            "lvt_booster_cells_per_column",
        ):
            check_positive(name, getattr(self, name))


class LeakageModel:
    """Static power of one macro and its effect on energy efficiency.

    The macro geometry is passed directly (rows / columns / dummy rows /
    interleave) so this module stays below :mod:`repro.core` in the layering
    and can be used for arbitrary array shapes.
    """

    def __init__(
        self,
        rows: int = 128,
        cols: int = 128,
        dummy_rows: int = 3,
        interleave: int = 4,
        technology: TechnologyProfile = CALIBRATED_28NM,
        parameters: LeakageParameters | None = None,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        check_positive("dummy_rows", dummy_rows)
        check_positive("interleave", interleave)
        self.rows = rows
        self.cols = cols
        self.dummy_rows = dummy_rows
        self.interleave = interleave
        self.technology = technology
        self.parameters = parameters if parameters is not None else LeakageParameters()

    @property
    def active_columns(self) -> int:
        """Columns served by a Y-Path (one per interleave group)."""
        return self.cols // self.interleave

    # ------------------------------------------------------------------ #
    # Per-device and per-macro leakage
    # ------------------------------------------------------------------ #
    def cell_leakage_current(self, point: OperatingPoint) -> float:
        """Leakage current of one 6T cell (amperes) at an operating point."""
        parameters = self.parameters
        reference_vdd = self.technology.vdd_nominal
        supply_factor = math.exp(
            parameters.supply_sensitivity_per_v * (point.vdd - reference_vdd)
        )
        temperature_factor = 2.0 ** (
            (point.temperature_c - 25.0) / parameters.temperature_doubling_c
        )
        vth_shift = self.technology.corner_spec(point.corner).dvth_n
        corner_factor = math.exp(-parameters.vth_sensitivity_per_v * vth_shift)
        return (
            parameters.cell_leakage_a * supply_factor * temperature_factor * corner_factor
        )

    def leakage_power(self, point: OperatingPoint) -> float:
        """Total static power of the macro (watts)."""
        parameters = self.parameters
        cell_current = self.cell_leakage_current(point)
        array_cells = self.rows * self.cols
        dummy_cells = self.dummy_rows * self.cols
        peripheral_cells = self.active_columns * (
            parameters.peripheral_cells_per_column
            + parameters.lvt_booster_cells_per_column
        )
        total_current = cell_current * (array_cells + dummy_cells + peripheral_cells)
        return total_current * point.vdd

    def peripheral_share(self, point: OperatingPoint) -> float:
        """Fraction of the macro's leakage due to the added computing blocks."""
        parameters = self.parameters
        peripheral_cells = self.active_columns * (
            parameters.peripheral_cells_per_column
            + parameters.lvt_booster_cells_per_column
        )
        array_cells = self.rows * self.cols
        dummy_cells = self.dummy_rows * self.cols
        return peripheral_cells / (array_cells + dummy_cells + peripheral_cells)

    # ------------------------------------------------------------------ #
    # Effect on energy efficiency
    # ------------------------------------------------------------------ #
    def energy_per_operation_with_leakage(
        self,
        dynamic_energy_j: float,
        operation_cycles: int,
        cycle_time_s: float,
        point: OperatingPoint,
        parallel_operations: int = 1,
    ) -> float:
        """Dynamic energy plus the leakage charged to one operation.

        The macro leaks for the whole duration of the operation; when
        ``parallel_operations`` word-level results are produced by the same
        access, the leakage is shared between them.
        """
        check_positive("operation_cycles", operation_cycles)
        check_positive("cycle_time_s", cycle_time_s)
        check_positive("parallel_operations", parallel_operations)
        leak = self.leakage_power(point) * operation_cycles * cycle_time_s
        return dynamic_energy_j + leak / parallel_operations

    def effective_tops_per_watt(
        self,
        dynamic_energy_j: float,
        operation_cycles: int,
        cycle_time_s: float,
        point: OperatingPoint,
        parallel_operations: int = 1,
    ) -> float:
        """TOPS/W including the leakage contribution."""
        energy = self.energy_per_operation_with_leakage(
            dynamic_energy_j,
            operation_cycles,
            cycle_time_s,
            point,
            parallel_operations,
        )
        return 1.0 / (energy * 1e12)
