# Convenience targets for the DAC 2020 bit-parallel IMC reproduction.
#
#   make test        tier-1 verification (the command CI runs)
#   make bench       regenerate every paper artefact + extension study
#   make docs-check  documentation-consistency tests only
#   make chip-bench  just the sharded multi-macro scaling benchmark
#   make examples    run every example script end-to-end

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

.PHONY: test bench docs-check chip-bench examples clean

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only

docs-check:
	$(PYTHON) -m pytest tests/test_documentation.py -q

chip-bench:
	$(PYTHON) -m pytest benchmarks/bench_chip_scaling.py -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -prune -exec rm -rf {} \;
