"""Variation-aware reliability runtime: chip binning + fault injection.

Two halves, both deterministic:

* :mod:`repro.reliability.binning` turns seeded Monte-Carlo variation draws
  into per-chip speed/energy/hazard bins (:class:`ChipBin`), which
  :class:`repro.core.chip.IMCChip` and
  :class:`repro.cluster.node.ClusterNode` accept so fleets are
  heterogeneous silicon instead of nominal-corner clones;
* :mod:`repro.reliability.faults` scripts node crash / stall / degrade /
  recovery events on the cluster's virtual clock (:class:`FaultPlan`),
  which :class:`repro.cluster.router.ClusterRouter` consumes — queued work
  on a dead node is replayed onto survivors, never lost or duplicated.

Typical wiring::

    from repro.cluster import ClusterNode, ClusterRouter
    from repro.reliability import ChipBinner, FaultPlan

    bins = ChipBinner(seed=7).bin_fleet(4)
    nodes = [
        ClusterNode(b.chip_id, vdd=0.9, bin=b) for b in bins
    ]
    plan = FaultPlan.node_crash(bins[0].chip_id, at_s=1.0, recover_at_s=3.0)
    router = ClusterRouter(nodes, fault_plan=plan)
"""

from repro.reliability.binning import SPEED_GRADE_CUTOFFS, ChipBin, ChipBinner
from repro.reliability.faults import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "ChipBin",
    "ChipBinner",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SPEED_GRADE_CUTOFFS",
]
