"""First-order MOSFET behavioural model (alpha-power law).

The circuit models in :mod:`repro.circuits` only need two device quantities:

* the saturation drive current of a device for a given gate voltage, and
* an effective resistance for RC-style delay estimates.

Both are derived from the alpha-power law

    I_on = k * width_factor * (Vgs - Vth)^alpha

where ``k`` absorbs mobility, oxide capacitance and nominal sizing and
``width_factor`` expresses relative device width (a bit-cell access
transistor has ``width_factor = 1``; the BL-boost pull-down stack is several
times wider).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.technology import OperatingPoint, TechnologyProfile
from repro.utils.validation import check_positive

__all__ = [
    "DeviceType",
    "Transistor",
    "alpha_power_current",
    "alpha_power_current_batch",
]


class DeviceType(enum.Enum):
    """Transistor flavour."""

    NMOS = "nmos"
    PMOS = "pmos"


def alpha_power_current(
    k: float,
    width_factor: float,
    vgs: float,
    vth: float,
    alpha: float,
) -> float:
    """Alpha-power-law saturation current in amperes.

    Parameters
    ----------
    k:
        Technology drive factor in A/V^alpha for a unit-width device.
    width_factor:
        Relative device width (1.0 = minimum bit-cell device).
    vgs:
        Gate-source voltage (magnitude, volts).
    vth:
        Threshold voltage (magnitude, volts).
    alpha:
        Velocity-saturation exponent.
    """
    if k <= 0 or width_factor <= 0:
        raise ConfigurationError("drive factor and width factor must be positive")
    overdrive = vgs - vth
    if overdrive <= 0:
        # Behavioural sub-threshold floor: 0.1 % of the current at 100 mV
        # overdrive, enough to keep delay estimates finite but visibly huge.
        return 1e-3 * k * width_factor * (0.1 ** alpha)
    return k * width_factor * (overdrive ** alpha)


def alpha_power_current_batch(
    k: float,
    width_factor: float,
    vgs: float,
    vths: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Vectorised :func:`alpha_power_current` over an array of thresholds.

    Element-for-element it evaluates the same expressions as the scalar
    path (same floor constant, same ``overdrive ** alpha``); results agree
    with a per-sample loop to floating-point round-off (numpy's vectorised
    ``pow`` may differ from Python's scalar ``pow`` in the last ulp).
    """
    if k <= 0 or width_factor <= 0:
        raise ConfigurationError("drive factor and width factor must be positive")
    vths = np.asarray(vths, dtype=np.float64)
    overdrive = vgs - vths
    currents = np.full(
        overdrive.shape, 1e-3 * k * width_factor * (0.1 ** alpha)
    )
    conducting = overdrive > 0
    currents[conducting] = k * width_factor * (overdrive[conducting] ** alpha)
    return currents


@dataclass(frozen=True)
class Transistor:
    """A behavioural transistor bound to a technology profile.

    Attributes
    ----------
    device_type:
        NMOS or PMOS.
    drive_factor:
        Technology drive factor ``k`` in A/V^alpha for ``width_factor = 1``.
    width_factor:
        Relative width of this instance.
    lvt:
        Whether the device uses the low-threshold flavour (the BL booster's
        P0/N0/N1 devices are LVT in the paper).
    """

    technology: TechnologyProfile
    device_type: DeviceType
    drive_factor: float
    width_factor: float = 1.0
    lvt: bool = False

    def __post_init__(self) -> None:
        check_positive("drive_factor", self.drive_factor)
        check_positive("width_factor", self.width_factor)

    def threshold(self, point: OperatingPoint) -> float:
        """Threshold-voltage magnitude at the given operating point."""
        if self.device_type is DeviceType.NMOS:
            return self.technology.vth_nmos(point, lvt=self.lvt)
        return self.technology.vth_pmos(point, lvt=self.lvt)

    def on_current(
        self,
        point: OperatingPoint,
        vgs: float | None = None,
        vth_shift: float = 0.0,
    ) -> float:
        """Saturation current when driven with ``vgs`` (defaults to VDD).

        ``vth_shift`` adds a local-mismatch offset to the threshold, which is
        how the Monte-Carlo engine injects variation.
        """
        gate_drive = point.vdd if vgs is None else vgs
        vth = self.threshold(point) + vth_shift
        current = alpha_power_current(
            self.drive_factor,
            self.width_factor,
            gate_drive,
            vth,
            self.technology.alpha,
        )
        return current * self.technology.temperature_derate(point)

    def on_current_batch(
        self,
        point: OperatingPoint,
        vth_shifts: np.ndarray,
        vgs: float | None = None,
    ) -> np.ndarray:
        """Vectorised :meth:`on_current` over an array of ``vth_shift``s.

        The Monte-Carlo hot path: one call prices a whole mismatch
        population, matching the scalar loop to round-off.
        """
        gate_drive = point.vdd if vgs is None else vgs
        vths = self.threshold(point) + np.asarray(vth_shifts, dtype=np.float64)
        currents = alpha_power_current_batch(
            self.drive_factor,
            self.width_factor,
            gate_drive,
            vths,
            self.technology.alpha,
        )
        return currents * self.technology.temperature_derate(point)

    def effective_resistance(
        self,
        point: OperatingPoint,
        vgs: float | None = None,
        vth_shift: float = 0.0,
    ) -> float:
        """Effective switching resistance ``VDD / I_on`` in ohms."""
        current = self.on_current(point, vgs=vgs, vth_shift=vth_shift)
        return point.vdd / current

    def discharge_time(
        self,
        capacitance: float,
        swing: float,
        point: OperatingPoint,
        vgs: float | None = None,
        vth_shift: float = 0.0,
    ) -> float:
        """Time to (dis)charge ``capacitance`` by ``swing`` volts at constant
        drive current (seconds)."""
        if capacitance <= 0 or swing < 0:
            raise ConfigurationError("capacitance must be > 0 and swing >= 0")
        if swing == 0:
            return 0.0
        current = self.on_current(point, vgs=vgs, vth_shift=vth_shift)
        return capacitance * swing / current

    def scaled(self, width_factor: float) -> "Transistor":
        """Return a copy of this device with a different relative width."""
        return Transistor(
            technology=self.technology,
            device_type=self.device_type,
            drive_factor=self.drive_factor,
            width_factor=width_factor,
            lvt=self.lvt,
        )
