"""Unit tests for the banked 128 KB memory (repro.core.bank)."""

import pytest

from repro.core import IMCBank, IMCMemory, MacroConfig, Opcode
from repro.errors import AddressError, ConfigurationError


@pytest.fixture(scope="module")
def memory():
    """A small 8 KB memory (4 macros in 2 banks) to keep tests fast."""
    return IMCMemory(banks=2, capacity_bytes=8 * 1024, config=MacroConfig())


class TestBank:
    def test_capacity(self):
        bank = IMCBank(macros_per_bank=2)
        assert bank.capacity_bytes == 2 * 2048

    def test_macro_accessor_bounds(self):
        bank = IMCBank(macros_per_bank=2)
        assert bank.macro(0) is not bank.macro(1)
        with pytest.raises(AddressError):
            bank.macro(2)

    def test_broadcast_runs_on_every_macro(self):
        bank = IMCBank(macros_per_bank=3)
        for macro in bank.macros:
            macro.write_words(0, [1, 2, 3, 4])
            macro.write_words(1, [10, 20, 30, 40])
        results = bank.broadcast(Opcode.ADD, 0, 1)
        assert len(results) == 3
        for result in results:
            assert list(result.values) == [11, 22, 33, 44]

    def test_statistics_merge_and_reset(self):
        bank = IMCBank(macros_per_bank=2)
        bank.broadcast(Opcode.ADD, 0, 1)
        stats = bank.statistics()
        assert stats.total_invocations == 2
        bank.reset_stats()
        assert bank.statistics().total_invocations == 0


class TestMemoryGeometry:
    def test_default_memory_is_128kb_with_4_banks(self):
        memory = IMCMemory()
        assert memory.capacity_bytes == 128 * 1024
        assert len(memory.banks) == 4
        assert memory.total_macros == 64
        assert memory.geometry_summary() == (4, 16, 2048)

    def test_small_memory_geometry(self, memory):
        assert memory.capacity_bytes == 8 * 1024
        assert memory.total_macros == 4
        assert memory.macros_per_bank == 2

    def test_capacity_must_be_whole_macros(self):
        with pytest.raises(ConfigurationError):
            IMCMemory(banks=2, capacity_bytes=3000)

    def test_macros_must_split_across_banks(self):
        with pytest.raises(ConfigurationError):
            IMCMemory(banks=3, capacity_bytes=8 * 1024)

    def test_parallel_words(self, memory):
        assert memory.parallel_words() == memory.total_macros * 4


class TestMemoryAddressing:
    def test_locate_word_striping(self, memory):
        first = memory.locate_word(0)
        assert (first.bank, first.macro, first.row, first.word_index) == (0, 0, 0, 0)
        second = memory.locate_word(1)
        assert second.word_index == 1
        next_row = memory.locate_word(memory.words_per_row())
        assert next_row.row == 1

    def test_locate_word_bank_boundary(self, memory):
        words_per_bank = memory.words_per_row() * memory.config.rows * memory.macros_per_bank
        location = memory.locate_word(words_per_bank)
        assert location.bank == 1

    def test_locate_word_out_of_range(self, memory):
        total = memory.words_per_row() * memory.config.rows * memory.total_macros
        with pytest.raises(AddressError):
            memory.locate_word(total)

    def test_flat_read_write_roundtrip(self, memory):
        for index in (0, 7, 130, 1025):
            memory.write_flat(index, (index * 37) % 256)
        for index in (0, 7, 130, 1025):
            assert memory.read_flat(index) == (index * 37) % 256


class TestMemoryOperations:
    def test_broadcast_across_banks(self, memory):
        for bank in memory.banks:
            for macro in bank.macros:
                macro.write_words(2, [5, 6, 7, 8])
                macro.write_words(3, [1, 1, 1, 1])
        results = memory.broadcast(Opcode.SUB, 2, 3, dest_row=4)
        assert len(results) == memory.total_macros
        for result in results:
            assert list(result.values) == [4, 5, 6, 7]

    def test_statistics_aggregate(self, memory):
        memory.reset_stats()
        memory.broadcast(Opcode.ADD, 0, 1)
        stats = memory.statistics()
        assert stats.total_invocations == memory.total_macros
        memory.reset_stats()
        assert memory.statistics().total_invocations == 0
