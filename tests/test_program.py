"""Unit tests for the program / executor abstraction (repro.core.program)."""

import pytest

from repro.core import IMCMacro, MacroConfig, Opcode
from repro.core.program import Instruction, Program, ProgramExecutor
from repro.errors import AddressError, ConfigurationError, PrecisionError


def _axpy_program() -> Program:
    """(a * b) then (+ c): a small multiply-accumulate schedule."""
    return Program(name="axpy").extend(
        [
            Instruction(Opcode.MULT, row_a=0, row_b=1, dest_row=4, label="a*b"),
            Instruction(Opcode.ADD, row_a=4, row_b=2, dest_row=5, label="+c"),
        ]
    )


class TestInstruction:
    def test_operand_requirements(self):
        assert Instruction(Opcode.ADD, 0, 1).needs_second_operand() is True
        assert Instruction(Opcode.NOT, 0).needs_second_operand() is False
        assert Instruction(Opcode.SUB, 0, 1, 2).needs_destination() is True
        assert Instruction(Opcode.AND, 0, 1).needs_destination() is False

    def test_cycle_count_uses_override_precision(self):
        instruction = Instruction(Opcode.MULT, 0, 1, 2, precision_bits=4)
        assert instruction.cycle_count(default_precision=8) == 6
        assert Instruction(Opcode.MULT, 0, 1, 2).cycle_count(8) == 10


class TestProgramValidation:
    def test_valid_program_passes(self):
        _axpy_program().validate(MacroConfig())

    def test_empty_program_rejected(self):
        with pytest.raises(ConfigurationError):
            Program().validate(MacroConfig())

    def test_row_out_of_range(self):
        program = Program().append(Instruction(Opcode.ADD, 0, 200, 2))
        with pytest.raises(AddressError):
            program.validate(MacroConfig())

    def test_missing_operand(self):
        program = Program().append(Instruction(Opcode.ADD, 0))
        with pytest.raises(ConfigurationError):
            program.validate(MacroConfig())

    def test_missing_destination(self):
        program = Program().append(Instruction(Opcode.MULT, 0, 1))
        with pytest.raises(ConfigurationError):
            program.validate(MacroConfig())

    def test_unsupported_precision(self):
        program = Program().append(Instruction(Opcode.ADD, 0, 1, precision_bits=3))
        with pytest.raises(PrecisionError):
            program.validate(MacroConfig())

    def test_cycle_estimate(self):
        assert _axpy_program().cycle_estimate(default_precision=8) == 11

    def test_append_and_extend_chain(self):
        program = Program().append(Instruction(Opcode.NOT, 0, dest_row=1))
        assert len(program) == 1
        program.extend([Instruction(Opcode.COPY, 1, dest_row=2)])
        assert len(program) == 2


class TestProgramExecution:
    def test_axpy_computes_expected_values(self):
        macro = IMCMacro(MacroConfig())
        # a, b in the lower unit of each slot; c spans the slot (16-bit view
        # is not needed because the products stay small here).
        macro.write_word(0, 0, 12)
        macro.write_word(0, 2, 5)
        macro.write_word(1, 0, 9)
        macro.write_word(1, 2, 7)
        macro.write_words(2, [40, 0, 4, 0])
        executor = ProgramExecutor(macro)
        trace = executor.run(_axpy_program())
        assert trace.instruction_count == 2
        # slot products: 12*9=108 and 5*7=35, written to row 4.
        assert macro.read_slot_product(4, 0) == 108
        assert macro.read_slot_product(4, 1) == 35
        # The ADD then adds row 2 word-wise: word0 108+40, word2 35+4.
        assert trace.result(1).values[0] == 148
        assert trace.result(1).values[2] == 39

    def test_trace_totals_match_macro_stats(self):
        macro = IMCMacro(MacroConfig())
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [5, 6, 7, 8])
        macro.write_words(2, [1, 1, 1, 1])
        executor = ProgramExecutor(macro)
        macro.reset_stats()
        trace = executor.run(_axpy_program())
        assert trace.total_cycles == macro.stats.total_cycles
        assert trace.total_energy_j == pytest.approx(macro.stats.total_energy_j)
        assert trace.total_latency_s > 0

    def test_executor_validates_by_default(self):
        executor = ProgramExecutor(IMCMacro())
        bad = Program().append(Instruction(Opcode.ADD, 0, 500, 2))
        with pytest.raises(AddressError):
            executor.run(bad)

    def test_per_instruction_precision_override(self):
        macro = IMCMacro(MacroConfig())
        macro.write_word(0, 0, 9, precision_bits=4)
        macro.write_word(1, 0, 13, precision_bits=4)
        program = Program().append(
            Instruction(Opcode.MULT, 0, 1, 3, precision_bits=4)
        )
        trace = ProgramExecutor(macro).run(program)
        assert trace.result(0).values[0] == 117
        assert trace.result(0).cycles == 6
