"""Unit tests for the quantised Conv2D layer (im2col on the IMC backend)."""

import numpy as np
import pytest

from repro.core import IMCMacro, MacroConfig
from repro.dnn.conv import Conv2DLayer, QuantizedConv2DLayer, im2col
from repro.dnn.imc_backend import IMCMatmulBackend
from repro.errors import ConfigurationError


class TestIm2col:
    def test_output_shape(self):
        images = np.arange(2 * 3 * 6 * 6, dtype=np.float64).reshape(2, 3, 6, 6)
        columns, (out_h, out_w) = im2col(images, kernel_size=3)
        assert (out_h, out_w) == (4, 4)
        assert columns.shape == (2 * 16, 3 * 9)

    def test_stride(self):
        images = np.zeros((1, 1, 6, 6))
        _, (out_h, out_w) = im2col(images, kernel_size=2, stride=2)
        assert (out_h, out_w) == (3, 3)

    def test_patch_contents(self):
        images = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        columns, _ = im2col(images, kernel_size=2)
        assert columns[0].tolist() == [0, 1, 4, 5]
        assert columns[1].tolist() == [1, 2, 5, 6]

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            im2col(np.zeros((4, 4)), 2)
        with pytest.raises(ConfigurationError):
            im2col(np.zeros((1, 1, 2, 2)), 3)


class TestConv2DLayer:
    def test_forward_shape(self):
        layer = Conv2DLayer.random(in_channels=2, out_channels=4, kernel_size=3)
        outputs = layer.forward(np.random.default_rng(0).normal(size=(3, 2, 8, 8)))
        assert outputs.shape == (3, 4, 6, 6)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        layer = Conv2DLayer.random(1, 1, kernel_size=3, relu=False, seed=1)
        image = rng.normal(size=(1, 1, 5, 5))
        output = layer.forward(image)[0, 0]
        kernel = layer.weights[0, 0]
        for y in range(3):
            for x in range(3):
                expected = np.sum(image[0, 0, y : y + 3, x : x + 3] * kernel)
                assert output[y, x] == pytest.approx(expected)

    def test_relu_applied(self):
        layer = Conv2DLayer(
            weights=-np.ones((1, 1, 2, 2)), bias=np.zeros(1), relu=True
        )
        outputs = layer.forward(np.ones((1, 1, 3, 3)))
        assert np.all(outputs == 0.0)

    def test_invalid_weight_shape(self):
        with pytest.raises(ConfigurationError):
            Conv2DLayer(weights=np.zeros((2, 1, 3, 2)), bias=np.zeros(2))


class TestQuantizedConv2DLayer:
    def test_close_to_float_at_8bit(self):
        layer = Conv2DLayer.random(2, 3, kernel_size=3, seed=2)
        quantized = QuantizedConv2DLayer(layer, weight_bits=8, activation_bits=8)
        images = np.random.default_rng(2).normal(size=(2, 2, 7, 7))
        float_out = layer.forward(images)
        quant_out = quantized.forward(images)
        scale = np.abs(float_out).max() + 1e-9
        assert np.max(np.abs(float_out - quant_out)) / scale < 0.05

    def test_runs_on_imc_backend_bit_exactly(self):
        layer = Conv2DLayer.random(1, 2, kernel_size=2, seed=3)
        quantized = QuantizedConv2DLayer(layer, weight_bits=4, activation_bits=4)
        images = np.random.default_rng(3).normal(size=(1, 1, 4, 4))
        macro = IMCMacro(MacroConfig(precision_bits=4))
        backend = IMCMatmulBackend(macro, precision_bits=4)
        reference = quantized.forward(images)
        on_imc = quantized.forward(images, matmul=backend)
        assert np.allclose(reference, on_imc)
        assert macro.stats.total_cycles > 0

    def test_mac_count(self):
        layer = Conv2DLayer.random(2, 4, kernel_size=3)
        quantized = QuantizedConv2DLayer(layer, weight_bits=8, activation_bits=8)
        images = np.zeros((2, 2, 8, 8))
        # 6x6 output positions, 4 output channels, 2*3*3 MACs each, 2 images.
        assert quantized.mac_count(images) == 2 * 36 * 4 * 18

    def test_rejects_too_narrow_quantisation(self):
        layer = Conv2DLayer.random(1, 1)
        with pytest.raises(ConfigurationError):
            QuantizedConv2DLayer(layer, weight_bits=1, activation_bits=8)
