"""Unit tests for the bit-serial IMC baseline (reference [2] model)."""

import pytest

from repro.baselines.bitserial import BitSerialConfig, BitSerialIMC
from repro.core import Opcode
from repro.errors import ConfigurationError, OperandError


@pytest.fixture()
def baseline():
    return BitSerialIMC()


class TestCycleFormulas:
    def test_add_is_n_plus_one(self):
        assert BitSerialIMC.cycles_for(Opcode.ADD, 8) == 9
        assert BitSerialIMC.cycles_for(Opcode.ADD, 4) == 5

    def test_sub_is_n_plus_three(self):
        assert BitSerialIMC.cycles_for(Opcode.SUB, 8) == 11

    def test_mult_is_quadratic(self):
        assert BitSerialIMC.cycles_for(Opcode.MULT, 8) == 8 * 8 + 3 * 8 - 2
        assert BitSerialIMC.cycles_for(Opcode.MULT, 4) > 4 * BitSerialIMC.cycles_for(
            Opcode.ADD, 4
        )

    def test_logic_is_n(self):
        assert BitSerialIMC.cycles_for(Opcode.XOR, 8) == 8

    def test_mult_latency_much_higher_than_proposed(self):
        # The proposed macro does an 8-bit MULT in 10 cycles; the bit-serial
        # baseline needs ~9x more, which is the "high latency" drawback the
        # paper cites.
        assert BitSerialIMC.cycles_for(Opcode.MULT, 8) >= 8 * 10


class TestFunctionalCorrectness:
    def test_elementwise_add_sub_mult(self, baseline):
        a = [0, 1, 127, 255, 200]
        b = [0, 255, 127, 255, 57]
        assert list(baseline.elementwise(Opcode.ADD, a, b, 8).values) == [
            (x + y) % 256 for x, y in zip(a, b)
        ]
        assert list(baseline.elementwise(Opcode.SUB, a, b, 8).values) == [
            (x - y) % 256 for x, y in zip(a, b)
        ]
        assert list(baseline.elementwise(Opcode.MULT, a, b, 8).values) == [
            x * y for x, y in zip(a, b)
        ]

    def test_elementwise_logic(self, baseline):
        a, b = [0b1100], [0b1010]
        assert baseline.elementwise(Opcode.AND, a, b, 4).values == (0b1000,)
        assert baseline.elementwise(Opcode.XOR, a, b, 4).values == (0b0110,)
        assert baseline.elementwise(Opcode.NOR, a, b, 4).values == (0b0001,)

    def test_single_operand_ops(self, baseline):
        assert baseline.elementwise(Opcode.NOT, [0b1010], None, 4).values == (0b0101,)
        assert baseline.elementwise(Opcode.SHIFT_LEFT, [0b0110], None, 4).values == (0b1100,)
        assert baseline.elementwise(Opcode.COPY, [7], None, 4).values == (7,)

    def test_wide_precision_mult_is_exact(self, baseline):
        # The 2N-bit product of 32-bit operands exceeds int64; the lane batch
        # must fall back to exact Python integers.
        value = (1 << 32) - 1
        result = baseline.elementwise(Opcode.MULT, [value, 3], [value, 5], 32)
        assert list(result.values) == [value * value, 15]

    def test_matches_proposed_macro_results(self, baseline, macro):
        values_a = [17, 103, 250, 66]
        values_b = [3, 99, 250, 111]
        proposed = macro.elementwise(Opcode.MULT, values_a, values_b)
        serial = baseline.elementwise(Opcode.MULT, values_a, values_b, 8)
        assert proposed == list(serial.values)

    def test_operand_range_checked(self, baseline):
        with pytest.raises(OperandError):
            baseline.elementwise(Opcode.ADD, [256], [0], 8)

    def test_length_mismatch_rejected(self, baseline):
        with pytest.raises(OperandError):
            baseline.elementwise(Opcode.ADD, [1, 2], [1], 8)

    def test_missing_second_operand_rejected(self, baseline):
        with pytest.raises(OperandError):
            baseline.elementwise(Opcode.ADD, [1, 2], None, 8)


class TestParallelismModel:
    def test_fixed_scaling_saturates_at_lane_limit(self, baseline):
        assert baseline.effective_lanes(64) == 64
        assert baseline.effective_lanes(128) == 128
        assert baseline.effective_lanes(1024) == 128

    def test_local_group_scaling_grows_with_sqrt(self):
        config = BitSerialConfig(
            lane_scaling="local_group", lanes_at_reference=20, reference_columns=128
        )
        baseline = BitSerialIMC(config)
        assert baseline.effective_lanes(128) == 20
        assert baseline.effective_lanes(512) == 40
        assert baseline.effective_lanes(1024) == pytest.approx(57, abs=1)

    def test_invalid_lane_scaling_rejected(self):
        with pytest.raises(ConfigurationError):
            BitSerialConfig(lane_scaling="linear")

    def test_cycles_per_operation_uses_lanes(self, baseline):
        cpo = baseline.cycles_per_operation(Opcode.ADD, 8, available_columns=128)
        assert cpo == pytest.approx(9 / 128)

    def test_batching_counts_extra_cycles(self, baseline):
        result = baseline.elementwise(Opcode.ADD, [1] * 200, [2] * 200, 8)
        # 200 elements over 128 lanes need two batches.
        assert result.cycles == 2 * 9
        assert result.cycles_per_element == pytest.approx(18 / 200)


class TestEfficiencyModel:
    def test_published_tops_per_watt_reproduced(self, baseline):
        assert baseline.tops_per_watt(Opcode.ADD, 8, vdd=0.6) == pytest.approx(5.27, rel=0.05)
        assert baseline.tops_per_watt(Opcode.MULT, 8, vdd=0.6) == pytest.approx(0.56, rel=0.05)

    def test_proposed_is_more_efficient(self, baseline, calibration):
        from repro.circuits.energy import OperationEnergyModel

        proposed = OperationEnergyModel(calibration)
        proposed_add = 1.0 / (proposed.add_energy(8, vdd=0.6).total_j * 1e12)
        assert proposed_add > baseline.tops_per_watt(Opcode.ADD, 8, vdd=0.6)

    def test_energy_scales_with_voltage(self, baseline):
        assert baseline.energy_per_operation_j(Opcode.ADD, 8, vdd=0.6) < (
            baseline.energy_per_operation_j(Opcode.ADD, 8, vdd=1.1)
        )

    def test_summary_counters(self, baseline):
        baseline.elementwise(Opcode.ADD, [1, 2, 3], [4, 5, 6], 8)
        summary = baseline.summary()
        assert summary["total_elements"] == 3
        assert summary["total_cycles"] >= 9
