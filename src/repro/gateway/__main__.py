"""Command-line gateway: serve a demo fleet over TCP.

Usage::

    PYTHONPATH=src python -m repro.gateway --port 7421
    PYTHONPATH=src python -m repro.gateway --port 7421 --nodes 4 \\
        --max-queue 512 --mode analytic

Trains a small pattern CNN (seeded, a few seconds), builds a mixed-VDD
fleet, registers the model as ``"cnn"`` and serves until interrupted.
This is the entry point the operator guide (``docs/OPERATIONS.md``) walks
through; production embeddings build their own router and hand it to
:class:`~repro.gateway.server.GatewayServer` directly.

``--workers N`` (N > 0) shards the fleet across N spawn-context worker
processes via :class:`~repro.fleet.FleetCluster` — the exact forwards run
in parallel while admission, scheduling and ledgers stay on the
coordinator, bit-identical to the single-process fleet.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.cluster import ClusterNode, ClusterRouter, ExecutionMode, ForwardMemo
from repro.dnn.pipeline import make_pattern_image_dataset, train_pattern_cnn
from repro.gateway.server import GatewayServer


def build_demo_router(
    nodes: int,
    num_macros: int,
    mode: str,
    coalesce: bool,
    workers: int = 0,
    worker_log_dir: str = None,
):
    """Build the demo fleet the CLI serves.

    Args:
        nodes: Fleet size; even indices get 1.0 V, odd 0.6 V.
        num_macros: Macros per chip.
        mode: ``"exact"`` or ``"analytic"`` execution mode.
        coalesce: Merge adjacent same-model requests into one dispatch.
        workers: ``0`` serves single-process; ``N > 0`` shards the fleet
            across N worker processes (forces exact mode — the fleet
            workers *are* the exact executors).
        worker_log_dir: Per-worker log directory (fleet mode only).

    Returns:
        A router (or :class:`~repro.fleet.FleetCluster`) with the trained
        demo model registered as ``"cnn"``.
    """
    dataset = make_pattern_image_dataset(samples=150, size=8, seed=13)
    cnn, _ = train_pattern_cnn(
        dataset, conv_channels=(1,), hidden_sizes=(4,), epochs=6, seed=13
    )
    execution_mode = (
        ExecutionMode.ANALYTIC
        if mode == "analytic" and workers <= 0
        else ExecutionMode.EXACT
    )
    memo = ForwardMemo() if execution_mode is ExecutionMode.ANALYTIC else None
    fleet = [
        ClusterNode(
            f"node-{index}",
            vdd=1.0 if index % 2 == 0 else 0.6,
            num_macros=num_macros,
            max_batch_size=256,
            execution_mode=execution_mode,
            forward_memo=memo,
        )
        for index in range(nodes)
    ]
    if workers > 0:
        from repro.fleet import FleetCluster

        router = FleetCluster(
            fleet, workers=workers, coalesce=coalesce, log_dir=worker_log_dir
        )
    else:
        router = ClusterRouter(fleet, coalesce=coalesce)
    router.register_model("cnn", cnn)
    return router


async def _serve(arguments: argparse.Namespace) -> None:
    """Run the gateway until cancelled (Ctrl-C)."""
    router = build_demo_router(
        arguments.nodes,
        arguments.num_macros,
        arguments.mode,
        arguments.coalesce,
        workers=arguments.workers,
        worker_log_dir=arguments.worker_log_dir,
    )
    server = GatewayServer(
        router,
        host=arguments.host,
        port=arguments.port,
        max_queue=arguments.max_queue,
        admission_batch=arguments.admission_batch,
        idle_timeout_s=arguments.idle_timeout,
        journal=arguments.journal,
    )
    await server.start()
    sharding = (
        f", {arguments.workers} fleet workers" if arguments.workers > 0 else ""
    )
    print(
        f"gateway serving model 'cnn' on {server.host}:{server.port} "
        f"({arguments.nodes} nodes, {arguments.mode} mode, "
        f"queue bound {arguments.max_queue}{sharding})"
    )
    if arguments.journal:
        print(f"admission journal: {arguments.journal}")
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:
        pass
    finally:
        await server.drain_and_stop()
        router.shutdown()


def main(argv=None) -> int:
    """Parse arguments and serve; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--num-macros", type=int, default=8)
    parser.add_argument(
        "--mode", choices=("exact", "analytic"), default="analytic"
    )
    parser.add_argument("--max-queue", type=int, default=1024)
    parser.add_argument("--admission-batch", type=int, default=128)
    parser.add_argument(
        "--no-coalesce", dest="coalesce", action="store_false", default=True
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard the fleet across N worker processes "
        "(0 = single-process; N > 0 forces exact mode)",
    )
    parser.add_argument(
        "--worker-log-dir",
        default=None,
        metavar="DIR",
        help="per-worker log files (fleet mode; the CI crash artifacts)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close connections idle this long with no outstanding work",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append-only admission journal for crash recovery "
        "(reconcile with: python -m repro.gateway.journal PATH)",
    )
    arguments = parser.parse_args(argv)
    try:
        # On 3.11+ asyncio.Runner turns SIGINT into cancellation of the
        # main task; _serve absorbs it after draining, so asyncio.run
        # returns normally and KeyboardInterrupt only escapes if the
        # signal lands outside the running task.
        asyncio.run(_serve(arguments))
    except KeyboardInterrupt:
        pass
    print("gateway stopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
