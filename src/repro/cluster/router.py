"""The cluster front door: admission, placement, dispatch, accounting.

:class:`ClusterRouter` owns a fleet of :class:`~repro.cluster.node.ClusterNode`
instances at heterogeneous supply-voltage operating points and runs the
serving loop in *modeled (virtual) time*:

* :meth:`submit` admits a request tagged with an SLA class, asks the
  :class:`~repro.cluster.scheduler.SLAScheduler` for a placement, and
  *reserves* the node's virtual clock by the request's modeled cost — so the
  next placement sees the backlog it would queue behind;
* :meth:`dispatch_next` / :meth:`drain` execute queued requests in
  earliest-start order through each node's
  :class:`~repro.serve.InferenceServer`, advance each node's completion
  clock by the *measured* modeled compute time (batch critical path times
  the node's cycle time, programming charges included), and record a
  :class:`~repro.cluster.telemetry.RequestTrace` with the deadline outcome;
* :meth:`ledger` merges every node's lifetime ledger into one cluster
  ledger — by construction the sum of its parts, which the tests pin.

Virtual time makes the whole control loop deterministic: the same workload
on the same fleet always produces the same placements, latencies, joules and
deadline outcomes, so scheduling behaviour is testable down to equality.

The dispatch loop is built for million-request traces: head selection runs
on a lazily invalidated heap of per-node earliest-start candidates,
"which nodes hold queued work of model X" comes from incrementally
maintained counters, and parked backlogs are re-placed only when a
park/wake transition is actually observed — admission and dispatch cost
O(log nodes) bookkeeping instead of O(nodes x queue) scans.  With
``coalesce=True`` consecutive queued same-model requests merge into one
engine dispatch (the node reuses the serve layer's split/reassemble
machinery), completing together with cost attributed by image share.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.node import ClusterNode, NodeState
from repro.cluster.scheduler import (
    ClusterRequest,
    PlacementDecision,
    SLAClass,
    SLAScheduler,
)
from repro.cluster.telemetry import ClusterTelemetry, RequestTrace
from repro.core.stats import MacroStatistics
from repro.errors import ConfigurationError

__all__ = ["ClusterResult", "ClusterRouter"]


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one routed request: predictions + its telemetry trace.

    The accounting fields live on the trace — one source of truth shared
    with the telemetry log — and are forwarded, so callers read
    ``result.latency_s``, ``result.node_id``, ``result.deadline_missed``
    etc. directly (everything :class:`RequestTrace` exposes).
    """

    trace: RequestTrace
    sla: SLAClass
    predictions: np.ndarray

    def __getattr__(self, name: str):
        # Forward public accounting fields to the trace.  Guarding dunders
        # and "trace" itself keeps copy/pickle machinery (which may probe
        # before the instance dict exists) out of the delegation.
        if name.startswith("_") or name == "trace":
            raise AttributeError(name)
        return getattr(self.trace, name)


class ClusterRouter:
    """Admit, place, and execute SLA-tagged requests on a DVFS fleet."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        scheduler: Optional[SLAScheduler] = None,
        telemetry: Optional[ClusterTelemetry] = None,
        coalesce: bool = False,
    ) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"node ids must be unique, got {ids}")
        self.nodes = nodes
        self._by_id: Dict[str, ClusterNode] = {node.node_id: node for node in nodes}
        self.scheduler = scheduler if scheduler is not None else SLAScheduler()
        self.telemetry = telemetry if telemetry is not None else ClusterTelemetry()
        #: Merge consecutive queued same-model requests into one dispatch.
        self.coalesce = coalesce
        #: Virtual clock: the latest arrival or completion seen so far.
        self.clock_s = 0.0
        self._queues: Dict[str, Deque[Tuple[ClusterRequest, PlacementDecision]]] = {
            node.node_id: deque() for node in nodes
        }
        #: Per-node *actual* completion clock (reservations live on the node).
        self._completed_s: Dict[str, float] = {node.node_id: 0.0 for node in nodes}
        self._results: Dict[int, ClusterResult] = {}
        self._failed: Dict[int, BaseException] = {}
        self._decisions: Dict[int, PlacementDecision] = {}
        self._next_request_id = 0
        # Dispatch-order machinery.  The heap holds (earliest start, node)
        # candidates, lazily invalidated: a popped entry is re-validated
        # against the node's current head and re-pushed when stale, so head
        # selection costs O(log nodes) instead of scanning every queue.
        # The pending counters answer "which nodes hold queued work of a
        # model" in O(1) per admission instead of walking every queue.
        self._heap: List[Tuple[float, str]] = []
        self._queued_requests = 0
        self._pending_by_model: Dict[str, Dict[str, int]] = {}
        self._seen_state: Dict[str, NodeState] = {
            node.node_id: node.state for node in nodes
        }
        #: Parked nodes whose backlog could not be re-placed (no active
        #: capacity); re-tried when any node wakes.
        self._stranded: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Fleet management
    # ------------------------------------------------------------------ #
    def node(self, node_id: str) -> ClusterNode:
        """Access one node of the fleet."""
        if node_id not in self._by_id:
            raise ConfigurationError(f"unknown node {node_id!r}")
        return self._by_id[node_id]

    def register_model(self, model_id: str, model, allow_transient: bool = False) -> None:
        """Register a model on every node of the fleet."""
        for node in self.nodes:
            node.register_model(model_id, model, allow_transient=allow_transient)

    @property
    def active_nodes(self) -> List[ClusterNode]:
        """Nodes currently in rotation."""
        return [node for node in self.nodes if node.state is NodeState.ACTIVE]

    def queue_depth(self, node_id: Optional[str] = None) -> int:
        """Queued (admitted, not yet executed) requests."""
        if node_id is not None:
            return len(self._queues[node_id])
        return self._queued_requests

    # ------------------------------------------------------------------ #
    # Queue bookkeeping (counters + dispatch heap stay consistent)
    # ------------------------------------------------------------------ #
    def _enqueue(
        self, node_id: str, request: ClusterRequest, decision: PlacementDecision
    ) -> None:
        """Append a placement to a node's queue, maintaining the counters."""
        queue = self._queues[node_id]
        queue.append((request, decision))
        self._queued_requests += 1
        counts = self._pending_by_model.setdefault(request.model_id, {})
        counts[node_id] = counts.get(node_id, 0) + 1
        if len(queue) == 1 and self._by_id[node_id].state is NodeState.ACTIVE:
            heapq.heappush(
                self._heap,
                (max(self._completed_s[node_id], request.arrival_s), node_id),
            )

    def _dequeue_head(self, node_id: str) -> Tuple[ClusterRequest, PlacementDecision]:
        """Pop a node's queue head, maintaining the counters."""
        request, decision = self._queues[node_id].popleft()
        self._queued_requests -= 1
        counts = self._pending_by_model[request.model_id]
        remaining = counts[node_id] - 1
        if remaining:
            counts[node_id] = remaining
        else:
            del counts[node_id]
            if not counts:
                del self._pending_by_model[request.model_id]
        return request, decision

    def _push_head_candidate(self, node_id: str) -> None:
        """(Re-)announce a node's queue head to the dispatch heap."""
        queue = self._queues[node_id]
        if queue:
            heapq.heappush(
                self._heap,
                (max(self._completed_s[node_id], queue[0][0].arrival_s), node_id),
            )

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model_id: str,
        images: np.ndarray,
        sla: SLAClass = SLAClass.BEST_EFFORT,
        deadline_s: Optional[float] = None,
        arrival_s: Optional[float] = None,
        input_digest: Optional[str] = None,
    ) -> int:
        """Admit one request; returns its id.

        ``arrival_s`` pins the request's position on the virtual clock
        (workload generators use it to model inter-arrival gaps); omitted,
        the request arrives "now".  The chosen node's virtual clock is
        reserved through the request's modeled finish so later admissions
        queue behind it.  ``input_digest`` optionally names the request's
        images for the analytic execution mode's forward memo (two requests
        may share a digest only if their images are identical).
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[0] == 0:
            raise ConfigurationError(
                "expected a non-empty (batch, channels, height, width) array"
            )
        if sla is SLAClass.LATENCY:
            if deadline_s is None or deadline_s <= 0:
                raise ConfigurationError(
                    "latency-class requests need a positive deadline_s"
                )
        arrival = self.clock_s if arrival_s is None else float(arrival_s)
        if arrival < 0:
            raise ConfigurationError("arrival_s must be non-negative")
        if arrival > self.clock_s:
            self.clock_s = arrival

        request = ClusterRequest(
            request_id=self._next_request_id,
            model_id=model_id,
            images=images,
            sla=sla,
            arrival_s=arrival,
            deadline_s=deadline_s,
            input_digest=input_digest,
        )
        self._next_request_id += 1

        decision = self.scheduler.choose(
            request, self.nodes, self.telemetry, pending=self._pending_nodes(model_id)
        )
        node = self._by_id[decision.node_id]
        # Reserve the backlog: the next admission must queue behind this
        # request's modeled span.
        node.available_s = decision.est_finish_s
        self._enqueue(node.node_id, request, decision)
        self._decisions[request.request_id] = decision
        return request.request_id

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _rebuild_reservation(self, node_id: str) -> None:
        """Re-derive a node's reserved clock from its measured completion
        time plus the modeled span of everything still queued on it.

        Each queued decision contributes its own span (est_finish - est_start
        at admission), re-chained from reality — this is how reservations
        stay exact when a dispatch finishes (or fails) at a different time
        than its admission-time estimate assumed.
        """
        available = self._completed_s[node_id]
        for request, decision in self._queues[node_id]:
            start = max(available, request.arrival_s)
            available = start + (decision.est_finish_s - decision.est_start_s)
        self._by_id[node_id].available_s = available

    def _pending_nodes(self, model_id: str) -> frozenset:
        """Node ids with queued (not yet executed) placements of a model.

        The scheduler counts these as replicas-in-the-making so a burst of
        admissions cannot replicate a hot model past its cap.  Served from
        the incrementally maintained counters — O(replicas), not O(queue).
        """
        counts = self._pending_by_model.get(model_id)
        if not counts:
            return frozenset()
        return frozenset(counts)

    def _sync_states(self) -> None:
        """React to park/wake transitions since the previous dispatch.

        Nodes are parked and woken directly (operators, the autoscaler), so
        the router diffs each node's lifecycle state against what it last
        saw instead of re-scanning every parked backlog per dispatch: when
        nothing changed, this is a handful of identity comparisons.  An
        ACTIVE -> PARKED transition strands that node's backlog and
        re-places it; a wake re-announces the node's queue head and retries
        any backlog stranded while the whole fleet was parked.
        """
        woke = False
        for node in self.nodes:
            node_id = node.node_id
            state = node.state
            if state is self._seen_state[node_id]:
                continue
            self._seen_state[node_id] = state
            if state is NodeState.ACTIVE:
                woke = True
                self._push_head_candidate(node_id)
            elif self._queues[node_id]:
                self._replace_parked_backlog(node_id)
        if woke and self._stranded:
            for node_id in sorted(self._stranded):
                if self._by_id[node_id].state is NodeState.ACTIVE:
                    # The stranded node itself woke: its backlog runs where
                    # it is (the head candidate was pushed above).
                    self._stranded.discard(node_id)
                elif self._queues[node_id]:
                    self._replace_parked_backlog(node_id)
                else:
                    self._stranded.discard(node_id)

    def _replace_parked_backlog(self, node_id: str) -> None:
        """Re-place one parked node's queued requests onto active nodes.

        Parking is allowed while work is queued (an operator can park any
        node at any time); the stranded requests are re-scheduled instead
        of failing.  With no active node left they stay queued on the
        parked node (marked stranded) until something wakes.
        """
        node = self._by_id[node_id]
        stranded: List[Tuple[ClusterRequest, PlacementDecision]] = []
        while self._queues[node_id]:
            stranded.append(self._dequeue_head(node_id))
        node.available_s = self._completed_s[node_id]
        for index, (request, _) in enumerate(stranded):
            try:
                decision = self.scheduler.choose(
                    request,
                    self.nodes,
                    self.telemetry,
                    pending=self._pending_nodes(request.model_id),
                )
            except ConfigurationError:
                # No active nodes: park the rest back where they were,
                # restoring the reservation that covers them.
                for item in stranded[index:]:
                    self._enqueue(node_id, *item)
                self._rebuild_reservation(node_id)
                self._stranded.add(node_id)
                return
            target = self._by_id[decision.node_id]
            target.available_s = decision.est_finish_s
            self._enqueue(target.node_id, request, decision)
            self._decisions[request.request_id] = decision
        self._stranded.discard(node_id)

    def _select_head(self) -> Optional[Tuple[str, float]]:
        """Pop the (node, start) pair that can dispatch earliest.

        Lazy-heap selection: a popped candidate is validated against the
        node's *current* state — still active, still has that queue head,
        still starts at the recorded time — and re-pushed corrected when
        stale.  Starts only ever move later (completions advance the
        node's clock, queue heads are FIFO), so the first validated entry
        is the global ``min (start, node_id)``, exactly what the previous
        full scan selected.
        """
        heap = self._heap
        while heap:
            start, node_id = heapq.heappop(heap)
            if self._by_id[node_id].state is not NodeState.ACTIVE:
                continue
            queue = self._queues[node_id]
            if not queue:
                continue
            actual = max(self._completed_s[node_id], queue[0][0].arrival_s)
            if actual != start:
                heapq.heappush(heap, (actual, node_id))
                continue
            return node_id, start
        return None

    def _gather_group(
        self, node: ClusterNode, start: float
    ) -> List[Tuple[ClusterRequest, PlacementDecision]]:
        """Pop the dispatch group from a node's queue head.

        Without coalescing this is exactly the head request.  With
        coalescing, consecutive queued requests of the same model (and
        image geometry) that have already arrived by ``start`` are merged
        while the total stays inside one ``max_batch_size`` dispatch.
        """
        node_id = node.node_id
        group = [self._dequeue_head(node_id)]
        if not self.coalesce:
            return group
        head = group[0][0]
        budget = node.max_batch_size - head.image_count
        queue = self._queues[node_id]
        while queue:
            candidate = queue[0][0]
            if (
                candidate.model_id != head.model_id
                or candidate.arrival_s > start
                or candidate.image_count > budget
                or candidate.images.shape[1:] != head.images.shape[1:]
            ):
                break
            budget -= candidate.image_count
            group.append(self._dequeue_head(node_id))
        return group

    def _dispatch_group(self) -> List[ClusterResult]:
        """Execute the next dispatch (one request, or a coalesced group)."""
        self._sync_states()
        selected = self._select_head()
        if selected is None:
            return []
        node_id, start = selected
        node = self._by_id[node_id]
        group = self._gather_group(node, start)

        try:
            if len(group) == 1:
                request = group[0][0]
                dispatch = node.execute(
                    request.model_id, request.images, input_digest=request.input_digest
                )
                predictions = [dispatch.predictions]
            else:
                predictions, dispatch = node.execute_group(
                    group[0][0].model_id,
                    [(request.images, request.input_digest) for request, _ in group],
                )
        except Exception as error:
            # Mirror the serve layer's contract one level up: the failure is
            # stored on the requests (re-raised by result()) instead of the
            # requests silently vanishing from the queue.  The failed
            # reservations are genuinely released: the node's clock is
            # re-derived from measured reality plus the spans of what is
            # still queued (not from tail estimates that embed the failed
            # spans).
            for request, _ in group:
                self._failed[request.request_id] = error
            self._rebuild_reservation(node_id)
            self._push_head_candidate(node_id)
            raise
        finish = start + dispatch.compute_s
        self._completed_s[node_id] = finish
        if finish > self.clock_s:
            self.clock_s = finish
        # Executed work no longer needs its reservation; re-chain the
        # remaining backlog's spans from measured reality (estimates of
        # cold multi-layer dispatches can drift a little from actuals).
        self._rebuild_reservation(node_id)
        self._push_head_candidate(node_id)

        total_images = sum(request.image_count for request, _ in group)
        results: List[ClusterResult] = []
        coalesced = len(group)
        for (request, decision), request_predictions in zip(group, predictions):
            if coalesced == 1:
                compute_share = dispatch.compute_s
                energy_share = dispatch.energy_j
            else:
                # A merged dispatch finishes as one unit; its cost is
                # attributed proportionally to each request's image count
                # (every layer's work scales linearly with the rows a
                # request contributes to the batch).
                fraction = request.image_count / total_images
                compute_share = dispatch.compute_s * fraction
                energy_share = dispatch.energy_j * fraction
            latency = finish - request.arrival_s
            missed = request.deadline_s is not None and latency > request.deadline_s
            trace = RequestTrace(
                request_id=request.request_id,
                model_id=request.model_id,
                node_id=node_id,
                sla=request.sla.value,
                images=request.image_count,
                arrival_s=request.arrival_s,
                start_s=start,
                finish_s=finish,
                compute_s=compute_share,
                energy_j=energy_share,
                deadline_s=request.deadline_s,
                deadline_missed=missed,
                affinity_hit=dispatch.affinity_hit,
                programmed=dispatch.programmed,
                feasible_at_admission=decision.feasible,
                execution_mode=dispatch.execution_mode,
                coalesced=coalesced,
                spot_checked=dispatch.spot_checked,
            )
            self.telemetry.record(trace)
            node.telemetry.record(trace)
            result = ClusterResult(
                trace=trace, sla=request.sla, predictions=request_predictions
            )
            self._results[request.request_id] = result
            results.append(result)
        return results

    def dispatch_next(self) -> Optional[ClusterResult]:
        """Execute the queued request that can start earliest (None if idle).

        Requests queued on parked nodes are re-placed first; if every node
        is parked they stay queued (and this returns None) rather than
        failing work that was never attempted.  With coalescing enabled a
        dispatch may complete several requests at once; the head request's
        result is returned and the others are retrievable via
        :meth:`result` (:meth:`drain` returns every completed result).
        """
        results = self._dispatch_group()
        return results[0] if results else None

    def drain(self) -> List[ClusterResult]:
        """Execute the whole backlog in earliest-start order."""
        completed: List[ClusterResult] = []
        while True:
            results = self._dispatch_group()
            if not results:
                return completed
            completed.extend(results)

    def result(self, request_id: int) -> ClusterResult:
        """The completed result of a request.

        Re-raises the original execution failure if the request's dispatch
        failed, and raises :class:`ConfigurationError` while it is queued.
        """
        if request_id in self._failed:
            raise self._failed[request_id]
        if request_id not in self._results:
            raise ConfigurationError(
                f"request {request_id} is not complete; call drain()"
            )
        return self._results[request_id]

    def decision(self, request_id: int) -> PlacementDecision:
        """The admission-time placement decision of a request."""
        if request_id not in self._decisions:
            raise ConfigurationError(f"unknown request {request_id}")
        return self._decisions[request_id]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop every node's server workers (idempotent)."""
        for node in self.nodes:
            node.shutdown()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def ledger(self) -> MacroStatistics:
        """Cluster-level ledger: the merge of every node's lifetime ledger."""
        merged = MacroStatistics()
        for node in self.nodes:
            merged.merge(node.ledger())
        return merged

    def summary(self) -> Dict[str, object]:
        """Fleet-wide report: telemetry aggregates plus per-node summaries."""
        return {
            "clock_s": self.clock_s,
            "queue_depth": float(self.queue_depth()),
            "cluster": self.telemetry.summary(),
            "nodes": {node.node_id: node.summary() for node in self.nodes},
        }
