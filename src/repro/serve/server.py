"""Batched inference serving on top of the weight-stationary chip engine.

A serving front end has one job: amortise fixed per-dispatch cost over as
many requests as possible without letting any single request wait forever.
:class:`InferenceServer` does exactly that for the quantised CNN/MLP
pipelines:

* clients :meth:`~InferenceServer.submit` image batches of any size (thread
  safe — many producers may submit concurrently);
* the server coalesces pending requests into activation batches of at most
  ``max_batch_size`` images (requests are split across batches when needed,
  so one huge request cannot stall the queue);
* every batch runs through a single :class:`QuantizedCNN` forward pass whose
  integer matmuls execute on a shared
  :class:`repro.core.matmul.TiledMatmulEngine` — weights are programmed once
  and stay stationary across every batch of the server's lifetime;
* per-request latency (queue delay + compute) and per-batch chip accounting
  (work cycles, critical path, utilization, modeled latency) are recorded
  and aggregated into a :class:`ServerReport`.

The optional background worker (:meth:`~InferenceServer.start` /
:meth:`~InferenceServer.stop`) batches by the classic two-condition rule:
dispatch when a full batch is available *or* the oldest request has waited
``max_wait_s``.  Synchronous callers can ignore the worker entirely and use
:meth:`~InferenceServer.predict` / :meth:`~InferenceServer.drain`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chip import IMCChip
from repro.core.config import MacroConfig
from repro.core.matmul import TiledMatmulEngine
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = [
    "InferenceRequest",
    "RequestResult",
    "BatchRecord",
    "ServerReport",
    "InferenceServer",
]


@dataclass
class InferenceRequest:
    """One client request: a batch of images awaiting prediction."""

    request_id: int
    images: np.ndarray
    arrival_s: float
    #: Images of this request already dispatched into batches.
    consumed: int = 0

    @property
    def size(self) -> int:
        """Number of images in the request."""
        return int(self.images.shape[0])

    @property
    def remaining(self) -> int:
        """Images not yet dispatched."""
        return self.size - self.consumed


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one request after all its images were served."""

    request_id: int
    predictions: np.ndarray
    queue_delay_s: float
    latency_s: float
    batch_indices: Tuple[int, ...]


@dataclass(frozen=True)
class BatchRecord:
    """Chip-level accounting of one coalesced activation batch."""

    batch_index: int
    images: int
    request_ids: Tuple[int, ...]
    host_wall_s: float
    total_cycles: int
    critical_path_cycles: int
    energy_j: float
    modeled_latency_s: float
    utilization: float


@dataclass(frozen=True)
class ServerReport:
    """Aggregated serving statistics."""

    requests: int
    images: int
    batches: int
    mean_batch_size: float
    throughput_images_per_s: float
    mean_latency_s: float
    max_latency_s: float
    mean_queue_delay_s: float
    total_cycles: int
    total_energy_j: float
    modeled_chip_time_s: float
    mean_utilization: float
    cache_hits: int
    cache_misses: int
    cache_evictions: int

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for JSON reports."""
        return {
            "requests": float(self.requests),
            "images": float(self.images),
            "batches": float(self.batches),
            "mean_batch_size": self.mean_batch_size,
            "throughput_images_per_s": self.throughput_images_per_s,
            "mean_latency_s": self.mean_latency_s,
            "max_latency_s": self.max_latency_s,
            "mean_queue_delay_s": self.mean_queue_delay_s,
            "total_cycles": float(self.total_cycles),
            "total_energy_j": self.total_energy_j,
            "modeled_chip_time_s": self.modeled_chip_time_s,
            "mean_utilization": self.mean_utilization,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_evictions": float(self.cache_evictions),
        }


@dataclass
class _PendingOutput:
    """Partial predictions of a request while its batches complete."""

    request: InferenceRequest
    predictions: List[np.ndarray] = field(default_factory=list)
    batch_indices: List[int] = field(default_factory=list)


class InferenceServer:
    """Coalesce many ``predict`` requests into batched chip dispatches.

    Parameters
    ----------
    model:
        A :class:`repro.dnn.pipeline.QuantizedCNN` (or any object exposing
        ``with_backend(matmul)`` and ``predict(images)``); the server rebinds
        it onto the shared tiled engine.
    engine:
        The weight-stationary matmul engine.  When omitted, one is built on
        a fresh chip of ``num_macros`` shards.
    num_macros / precision_bits:
        Geometry of the default chip when ``engine`` is not supplied.
    max_batch_size:
        Upper bound of images per coalesced dispatch.
    max_wait_s:
        Batching wait budget of the background worker: a partial batch is
        dispatched once its oldest request has waited this long.
    """

    def __init__(
        self,
        model,
        engine: Optional[TiledMatmulEngine] = None,
        num_macros: int = 8,
        precision_bits: int = 8,
        max_batch_size: int = 64,
        max_wait_s: float = 0.0,
    ) -> None:
        check_positive("max_batch_size", max_batch_size)
        if max_wait_s < 0:
            raise ConfigurationError("max_wait_s must be non-negative")
        if engine is None:
            engine = TiledMatmulEngine(
                IMCChip(num_macros, MacroConfig(precision_bits=precision_bits))
            )
        self.engine = engine
        self.model = model.with_backend(engine)
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s

        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        #: Serialises batch execution: the chip engine is a shared resource,
        #: so the synchronous drain path and the background worker must not
        #: dispatch concurrently.
        self._dispatch_lock = threading.Lock()
        self._queue: Deque[InferenceRequest] = deque()
        self._pending: Dict[int, _PendingOutput] = {}
        self._completed: Dict[int, RequestResult] = {}
        self._next_request_id = 0
        self._batches: List[BatchRecord] = []
        self._results: List[RequestResult] = []
        self._images_served = 0
        self._failed: Dict[int, BaseException] = {}
        self._worker: Optional[threading.Thread] = None
        self._stop_requested = False
        self._started_s = time.perf_counter()
        self._busy_s = 0.0

    # ------------------------------------------------------------------ #
    # Client interface
    # ------------------------------------------------------------------ #
    def submit(self, images: np.ndarray) -> int:
        """Enqueue a batch of images for inference (thread safe).

        Args:
            images: ``(batch, channels, height, width)`` float64 tensor;
                any batch size (oversized requests are split at dispatch).

        Returns:
            The request id to pass to :meth:`result`.

        Raises:
            ConfigurationError: The tensor is not 4-D or the batch is
                empty.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ConfigurationError(
                f"expected images of shape (batch, channels, height, width), "
                f"got {images.shape}"
            )
        if images.shape[0] == 0:
            raise ConfigurationError("a request needs at least one image")
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            request = InferenceRequest(
                request_id=request_id,
                images=images,
                arrival_s=time.perf_counter(),
            )
            self._queue.append(request)
            self._pending[request_id] = _PendingOutput(request=request)
            self._work_available.notify()
        return request_id

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Synchronous convenience: submit, serve the queue, return labels.

        Everything already queued ahead of this request is served too (in
        arrival order), exactly like a real server draining its backlog.

        Args:
            images: ``(batch, channels, height, width)`` float64 tensor.

        Returns:
            Predicted class labels, one per image.
        """
        request_id = self.submit(images)
        self.drain()
        return self.result(request_id).predictions

    def result(self, request_id: int) -> RequestResult:
        """The completed result of a request.

        Args:
            request_id: The id :meth:`submit` returned.

        Returns:
            The request's :class:`RequestResult` (predictions + latency).

        Raises:
            ConfigurationError: The request is still pending.
            Exception: The original model/engine exception if the
                request's batch failed (whether it failed on the
                synchronous path or inside the background worker).
        """
        with self._lock:
            if request_id in self._failed:
                raise self._failed[request_id]
            if request_id not in self._completed:
                raise ConfigurationError(
                    f"request {request_id} is not complete; call drain() or "
                    "run the background worker"
                )
            return self._completed[request_id]

    @property
    def pending_images(self) -> int:
        """Images queued but not yet dispatched."""
        with self._lock:
            return sum(request.remaining for request in self._queue)

    # ------------------------------------------------------------------ #
    # Batch formation and execution
    # ------------------------------------------------------------------ #
    def _take_batch_locked(self) -> List[Tuple[InferenceRequest, int, int]]:
        """Pop up to ``max_batch_size`` images from the queue head.

        Returns ``(request, start, stop)`` image slices; requests larger
        than the remaining budget are split and stay at the queue head.
        """
        plan: List[Tuple[InferenceRequest, int, int]] = []
        budget = self.max_batch_size
        while budget > 0 and self._queue:
            request = self._queue[0]
            take = min(budget, request.remaining)
            plan.append((request, request.consumed, request.consumed + take))
            request.consumed += take
            budget -= take
            if request.remaining == 0:
                self._queue.popleft()
        return plan

    def _execute_batch(
        self, plan: Sequence[Tuple[InferenceRequest, int, int]]
    ) -> List[RequestResult]:
        """Run one coalesced batch and complete any finished requests."""
        batch_index = len(self._batches)
        engine = self.engine
        chip = engine.chip
        # The engine's running accumulators mirror every charge it lands in
        # the macro ledgers, so bracketing the forward pass with a mark is
        # O(macros) instead of merging the whole chip ledger twice per
        # batch.  Disturb-injecting configurations execute on the per-lane
        # reference path, whose charges bypass the accumulators — those
        # keep the (slower) chip-ledger snapshot accounting.
        disturb = chip.config.inject_read_disturb
        start_s = time.perf_counter()
        try:
            # Everything from coalescing to the forward pass can fail (e.g.
            # requests of incompatible image shapes concatenated into one
            # batch); any failure must land on the requests, not strand them.
            images = np.concatenate(
                [req.images[start:stop] for req, start, stop in plan]
            )
            if disturb:
                cycles_before = [m.stats.total_cycles for m in chip.macros]
                energy_before = float(chip.stats.total_energy_j)
            else:
                mark = engine.ledger_mark()
            predictions = self.model.predict(images)
        except Exception as error:
            self._fail_batch(plan, error)
            raise
        host_wall = time.perf_counter() - start_s
        self._busy_s += host_wall

        if disturb:
            per_macro = [
                m.stats.total_cycles - before
                for m, before in zip(chip.macros, cycles_before)
            ]
            total_cycles = int(sum(per_macro))
            critical = int(max(per_macro, default=0))
            energy_j = float(chip.stats.total_energy_j) - energy_before
        else:
            total_cycles, critical, energy_j = engine.ledger_since(mark)
        utilization = (
            total_cycles / (chip.num_macros * critical) if critical else 0.0
        )
        record = BatchRecord(
            batch_index=batch_index,
            images=int(images.shape[0]),
            request_ids=tuple(req.request_id for req, _, _ in plan),
            host_wall_s=host_wall,
            total_cycles=total_cycles,
            critical_path_cycles=critical,
            energy_j=energy_j,
            modeled_latency_s=critical * chip.cycle_time_s(),
            utilization=utilization,
        )

        completed: List[RequestResult] = []
        offset = 0
        done_s = time.perf_counter()
        with self._lock:
            self._batches.append(record)
            self._images_served += record.images
            for request, start, stop in plan:
                pending = self._pending[request.request_id]
                pending.predictions.append(predictions[offset : stop - start + offset])
                pending.batch_indices.append(batch_index)
                offset += stop - start
                if stop == request.size:
                    result = RequestResult(
                        request_id=request.request_id,
                        predictions=np.concatenate(pending.predictions),
                        queue_delay_s=start_s - request.arrival_s,
                        latency_s=done_s - request.arrival_s,
                        batch_indices=tuple(pending.batch_indices),
                    )
                    self._completed[request.request_id] = result
                    self._results.append(result)
                    del self._pending[request.request_id]
                    completed.append(result)
        return completed

    def _fail_batch(
        self, plan: Sequence[Tuple[InferenceRequest, int, int]], error: BaseException
    ) -> None:
        """Attach a batch failure to every request it contained.

        The requests are taken out of the pending/queue state (any images of
        a split request not yet dispatched are dropped too — a half-failed
        request has no usable result) and the original exception is stored
        so :meth:`result` / :meth:`predict` re-raise it on the submitting
        client's thread instead of the failure dying inside the worker.
        """
        with self._lock:
            for request, _, _ in plan:
                self._failed[request.request_id] = error
                self._pending.pop(request.request_id, None)
                if request.remaining > 0:
                    try:
                        self._queue.remove(request)
                    except ValueError:
                        pass

    def serve_once(self) -> List[RequestResult]:
        """Form and execute one batch; returns the requests it completed."""
        with self._dispatch_lock:
            with self._lock:
                plan = self._take_batch_locked()
            if not plan:
                return []
            return self._execute_batch(plan)

    def drain(self) -> List[RequestResult]:
        """Serve the whole backlog synchronously.

        Returns:
            Every :class:`RequestResult` completed by this call, in
            completion order.
        """
        completed: List[RequestResult] = []
        while True:
            batch = self.serve_once()
            if not batch and self.pending_images == 0:
                return completed
            completed.extend(batch)

    # ------------------------------------------------------------------ #
    # Background worker
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with self._work_available:
                while not self._stop_requested and not self._queue:
                    self._work_available.wait(timeout=0.05)
                if self._stop_requested and not self._queue:
                    return
                # Dispatch on a full batch, otherwise honour the wait budget
                # of the oldest request before sending a partial batch.  A
                # condition wakeup (new submit) re-evaluates both rules, so
                # trickling submits keep accumulating instead of flushing a
                # partial batch early.
                while not self._stop_requested:
                    if not self._queue:
                        # A concurrent drain()/predict() consumed the queue
                        # while we waited; nothing left to batch.
                        break
                    pending = sum(request.remaining for request in self._queue)
                    budget_left = self.max_wait_s - (
                        time.perf_counter() - self._queue[0].arrival_s
                    )
                    if pending >= self.max_batch_size or budget_left <= 0:
                        break
                    self._work_available.wait(timeout=budget_left)
            try:
                self.serve_once()
            except Exception:
                # The failure is already stored on every request of the
                # batch (re-raised by result()/predict() on the client's
                # thread); the worker itself survives to serve the rest of
                # the queue instead of dying silently.
                continue

    def start(self) -> None:
        """Start the background batching worker."""
        if self._worker is not None and self._worker.is_alive():
            raise ConfigurationError("the server worker is already running")
        self._stop_requested = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="imc-inference-server", daemon=True
        )
        self._worker.start()

    def stop(self) -> None:
        """Drain the queue and stop the background worker (idempotent).

        Safe to call any number of times, before :meth:`start`, after a
        previous :meth:`stop`, and from ``__exit__`` — the cluster node
        lifecycle parks and re-parks nodes without tracking whether their
        servers ever ran a worker.
        """
        worker = self._worker
        if worker is None:
            return
        with self._work_available:
            self._stop_requested = True
            self._work_available.notify_all()
        worker.join()
        self._worker = None

    # ------------------------------------------------------------------ #
    # Context manager
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "InferenceServer":
        """Start the background worker (if not already running)."""
        if self._worker is None or not self._worker.is_alive():
            self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Stop the worker; the queue is drained before the worker exits."""
        self.stop()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def batches(self) -> List[BatchRecord]:
        """Per-batch dispatch records (in execution order)."""
        return list(self._batches)

    @property
    def results(self) -> List[RequestResult]:
        """Per-request results (in completion order)."""
        return list(self._results)

    def counters(self) -> Dict[str, float]:
        """O(1) serving totals for scrape-time observability collectors.

        Unlike :meth:`report` (which walks every batch and result record),
        this reads only running totals and list lengths, so a metrics
        collector can poll it per scrape without touching the per-batch
        history (see ``docs/OBSERVABILITY.md``).
        """
        with self._lock:
            return {
                "requests_completed": float(len(self._results)),
                "batches": float(len(self._batches)),
                "images_served": float(self._images_served),
                "pending_images": float(
                    sum(request.remaining for request in self._queue)
                ),
            }

    def report(self) -> ServerReport:
        """Aggregate everything served so far."""
        results = self.results
        batches = self.batches
        images = sum(batch.images for batch in batches)
        cache = self.engine.cache
        wall = max(self._busy_s, 1e-12)
        return ServerReport(
            requests=len(results),
            images=images,
            batches=len(batches),
            mean_batch_size=images / len(batches) if batches else 0.0,
            throughput_images_per_s=images / wall if images else 0.0,
            mean_latency_s=(
                sum(r.latency_s for r in results) / len(results) if results else 0.0
            ),
            max_latency_s=max((r.latency_s for r in results), default=0.0),
            mean_queue_delay_s=(
                sum(r.queue_delay_s for r in results) / len(results)
                if results
                else 0.0
            ),
            total_cycles=sum(batch.total_cycles for batch in batches),
            total_energy_j=sum(batch.energy_j for batch in batches),
            modeled_chip_time_s=sum(batch.modeled_latency_s for batch in batches),
            mean_utilization=(
                sum(batch.utilization for batch in batches) / len(batches)
                if batches
                else 0.0
            ),
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
        )
