"""Single-ended sense amplifier model.

The proposed macro senses BLT and BLB with *single-ended* sense amplifiers
(one per bit line) so that both BL-computation results (``A AND B`` on BLT,
``NOR(A, B)`` on BLB) are available simultaneously.  The behavioural model
captures:

* the swing the SA needs before it can be strobed (``required_swing``), and
* the resolve time from strobe to valid digital output, which scales with
  supply voltage and corner like every other digital component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tech.calibration import MacroCalibration
from repro.tech.technology import OperatingPoint, TechnologyProfile

__all__ = ["SenseAmplifier"]


@dataclass
class SenseAmplifier:
    """Per-column single-ended sense amplifier."""

    technology: TechnologyProfile
    calibration: MacroCalibration

    @property
    def required_swing(self) -> float:
        """BL swing (volts) needed for reliable single-ended sensing."""
        return self.calibration.bitline.sense_swing_v

    def resolve_time(
        self, point: OperatingPoint, offset_s: float = 0.0
    ) -> float:
        """Strobe-to-output delay (seconds) at the given operating point.

        ``offset_s`` adds a per-instance random offset, used by the
        Monte-Carlo engine to model SA input-referred offset / resolve-time
        variation.
        """
        timing = self.calibration.timing
        shift = self.technology.corner_spec(point.corner).dvth_n
        scale = timing.voltage_scale(point.vdd, vth_shift=shift)
        resolve = timing.sense_amp_resolve_s * scale + offset_s
        return max(resolve, 1e-12)

    def resolve_times(self, point: OperatingPoint, offsets_s) -> np.ndarray:
        """Vectorised :meth:`resolve_time` over an array of offsets.

        Identical arithmetic per element (scale multiply, offset add, floor
        clamp), so a Monte-Carlo population matches the scalar loop.
        """
        timing = self.calibration.timing
        shift = self.technology.corner_spec(point.corner).dvth_n
        scale = timing.voltage_scale(point.vdd, vth_shift=shift)
        resolves = timing.sense_amp_resolve_s * scale + np.asarray(
            offsets_s, dtype=np.float64
        )
        return np.maximum(resolves, 1e-12)

    def output(self, bitline_low: bool) -> int:
        """Digital output of the SA given whether its BL discharged.

        The SA output is high when the BL stayed high.  For a dual-WL access
        on BLT this yields ``A AND B``; on BLB it yields ``NOR(A, B)``.
        """
        return 0 if bitline_low else 1
