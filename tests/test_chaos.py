"""The chaos layer: plan validation, determinism, and live proxy drills.

Three layers of coverage:

* plan semantics — rule validation, immutability, the per-connection RNG
  derivation and the standard plan's composition;
* corruption mechanics — ``_corrupt_frame`` must always produce a frame
  the protocol rejects (the detectability guarantee every
  zero-acknowledged-loss gate rests on);
* live drills over real loopback sockets — a transparent proxy is
  byte-faithful, a seeded plan injects the identical fault sequence run
  after run, resets surface as client-visible connection errors, and a
  resilient client survives the standard plan end to end.
"""

import random
import socket

import numpy as np
import pytest

from repro.chaos import ChaosKind, ChaosPlan, ChaosRule, ThreadedChaosProxy
from repro.chaos.proxy import _corrupt_frame
from repro.cluster import ClusterNode, ClusterRouter, ExecutionMode, ForwardMemo
from repro.dnn.pipeline import make_pattern_image_dataset, train_pattern_cnn
from repro.errors import ConfigurationError
from repro.gateway import (
    FrameDecoder,
    FrameType,
    GatewayClient,
    ProtocolError,
    ThreadedGateway,
    decode_frame,
    encode_frame,
    encode_images,
)


@pytest.fixture(scope="module")
def trained():
    dataset = make_pattern_image_dataset(samples=60, size=8, seed=13)
    cnn, _ = train_pattern_cnn(
        dataset, conv_channels=(1,), hidden_sizes=(4,), epochs=2, seed=13
    )
    return dataset, cnn


def make_router(cnn, nodes=1):
    memo = ForwardMemo()
    fleet = [
        ClusterNode(
            f"n{index}",
            vdd=1.0,
            num_macros=4,
            max_batch_size=256,
            execution_mode=ExecutionMode.ANALYTIC,
            forward_memo=memo,
        )
        for index in range(nodes)
    ]
    router = ClusterRouter(fleet, coalesce=True)
    router.register_model("cnn", cnn)
    return router


def recv_frames(sock, count, decoder=None):
    decoder = decoder or FrameDecoder()
    frames = []
    while len(frames) < count:
        chunk = sock.recv(65536)
        assert chunk, "stream closed early"
        frames.extend(decoder.feed(chunk))
    return frames


# --------------------------------------------------------------------- #
# Plan semantics
# --------------------------------------------------------------------- #
class TestChaosPlan:
    def test_rules_validate_their_parameters(self):
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosRule(ChaosKind.RESET, probability=1.5)
        with pytest.raises(ConfigurationError, match="delay_s"):
            ChaosRule(ChaosKind.DELAY, probability=0.1)
        with pytest.raises(ConfigurationError, match="delay_s"):
            ChaosRule(ChaosKind.STALL_READ, probability=0.1, delay_s=0.0)
        with pytest.raises(ConfigurationError, match="chunk_bytes"):
            ChaosRule(ChaosKind.THROTTLE, probability=0.1)
        with pytest.raises(ConfigurationError, match="flip_bytes"):
            ChaosRule(ChaosKind.CORRUPT, probability=0.1, flip_bytes=0)
        with pytest.raises(ConfigurationError, match="after_frames"):
            ChaosRule(ChaosKind.RESET, probability=0.1, after_frames=-1)
        with pytest.raises(ConfigurationError, match="not a ChaosRule"):
            ChaosPlan(["reset"])

    def test_plan_is_immutable_and_iterable(self):
        rule = ChaosRule(ChaosKind.RESET, probability=0.5)
        plan = ChaosPlan([rule], seed=3)
        assert len(plan) == 1
        assert list(plan) == [rule]
        with pytest.raises(AttributeError):
            rule.probability = 0.9  # frozen dataclass

    def test_standard_plan_covers_every_fault_kind(self):
        plan = ChaosPlan.standard(seed=1)
        kinds = {rule.kind for rule in plan}
        assert kinds == set(ChaosKind)

    def test_merged_keeps_own_seed_and_concatenates(self):
        one = ChaosPlan([ChaosRule(ChaosKind.RESET, probability=0.1)], seed=1)
        two = ChaosPlan([ChaosRule(ChaosKind.DELAY, probability=0.1, delay_s=1.0)], seed=2)
        merged = one.merged(two)
        assert merged.seed == 1
        assert [rule.kind for rule in merged] == [ChaosKind.RESET, ChaosKind.DELAY]

    def test_rules_for_filters_by_kind(self):
        plan = ChaosPlan.standard(seed=0)
        stalls = plan.rules_for(ChaosKind.STALL_READ)
        assert len(stalls) == 1
        assert stalls[0].kind is ChaosKind.STALL_READ

    def test_rng_streams_are_deterministic_and_independent(self):
        plan = ChaosPlan.standard(seed=42)
        again = ChaosPlan.standard(seed=42)
        assert [plan.rng_for(5).random() for _ in range(4)] == [
            again.rng_for(5).random() for _ in range(4)
        ]
        assert plan.rng_for(0).random() != plan.rng_for(1).random()
        # Different seeds -> different decision streams.
        assert (
            ChaosPlan.standard(seed=1).rng_for(0).random()
            != ChaosPlan.standard(seed=2).rng_for(0).random()
        )


# --------------------------------------------------------------------- #
# Corruption mechanics
# --------------------------------------------------------------------- #
class TestCorruptionDetectability:
    def test_corrupted_frames_never_decode(self):
        # Whatever bytes get flipped, the result must be rejected by the
        # protocol — otherwise injected corruption could alias legitimate
        # traffic and the loss accounting would lie.
        rule = ChaosRule(ChaosKind.CORRUPT, probability=1.0, flip_bytes=1)
        rng = random.Random(99)
        for index in range(200):
            frame = bytearray(
                encode_frame(FrameType.PING, {"id": index, "pad": "x" * (index % 7)})
            )
            _corrupt_frame(frame, rule, rng)
            with pytest.raises(ProtocolError):
                decode_frame(bytes(frame))

    def test_corruption_is_deterministic_under_a_seeded_rng(self):
        rule = ChaosRule(ChaosKind.CORRUPT, probability=1.0, flip_bytes=2)
        one = bytearray(encode_frame(FrameType.PING, {"id": 1}))
        two = bytearray(encode_frame(FrameType.PING, {"id": 1}))
        _corrupt_frame(one, rule, random.Random(7))
        _corrupt_frame(two, rule, random.Random(7))
        assert one == two


# --------------------------------------------------------------------- #
# Live drills
# --------------------------------------------------------------------- #
class TestChaosProxyLive:
    def test_empty_plan_is_a_transparent_pipe(self, trained):
        dataset, cnn = trained
        router = make_router(cnn)
        gw = ThreadedGateway(router, max_queue=64)
        gw.start()
        try:
            with ThreadedChaosProxy(gw.server.host, gw.server.port) as chaos:
                with GatewayClient(chaos.proxy.host, chaos.proxy.port) as client:
                    result = client.predict("cnn", dataset.test_images[:2])
                    assert np.array_equal(
                        result.predictions, cnn.predict(dataset.test_images[:2])
                    )
                    assert client.ping() >= 0
                snap = chaos.proxy.snapshot()
                assert snap["connections_proxied"] >= 1
                assert snap["bytes_to_server"] > 0
                assert snap["bytes_to_client"] > 0
                assert all(snap[kind.value] == 0 for kind in ChaosKind)
        finally:
            gw.stop()
            router.shutdown()

    def test_certain_reset_surfaces_as_connection_error(self, trained):
        dataset, cnn = trained
        router = make_router(cnn)
        gw = ThreadedGateway(router, max_queue=64)
        gw.start()
        try:
            plan = ChaosPlan(
                [ChaosRule(ChaosKind.RESET, probability=1.0)], seed=0
            )
            with ThreadedChaosProxy(gw.server.host, gw.server.port, plan) as chaos:
                sock = socket.create_connection(
                    (chaos.proxy.host, chaos.proxy.port)
                )
                sock.sendall(encode_frame(FrameType.PING, {"id": 1}))
                # The proxy aborts the link instead of forwarding: the
                # client sees a reset or an EOF, never a reply.
                try:
                    data = sock.recv(65536)
                    assert data == b""
                except ConnectionError:
                    pass
                sock.close()
                assert chaos.proxy.injected["reset"] == 1
        finally:
            gw.stop()
            router.shutdown()

    def test_certain_corruption_triggers_malformed_frame_close(self, trained):
        dataset, cnn = trained
        router = make_router(cnn)
        gw = ThreadedGateway(router, max_queue=64)
        gw.start()
        try:
            plan = ChaosPlan(
                [ChaosRule(ChaosKind.CORRUPT, probability=1.0, flip_bytes=2)],
                seed=5,
            )
            with ThreadedChaosProxy(gw.server.host, gw.server.port, plan) as chaos:
                sock = socket.create_connection(
                    (chaos.proxy.host, chaos.proxy.port)
                )
                sock.sendall(
                    encode_frame(
                        FrameType.REQUEST,
                        {
                            "id": 1,
                            "model_id": "cnn",
                            "images": encode_images(dataset.test_images[:1]),
                        },
                    )
                )
                received = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    received += chunk
                sock.close()
                assert chaos.proxy.injected["corrupt"] == 1
                # The server either rejected the frame explicitly (an
                # ERROR frame reached us intact) or tore the stream down;
                # a RESPONSE must never come back for corrupted input.
                if received:
                    decoder = FrameDecoder()
                    frames = list(decoder.feed(received))
                    assert all(
                        frame_type is FrameType.ERROR for frame_type, _ in frames
                    )
                    assert frames[0][1]["code"] == "malformed_frame"
                stats = gw.server.snapshot()
                assert stats["malformed_frames"] == 1
                assert stats["responses_sent"] == 0
        finally:
            gw.stop()
            router.shutdown()

    def test_delay_and_throttle_preserve_correctness(self, trained):
        dataset, cnn = trained
        router = make_router(cnn)
        gw = ThreadedGateway(router, max_queue=64)
        gw.start()
        try:
            plan = ChaosPlan(
                [
                    ChaosRule(ChaosKind.DELAY, probability=1.0, delay_s=0.002),
                    ChaosRule(
                        ChaosKind.THROTTLE,
                        probability=1.0,
                        chunk_bytes=5,
                        delay_s=0.0001,
                    ),
                    ChaosRule(ChaosKind.STALL_READ, probability=1.0, delay_s=0.002),
                ],
                seed=11,
            )
            with ThreadedChaosProxy(gw.server.host, gw.server.port, plan) as chaos:
                with GatewayClient(chaos.proxy.host, chaos.proxy.port) as client:
                    result = client.predict("cnn", dataset.test_images[:2])
                assert np.array_equal(
                    result.predictions, cnn.predict(dataset.test_images[:2])
                )
                snap = chaos.proxy.snapshot()
                assert snap["delay"] >= 1
                assert snap["throttle"] >= 1
                assert snap["stall_read"] >= 1
        finally:
            gw.stop()
            router.shutdown()

    def test_resilient_client_survives_the_standard_plan(self, trained):
        # The miniature of the resilience bench: a retrying client pushes
        # requests through the standard chaos plan and every call either
        # succeeds or fails *loudly*; nothing hangs, nothing is silent.
        dataset, cnn = trained
        router = make_router(cnn)
        gw = ThreadedGateway(router, max_queue=64, min_retry_after_s=1e-6)
        gw.start()
        try:
            plan = ChaosPlan.standard(seed=1234)
            with ThreadedChaosProxy(gw.server.host, gw.server.port, plan) as chaos:
                ok = 0
                failed = 0
                with GatewayClient(
                    chaos.proxy.host,
                    chaos.proxy.port,
                    retries=4,
                    timeout_s=10.0,
                    rng=random.Random(5),
                ) as client:
                    for index in range(30):
                        images = dataset.test_images[index % 8 : index % 8 + 1]
                        try:
                            result = client.predict("cnn", images)
                            assert np.array_equal(
                                result.predictions, cnn.predict(images)
                            )
                            ok += 1
                        except Exception:  # noqa: BLE001 - loud failure is fine
                            failed += 1
                assert ok + failed == 30
                assert ok > 0  # the plan is survivable, not a blackout
        finally:
            gw.stop()
            router.shutdown()
