"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` with a message that names
the offending parameter, which keeps the constructors of configuration
dataclasses short and uniform.
"""

from __future__ import annotations

from numbers import Real

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_power_of_two",
    "check_probability",
    "check_ledger_conservation",
]


def check_positive(name: str, value: Real) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def check_non_negative(name: str, value: Real) -> None:
    """Raise unless ``value`` is zero or positive."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def check_in_range(name: str, value: Real, low: Real, high: Real) -> None:
    """Raise unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


def check_probability(name: str, value: Real) -> None:
    """Raise unless ``value`` is a valid probability in [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")


def check_ledger_conservation(cluster, parts, rel: float = 1e-12) -> None:
    """Raise unless a cluster ledger equals the sum of its per-node parts.

    The conservation law every router/kernel configuration must satisfy:
    cycles and operation counts (integers) match exactly, energy (a float
    accumulated in a fixed fold order) matches to relative ``rel``.  Used
    by the differential test suites and the fleet studies; ``cluster`` and
    each entry of ``parts`` are chip-ledger-like objects exposing
    ``total_cycles``, ``total_energy_j`` and ``total_operations``.
    """
    parts = list(parts)
    cycles = sum(p.total_cycles for p in parts)
    if cluster.total_cycles != cycles:
        raise ConfigurationError(
            "ledger conservation violated: cluster cycles "
            f"{cluster.total_cycles} != sum of node cycles {cycles}"
        )
    operations = sum(p.total_operations for p in parts)
    if cluster.total_operations != operations:
        raise ConfigurationError(
            "ledger conservation violated: cluster operations "
            f"{cluster.total_operations} != sum of node operations {operations}"
        )
    energy = sum(p.total_energy_j for p in parts)
    scale = max(abs(energy), abs(cluster.total_energy_j), 1e-300)
    if abs(cluster.total_energy_j - energy) > rel * scale:
        raise ConfigurationError(
            "ledger conservation violated: cluster energy "
            f"{cluster.total_energy_j!r} J != sum of node energies {energy!r} J"
        )
