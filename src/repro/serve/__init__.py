"""Batched inference serving on the weight-stationary IMC chip engine.

The serving layer is the seam between "many concurrent client requests" and
"one shared accelerator": :class:`InferenceServer` coalesces submitted image
batches into activation batches, streams them through a quantised network
whose integer matmuls run weight-stationary on a
:class:`repro.core.matmul.TiledMatmulEngine`, and reports per-request
latency plus chip utilization.
"""

from repro.serve.server import (
    BatchRecord,
    InferenceRequest,
    InferenceServer,
    RequestResult,
    ServerReport,
)

__all__ = [
    "BatchRecord",
    "InferenceRequest",
    "InferenceServer",
    "RequestResult",
    "ServerReport",
]
