"""Wire types of the coordinator <-> worker pipes.

The fleet protocol is deliberately small: a handful of frozen dataclasses
pickled over :mod:`multiprocessing` duplex pipes, always as *lists* (one
``send`` per batch), so a flush amortises the pickling and wakeup cost of
a pipe round-trip over many dispatch groups.

Two invariants the whole design leans on:

* **Per-pipe FIFO is per-node order.**  Every message to a worker travels
  on that worker's single pipe and is processed sequentially, so the
  dispatch/retune sequence a worker applies to one of its nodes is exactly
  the sequence the coordinator's shadow replica charged — which is what
  makes the worker-side ledgers bit-identical to the shadows'.
* **Activation tensors travel by reference.**  A :class:`TensorRef` names
  a digest-keyed :class:`multiprocessing.shared_memory.SharedMemory`
  block (or carries a small array inline); the bytes cross the process
  boundary once per distinct digest, not once per request — the gateway's
  ``images_ref`` idiom, one level down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "TensorRef",
    "Hello",
    "RegisterModel",
    "Dispatch",
    "Retune",
    "Sync",
    "Shutdown",
    "Completion",
    "SyncReply",
    "WorkerFailure",
]


@dataclass(frozen=True)
class TensorRef:
    """A picklable handle to one activation tensor.

    ``shm_name`` names the shared-memory block holding the row-major
    float64 bytes; ``None`` means the array was small enough to ride
    inline (``inline``) instead of paying a block per tiny tensor.
    """

    digest: str
    shape: Tuple[int, ...]
    dtype: str
    shm_name: Optional[str] = None
    inline: Optional[np.ndarray] = None


@dataclass(frozen=True)
class Hello:
    """Worker boot announcement (first message on the pipe)."""

    rank: int
    pid: int
    node_ids: Tuple[str, ...]


@dataclass(frozen=True)
class RegisterModel:
    """Register a model on every node the worker owns."""

    model_id: str
    model: object
    allow_transient: bool = False


@dataclass(frozen=True)
class Dispatch:
    """Execute one dispatch group (one request, or a coalesced run).

    ``parts``/``digests``/``request_ids`` are parallel, in queue order —
    the same order the coordinator's shadow charged the group in.
    """

    seq: int
    node_id: str
    model_id: str
    parts: Tuple[TensorRef, ...]
    digests: Tuple[Optional[str], ...]
    request_ids: Tuple[int, ...]


@dataclass(frozen=True)
class Retune:
    """Mirror a shadow node's DVFS actuation onto the worker's replica.

    Ordered between dispatches on the pipe, so the worker's chip rebuild
    (and the re-programming charges that follow) lands at exactly the
    point in the node's dispatch sequence where the shadow's did.
    """

    node_id: str
    vdd: float


@dataclass(frozen=True)
class Sync:
    """Barrier request: reply with ledgers + metrics once all prior work ran."""

    barrier_id: int


@dataclass(frozen=True)
class Shutdown:
    """Orderly worker exit (close pipe, stop servers, return)."""


@dataclass(frozen=True)
class Completion:
    """Predictions of one dispatch group, in the group's part order."""

    seq: int
    predictions: Tuple[np.ndarray, ...]


@dataclass(frozen=True)
class SyncReply:
    """Barrier answer: the worker's accounting state at the barrier.

    ``ledgers`` maps node id to the node's lifetime
    :class:`~repro.core.stats.MacroStatistics`; ``metrics`` is a
    ``repro.obs`` registry snapshot (merged coordinator-side in stable
    worker-rank order).
    """

    barrier_id: int
    rank: int
    ledgers: Dict[str, object]
    metrics: dict
    dispatch_groups: int


@dataclass(frozen=True)
class WorkerFailure:
    """A worker-side exception, forwarded before the worker exits."""

    rank: int
    message: str
    traceback: str
