"""Unit tests for the calibrated constants (repro.tech.calibration)."""

import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.tech.calibration import (
    BitlineCalibration,
    DisturbCalibration,
    EnergyCalibration,
    MacroCalibration,
    TimingCalibration,
    default_macro_calibration,
)


class TestTimingCalibration:
    def test_reference_breakdown_sums_to_603ps(self):
        timing = TimingCalibration()
        total = (
            timing.bl_precharge_s
            + timing.wl_pulse_s
            + timing.sense_amp_resolve_s
            + timing.writeback_separator_s
            + timing.fa_tg_setup_s
            + 16 * timing.fa_tg_per_bit_s
        )
        assert total == pytest.approx(603e-12, rel=1e-6)

    def test_voltage_scale_is_one_at_reference(self):
        timing = TimingCalibration()
        assert timing.voltage_scale(0.9) == pytest.approx(1.0)

    def test_voltage_scale_monotone_decreasing_with_vdd(self):
        timing = TimingCalibration()
        scales = [timing.voltage_scale(v) for v in (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)]
        assert all(a > b for a, b in zip(scales, scales[1:]))

    def test_voltage_scale_corner_shift(self):
        timing = TimingCalibration()
        slow = timing.voltage_scale(0.9, vth_shift=0.015)
        fast = timing.voltage_scale(0.9, vth_shift=-0.015)
        assert slow > 1.0 > fast

    def test_logic_fa_scales_faster_at_low_voltage(self):
        timing = TimingCalibration()
        tg = timing.voltage_scale(0.7)
        logic = timing.voltage_scale(0.7, logic_fa=True)
        assert logic > tg

    def test_rejects_supply_below_threshold(self):
        timing = TimingCalibration()
        with pytest.raises(CalibrationError):
            timing.voltage_scale(0.43)

    def test_rejects_threshold_above_reference_supply(self):
        with pytest.raises(CalibrationError):
            TimingCalibration(vth_eff=1.0)


class TestEnergyCalibration:
    def test_voltage_scale_is_quadratic(self):
        energy = EnergyCalibration()
        assert energy.voltage_scale(0.9) == pytest.approx(1.0)
        assert energy.voltage_scale(0.45) == pytest.approx(0.25)
        assert energy.voltage_scale(1.8) == pytest.approx(4.0)

    def test_writeback_separator_is_cheaper(self):
        energy = EnergyCalibration()
        assert energy.writeback_per_bit(True) < energy.writeback_per_bit(False)

    def test_add_per_bit_matches_table2_slope(self):
        energy = EnergyCalibration()
        per_bit = energy.bl_compute_dual_per_bit_j + energy.logic_per_bit_j
        # Table II: 274.8 fJ for an 8-bit ADD -> ~34.35 fJ/bit.
        assert per_bit * 1e15 == pytest.approx(34.35, rel=0.02)


class TestBitlineCalibration:
    def test_trigger_below_sense_swing(self):
        bitline = BitlineCalibration()
        assert bitline.boost_trigger_v < bitline.sense_swing_v

    def test_rejects_trigger_above_swing(self):
        with pytest.raises((CalibrationError, ConfigurationError)):
            BitlineCalibration(boost_trigger_v=0.3, sense_swing_v=0.2)

    def test_wlud_voltage_matches_paper(self):
        assert BitlineCalibration().wlud_wl_voltage == pytest.approx(0.55)


class TestDisturbCalibration:
    def test_defaults_positive(self):
        disturb = DisturbCalibration()
        assert disturb.sigma_adm_v > 0
        assert disturb.conventional_pulse_s > disturb.reference_time_s


class TestMacroCalibration:
    def test_default_bundle(self):
        bundle = default_macro_calibration()
        assert isinstance(bundle, MacroCalibration)
        assert bundle.interleave_factor == 4
        assert bundle.area_overhead_fraction == pytest.approx(0.052)

    def test_components_present(self):
        bundle = default_macro_calibration()
        assert isinstance(bundle.timing, TimingCalibration)
        assert isinstance(bundle.energy, EnergyCalibration)
        assert isinstance(bundle.bitline, BitlineCalibration)
        assert isinstance(bundle.disturb, DisturbCalibration)
