"""The metrics registry: counters, gauges, log-bucketed histograms.

Design constraints, in order:

* **O(1) record.**  Counters and gauges are one attribute update;
  histograms bucket by ``floor(log2(v) * buckets_per_octave)`` — an
  HDR-histogram-style geometric grid with ~9% relative bucket width at
  the default 8 buckets per octave.  Hot paths additionally get
  vectorised batch entry points (:meth:`Histogram.record_many`,
  :meth:`Counter.inc` with an amount) so the columnar kernel folds a
  whole dispatch chunk per call.
* **Mergeable.**  Two histograms with the same grid merge by adding
  sparse bucket counts — associative and commutative, so multi-process
  fleets can combine per-worker registries in any order and read the
  same quantiles (the hypothesis property in ``tests/test_obs.py`` pins
  this).  :meth:`MetricsRegistry.merge_snapshot` folds a whole saved
  snapshot into a live registry.
* **Dual timestamps.**  Every sample carries ``virtual_s`` (the router's
  modeled clock, read through the registry's ``virtual_clock`` callable)
  and ``wall_s`` (``time.time()``), stamped on update.  Modeled-time
  studies and live serving share one vocabulary; consumers pick the
  time base that is meaningful for their run.

Naming conventions (normative; see ``docs/OBSERVABILITY.md``): metric
names are ``<subsystem>_<quantity>[_<unit>][_total]`` in snake_case —
``_total`` for counters, an SI unit suffix (``_seconds``, ``_joules``,
``_bytes``) wherever a unit exists, and label names from the closed
vocabulary ``sla`` / ``node`` / ``model`` / ``kind`` / ``action``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MetricError", "Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Snapshot schema identifier stamped into every serialised registry.
SNAPSHOT_SCHEMA = "repro.obs/1"


class MetricError(ValueError):
    """Invalid metric usage: bad name, label mismatch, NaN sample."""


def _validate_labels(
    labelnames: Tuple[str, ...], labels: Dict[str, object]
) -> Tuple[str, ...]:
    """Return the child key for ``labels``; raise on a mismatch."""
    if set(labels) != set(labelnames):
        raise MetricError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Sample:
    """Shared bookkeeping of one labelled time series (a metric child)."""

    __slots__ = ("labels", "virtual_s", "wall_s", "_clock")

    def __init__(
        self, labels: Dict[str, str], clock: Callable[[], Optional[float]]
    ) -> None:
        self.labels = labels
        #: Modeled-clock time of the last update (None before the first
        #: update or when no virtual clock is attached).
        self.virtual_s: Optional[float] = None
        #: Wall-clock time of the last update.
        self.wall_s: Optional[float] = None
        self._clock = clock

    def _stamp(self) -> None:
        self.virtual_s = self._clock()
        self.wall_s = time.time()


class Counter(_Sample):
    """A monotonically *intended* cumulative count.

    ``inc`` accepts any float amount; the gateway's zero-loss accounting
    occasionally takes a count back (a response staged for a peer that
    vanished), so negative increments are tolerated rather than raising.
    """

    __slots__ = ("value",)

    def __init__(self, labels, clock) -> None:
        super().__init__(labels, clock)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (NaN is rejected; negative is tolerated)."""
        if amount != amount:  # NaN
            raise MetricError("counter increment must not be NaN")
        self.value += amount
        self._stamp()

    def to_dict(self) -> dict:
        return {"value": self.value}

    def merge_dict(self, data: dict) -> None:
        self.value += float(data["value"])
        self._stamp()


class Gauge(_Sample):
    """A point-in-time value (queue depth, EMA, residency generation)."""

    __slots__ = ("value",)

    def __init__(self, labels, clock) -> None:
        super().__init__(labels, clock)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value (NaN is rejected)."""
        if value != value:  # NaN
            raise MetricError("gauge value must not be NaN")
        self.value = float(value)
        self._stamp()

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount``."""
        self.set(self.value + amount)

    def to_dict(self) -> dict:
        return {"value": self.value}

    def merge_dict(self, data: dict) -> None:
        # Gauges are point-in-time: a merged snapshot overwrites.
        self.value = float(data["value"])
        self._stamp()


class Histogram(_Sample):
    """Log-bucketed streaming histogram (HDR-style, sparse, mergeable).

    Bucket ``i`` covers values in ``(2**(i/k), 2**((i+1)/k)]`` where
    ``k = buckets_per_octave``; exact zeros get their own counter and
    negative or NaN samples are rejected (latency / energy / bytes are
    the domain).  Recording is O(1): one ``log2``, one dict update.

    Quantiles are read from the bucket grid (upper bucket edge, clamped
    to the observed min/max), so they depend only on the merged multiset
    of bucket counts — merge order can never change a quantile.
    """

    __slots__ = ("buckets_per_octave", "buckets", "zero_count", "count", "sum", "min", "max")

    def __init__(self, labels, clock, buckets_per_octave: int = 8) -> None:
        super().__init__(labels, clock)
        if buckets_per_octave < 1:
            raise MetricError("buckets_per_octave must be >= 1")
        self.buckets_per_octave = buckets_per_octave
        #: Sparse bucket counts keyed by integer bucket index.
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        return math.floor(math.log2(value) * self.buckets_per_octave)

    def record(self, value: float) -> None:
        """Fold one sample in (O(1)).

        Raises:
            MetricError: On a NaN or negative sample.
        """
        if value != value:  # NaN
            raise MetricError("histogram sample must not be NaN")
        if value < 0.0:
            raise MetricError(f"histogram sample must be >= 0, got {value}")
        if value == 0.0:
            self.zero_count += 1
        else:
            index = self._index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._stamp()

    def record_many(self, values) -> None:
        """Fold a batch of samples in one vectorised pass.

        The kernel's chunk-boundary entry point: bucket indexes and
        their multiplicities come from ``np.unique`` over the whole
        chunk, so the per-sample Python cost is zero.

        Raises:
            MetricError: If any sample is NaN or negative.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        if np.isnan(array).any():
            raise MetricError("histogram sample must not be NaN")
        if (array < 0.0).any():
            raise MetricError("histogram sample must be >= 0")
        positive = array[array > 0.0]
        if positive.size:
            indexes = np.floor(
                np.log2(positive) * self.buckets_per_octave
            ).astype(np.int64)
            unique, counts = np.unique(indexes, return_counts=True)
            buckets = self.buckets
            for index, n in zip(unique.tolist(), counts.tolist()):
                buckets[index] = buckets.get(index, 0) + n
        self.zero_count += int(array.size - positive.size)
        self.count += int(array.size)
        self.sum += float(array.sum())
        self.min = min(self.min, float(array.min()))
        self.max = max(self.max, float(array.max()))
        self._stamp()

    # -------------------------------------------------------------- #
    # Reading
    # -------------------------------------------------------------- #
    def _edge(self, index: int) -> float:
        """Upper value edge of bucket ``index``."""
        return 2.0 ** ((index + 1) / self.buckets_per_octave)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile read off the bucket grid.

        Deterministic in the bucket counts alone (merge-order
        invariant); 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = self.zero_count
        if cumulative >= target:
            return 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return float(min(max(self._edge(index), self.min), self.max))
        return float(self.max)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (associative, commutative).

        Raises:
            MetricError: When the bucket grids differ.
        """
        if other.buckets_per_octave != self.buckets_per_octave:
            raise MetricError(
                "cannot merge histograms with different bucket grids "
                f"({self.buckets_per_octave} vs {other.buckets_per_octave} "
                "buckets per octave)"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._stamp()

    def to_dict(self) -> dict:
        return {
            "buckets_per_octave": self.buckets_per_octave,
            "buckets": {str(index): n for index, n in self.buckets.items()},
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, data: dict) -> None:
        """Fold a serialised histogram sample (snapshot merge path)."""
        other = Histogram(self.labels, self._clock, int(data["buckets_per_octave"]))
        other.buckets = {int(index): int(n) for index, n in data["buckets"].items()}
        other.zero_count = int(data["zero_count"])
        other.count = int(data["count"])
        other.sum = float(data["sum"])
        other.min = math.inf if data.get("min") is None else float(data["min"])
        other.max = -math.inf if data.get("max") is None else float(data["max"])
        self.merge(other)


#: Metric constructor by kind name (the snapshot round-trip table).
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and all of its labelled children.

    Families with no declared label names behave as a single series:
    ``family.inc()`` / ``family.set()`` / ``family.record()`` delegate
    to the implicit unlabelled child.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        clock: Callable[[], Optional[float]],
        **options,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self._clock = clock
        self._options = options
        self._children: Dict[Tuple[str, ...], _Sample] = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        """The child series for one label combination (created lazily)."""
        key = _validate_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KINDS[self.kind](
                        dict(zip(self.labelnames, key)), self._clock, **self._options
                    )
                    self._children[key] = child
        return child

    def _default(self):
        if self.labelnames:
            raise MetricError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    # Unlabelled conveniences ------------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def record(self, value: float) -> None:
        self._default().record(value)

    def record_many(self, values) -> None:
        self._default().record_many(values)

    @property
    def value(self) -> float:
        return self._default().value

    def samples(self) -> List[_Sample]:
        """Every live child, in insertion order."""
        return list(self._children.values())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [
                {
                    "labels": child.labels,
                    "virtual_s": child.virtual_s,
                    "wall_s": child.wall_s,
                    **child.to_dict(),
                }
                for child in self._children.values()
            ],
        }


class MetricsRegistry:
    """The process-local home of every metric family.

    Args:
        virtual_clock: Zero-argument callable returning the modeled-time
            seconds to stamp on samples (a router's ``clock_s``); absent,
            samples carry ``virtual_s = None``.  Attach one later with
            :meth:`set_virtual_clock` (the router does this when a
            registry is handed to it).
    """

    def __init__(
        self, virtual_clock: Optional[Callable[[], float]] = None
    ) -> None:
        self._virtual_clock = virtual_clock
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Clocks
    # -------------------------------------------------------------- #
    def set_virtual_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach (or detach) the modeled-time clock samples stamp."""
        self._virtual_clock = clock

    def _read_clock(self) -> Optional[float]:
        return self._virtual_clock() if self._virtual_clock is not None else None

    # -------------------------------------------------------------- #
    # Declaration
    # -------------------------------------------------------------- #
    def _declare(
        self, name: str, kind: str, help: str, labelnames: Sequence[str], **options
    ) -> MetricFamily:
        if not name or not name.replace("_", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help, tuple(labelnames), self._read_clock, **options
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise MetricError(
                f"metric {name!r} already declared as {family.kind} with "
                f"labels {family.labelnames}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets_per_octave: int = 8,
    ) -> MetricFamily:
        """Declare (or fetch) a log-bucketed histogram family."""
        return self._declare(
            name, "histogram", help, labelnames, buckets_per_octave=buckets_per_octave
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        """Every registered family, in declaration order."""
        return list(self._families.values())

    # -------------------------------------------------------------- #
    # Collectors
    # -------------------------------------------------------------- #
    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run ``collector(self)`` at every snapshot.

        Collectors keep hot paths free: subsystems whose state is cheap
        to read but expensive to stream (node cache counters, residency
        generations, queue depths) publish via a collector instead of
        per-event updates.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collector in self._collectors:
            collector(self)

    # -------------------------------------------------------------- #
    # Snapshot / merge
    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """Collect and serialise the whole registry (JSON-safe).

        The snapshot carries the registry-level dual timestamp pair plus
        every family with all of its labelled samples (each sample again
        stamped with its own last-update ``virtual_s`` / ``wall_s``).
        """
        self.collect()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "virtual_time_s": self._read_clock(),
            "wall_time_s": time.time(),
            "metrics": {
                name: family.to_dict() for name, family in self._families.items()
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a serialised snapshot into this registry.

        Counters and histograms add; gauges overwrite (point-in-time).
        Families absent here are declared from the snapshot's metadata,
        so merging into an empty registry reconstructs the original.

        Raises:
            MetricError: On a schema mismatch or incompatible families.
        """
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise MetricError(
                f"snapshot schema {snapshot.get('schema')!r} is not "
                f"{SNAPSHOT_SCHEMA!r}"
            )
        for name, data in snapshot["metrics"].items():
            options = {}
            if data["kind"] == "histogram" and data["samples"]:
                options["buckets_per_octave"] = int(
                    data["samples"][0]["buckets_per_octave"]
                )
            family = self._declare(
                name, data["kind"], data["help"], tuple(data["labelnames"]), **options
            )
            for sample in data["samples"]:
                family.labels(**sample["labels"]).merge_dict(sample)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Reconstruct a registry from a serialised snapshot."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def merge_snapshots(self, snapshots: Iterable[dict]) -> None:
        """Fold several serialised snapshots into this registry, in order.

        The cross-process convenience around :meth:`merge_snapshot`: a
        fleet coordinator collects one snapshot per worker at a sync
        barrier and folds them in stable worker-rank order.  Because
        counters and histograms *add* and each call is itself
        order-invariant over disjoint label sets, the merged counter and
        histogram totals do not depend on the iteration order — only
        gauge last-writer-wins ties do, which the stable rank ordering
        makes deterministic too.
        """
        for snapshot in snapshots:
            self.merge_snapshot(snapshot)
