"""Micro-sequencer for the multi-cycle operations (SUB, MULT).

The single-cycle primitives of the macro (logic, ADD, ADD-SHIFT, moves) are
executed directly; SUB and MULT are *composite* operations that the control
logic expands into a fixed sequence of those primitives:

* **SUB** (2 cycles, Fig. 4 bottom-left):

  1. ``NOT`` the subtrahend and write it back to a dummy row,
  2. ``ADD`` the minuend and the inverted subtrahend with a forced carry-in
     of 1 (two's complement).

* **MULT** (N + 2 cycles, Fig. 5): left-shift multiplication.

  1. write zeros into the accumulator dummy row and load the multiplier into
     the Y-Path flip-flops,
  2. copy the multiplicand into a dummy row,
  3. N - 1 ``ADD-SHIFT`` cycles that consume the multiplier bits MSB-first —
     when the current bit is 1 the FA sum is written back shifted, when it is
     0 the propagated (old accumulator) value is written back shifted,
  4. a final plain ``ADD`` for the last partial product.

The sequencer only produces the *plan*; the macro interprets each micro-op
against its array, periphery and accounting machinery.  Keeping the plan
explicit makes the cycle counts of Table I auditable: the length of the plan
(excluding zero-cost bookkeeping steps) is exactly the cycle count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.operations import Opcode, cycles_for
from repro.errors import SequencerError
from repro.utils.validation import check_positive

__all__ = ["MicroOpKind", "MicroOp", "MicroSequencer"]


class MicroOpKind(enum.Enum):
    """Primitive steps the macro knows how to execute."""

    #: Write zeros into the accumulator dummy row and load the multiplier
    #: words into the Y-Path flip-flops (one cycle).
    INIT_ACCUMULATOR = "init_accumulator"
    #: Copy a main-array operand row into a dummy row (one cycle).
    COPY_TO_DUMMY = "copy_to_dummy"
    #: Invert a main-array operand row into a dummy row (one cycle).
    NOT_TO_DUMMY = "not_to_dummy"
    #: Dual-WL add of two rows, result written to the destination (one cycle).
    ADD = "add"
    #: Dual-WL add with carry-in forced to 1 at every precision boundary.
    ADD_WITH_CARRY = "add_with_carry"
    #: Dual-WL add, result written back shifted by one (one cycle); the
    #: write-back source is selected per slot by the current multiplier bit.
    ADD_SHIFT_SELECT = "add_shift_select"
    #: Final accumulation of the multiplication (plain add with per-slot
    #: multiplier-bit selection, result to the destination row).
    FINAL_ADD_SELECT = "final_add_select"


@dataclass(frozen=True)
class MicroOp:
    """One step of a composite operation."""

    kind: MicroOpKind
    #: Which multiplier bit (little-endian index) this step consumes, if any.
    multiplier_bit_index: Optional[int] = None
    #: Free-form note used in traces and error messages.
    note: str = ""

    @property
    def consumes_multiplier_bit(self) -> bool:
        """Whether the step reads a multiplier flip-flop bit."""
        return self.multiplier_bit_index is not None


@dataclass
class MicroSequence:
    """A fully expanded composite operation."""

    opcode: Opcode
    precision_bits: int
    steps: List[MicroOp] = field(default_factory=list)

    @property
    def cycle_count(self) -> int:
        """Number of macro cycles the sequence occupies."""
        return len(self.steps)

    def validate(self) -> None:
        """Cross-check the plan length against Table I."""
        expected = cycles_for(self.opcode, self.precision_bits)
        if self.cycle_count != expected:
            raise SequencerError(
                f"{self.opcode.name} at {self.precision_bits}-bit expanded to "
                f"{self.cycle_count} cycles, expected {expected} (Table I)"
            )


class MicroSequencer:
    """Expands composite opcodes into micro-op plans."""

    def expand_sub(self, precision_bits: int) -> MicroSequence:
        """Two-cycle subtraction plan."""
        check_positive("precision_bits", precision_bits)
        sequence = MicroSequence(
            opcode=Opcode.SUB,
            precision_bits=precision_bits,
            steps=[
                MicroOp(MicroOpKind.NOT_TO_DUMMY, note="invert subtrahend into dummy row"),
                MicroOp(MicroOpKind.ADD_WITH_CARRY, note="add with carry-in 1 (two's complement)"),
            ],
        )
        sequence.validate()
        return sequence

    def expand_mult(self, precision_bits: int) -> MicroSequence:
        """(N + 2)-cycle left-shift multiplication plan."""
        check_positive("precision_bits", precision_bits)
        steps: List[MicroOp] = [
            MicroOp(
                MicroOpKind.INIT_ACCUMULATOR,
                note="zero accumulator row, load multiplier flip-flops",
            ),
            MicroOp(MicroOpKind.COPY_TO_DUMMY, note="copy multiplicand into dummy row"),
        ]
        # Multiplier bits are consumed MSB-first; the last bit (LSB) is the
        # final plain add.
        for step_index in range(precision_bits - 1):
            bit_index = precision_bits - 1 - step_index
            steps.append(
                MicroOp(
                    MicroOpKind.ADD_SHIFT_SELECT,
                    multiplier_bit_index=bit_index,
                    note=f"add-and-shift for multiplier bit {bit_index}",
                )
            )
        steps.append(
            MicroOp(
                MicroOpKind.FINAL_ADD_SELECT,
                multiplier_bit_index=0,
                note="final accumulation (multiplier bit 0)",
            )
        )
        sequence = MicroSequence(
            opcode=Opcode.MULT, precision_bits=precision_bits, steps=steps
        )
        sequence.validate()
        return sequence

    def expand(self, opcode: Opcode, precision_bits: int) -> MicroSequence:
        """Expand any composite opcode."""
        if opcode is Opcode.SUB:
            return self.expand_sub(precision_bits)
        if opcode is Opcode.MULT:
            return self.expand_mult(precision_bits)
        raise SequencerError(
            f"{opcode.name} is a single-cycle operation and needs no expansion"
        )
