"""End-to-end quantised CNN pipeline (conv feature extractor + MLP head).

The conv layer of :mod:`repro.dnn.conv` becomes genuinely useful only when it
is part of a network.  This module provides the small image-classification
pipeline used by the tests and examples:

* :func:`make_pattern_image_dataset` generates a synthetic image task
  (horizontal stripes vs vertical stripes vs checkerboard, plus noise) that a
  tiny CNN solves easily in float and that degrades under aggressive
  quantisation — mirroring the MLP study at the image level;
* :class:`QuantizedCNN` chains quantised conv layers with a quantised MLP
  head; the convolution filters are fixed (random, He-scaled) feature
  extractors and the head is trained on the extracted float features with the
  existing numpy trainer — no conv backprop needed;
* every integer matrix product (conv via im2col and dense) goes through the
  same pluggable matmul backend, so the whole network can run on the
  :class:`repro.dnn.imc_backend.IMCMatmulBackend` bit-exactly — or, for
  batched serving, on the weight-stationary
  :class:`repro.core.matmul.TiledMatmulEngine`
  (:meth:`QuantizedCNN.with_chip` builds and binds one in one call, and
  :class:`repro.serve.InferenceServer` coalesces request streams on top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dnn.conv import Conv2DLayer, QuantizedConv2DLayer
from repro.dnn.datasets import DatasetSplit
from repro.dnn.model import QuantizedMLP
from repro.dnn.training import TrainingResult, train_mlp
from repro.errors import ConfigurationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["ImageDatasetSplit", "make_pattern_image_dataset", "QuantizedCNN", "train_pattern_cnn"]


@dataclass(frozen=True)
class ImageDatasetSplit:
    """Train/test split of an image-classification dataset.

    Images have shape ``(samples, channels, height, width)``.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """(channels, height, width) of one image."""
        return tuple(self.train_images.shape[1:])

    @property
    def class_count(self) -> int:
        """Number of target classes."""
        return int(max(self.train_labels.max(), self.test_labels.max())) + 1


def _pattern_image(kind: int, size: int, rng: np.random.Generator, noise: float) -> np.ndarray:
    coords = np.indices((size, size))
    if kind == 0:  # horizontal stripes
        image = (coords[0] // 2) % 2
    elif kind == 1:  # vertical stripes
        image = (coords[1] // 2) % 2
    else:  # checkerboard
        image = (coords[0] + coords[1]) % 2
    image = image.astype(np.float64)
    image += rng.normal(0.0, noise, size=(size, size))
    phase_shift = rng.integers(0, 2)
    if phase_shift:
        image = np.roll(image, 1, axis=kind % 2)
    return image


def make_pattern_image_dataset(
    samples: int = 480,
    size: int = 8,
    noise: float = 0.3,
    test_fraction: float = 0.25,
    seed: int = 13,
) -> ImageDatasetSplit:
    """Synthetic 3-class image dataset (stripes / stripes / checkerboard)."""
    check_positive("samples", samples)
    check_positive("size", size)
    check_in_range("noise", noise, 0.0, 2.0)
    check_in_range("test_fraction", test_fraction, 0.05, 0.9)
    rng = np.random.default_rng(seed)
    images = np.empty((samples, 1, size, size), dtype=np.float64)
    labels = np.empty(samples, dtype=np.int64)
    for index in range(samples):
        label = index % 3
        images[index, 0] = _pattern_image(label, size, rng, noise)
        labels[index] = label
    order = rng.permutation(samples)
    images, labels = images[order], labels[order]
    images = (images - images.mean()) / (images.std() + 1e-9)
    test_count = int(round(samples * test_fraction))
    return ImageDatasetSplit(
        train_images=images[test_count:],
        train_labels=labels[test_count:],
        test_images=images[:test_count],
        test_labels=labels[:test_count],
    )


@dataclass
class QuantizedCNN:
    """A quantised conv feature extractor followed by a quantised MLP head."""

    conv_layers: List[QuantizedConv2DLayer]
    head: QuantizedMLP
    matmul: Optional[Callable] = None

    def with_backend(self, matmul: Callable) -> "QuantizedCNN":
        """Bind every integer matmul of the pipeline to a backend."""
        return QuantizedCNN(
            conv_layers=self.conv_layers,
            head=self.head.with_backend(matmul),
            matmul=matmul,
        )

    def with_chip(
        self, num_macros: int = 8, precision_bits: int = 8
    ) -> "QuantizedCNN":
        """Bind the pipeline to a weight-stationary engine on a fresh chip.

        Builds an ``num_macros``-shard :class:`repro.core.chip.IMCChip`,
        wraps it in a :class:`repro.core.matmul.TiledMatmulEngine` and binds
        every integer matmul (conv via im2col and dense) to it; the engine
        is reachable afterwards as ``model.matmul`` for statistics.
        """
        from repro.core.chip import IMCChip
        from repro.core.config import MacroConfig
        from repro.core.matmul import TiledMatmulEngine

        engine = TiledMatmulEngine(
            IMCChip(num_macros, MacroConfig(precision_bits=precision_bits))
        )
        return self.with_backend(engine)

    def _features(self, images: np.ndarray) -> np.ndarray:
        values = np.asarray(images, dtype=np.float64)
        for layer in self.conv_layers:
            values = layer.forward(values, matmul=self.matmul)
        return values.reshape(values.shape[0], -1)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Class logits for a batch of images."""
        return self.head.forward(self._features(images))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.forward(images), axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(images) == np.asarray(labels)))

    def mac_count(self, images: np.ndarray) -> int:
        """Total MACs for a batch (conv + dense)."""
        conv_macs = sum(layer.mac_count(images) for layer in self.conv_layers)
        return conv_macs + self.head.mac_count(images.shape[0])


def train_pattern_cnn(
    dataset: ImageDatasetSplit,
    conv_channels: Sequence[int] = (4,),
    kernel_size: int = 3,
    hidden_sizes: Tuple[int, ...] = (16,),
    weight_bits: int = 8,
    activation_bits: Optional[int] = None,
    epochs: int = 20,
    seed: int = 0,
) -> Tuple[QuantizedCNN, TrainingResult]:
    """Build and train the quantised CNN pipeline.

    The convolution filters are fixed random feature extractors; only the MLP
    head is trained (on the float features), which keeps training simple
    while still exercising the full conv + dense integer path at inference
    time.  Returns the quantised pipeline and the head's training result.
    """
    if not conv_channels:
        raise ConfigurationError("at least one convolution layer is required")
    if activation_bits is None:
        activation_bits = weight_bits

    channels, _, _ = dataset.image_shape
    float_convs: List[Conv2DLayer] = []
    in_channels = channels
    for index, out_channels in enumerate(conv_channels):
        float_convs.append(
            Conv2DLayer.random(
                in_channels, out_channels, kernel_size=kernel_size, seed=seed + index
            )
        )
        in_channels = out_channels

    def extract(images: np.ndarray) -> np.ndarray:
        values = images
        for layer in float_convs:
            values = layer.forward(values)
        return values.reshape(values.shape[0], -1)

    train_features = extract(dataset.train_images)
    test_features = extract(dataset.test_images)
    feature_split = DatasetSplit(
        train_x=train_features,
        train_y=dataset.train_labels,
        test_x=test_features,
        test_y=dataset.test_labels,
    )
    training = train_mlp(feature_split, hidden_sizes=hidden_sizes, epochs=epochs, seed=seed)

    quantized_convs = [
        QuantizedConv2DLayer(layer, weight_bits=weight_bits, activation_bits=activation_bits)
        for layer in float_convs
    ]
    head = QuantizedMLP.from_float(
        training.model, weight_bits=weight_bits, activation_bits=activation_bits
    )
    return QuantizedCNN(conv_layers=quantized_convs, head=head), training
