"""Golden-model ALU.

Every in-memory result produced by :class:`repro.core.macro.IMCMacro` (and by
the bit-serial baseline) is checked against this plain-Python ALU in the test
suite.  It implements exactly the modular semantics the macro is specified to
have: unsigned operands, results reduced modulo ``2**precision`` except for
multiplication, which returns the full double-width product.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operations import Opcode
from repro.errors import OperandError
from repro.utils.bitops import mask

__all__ = ["ReferenceALU"]


@dataclass(frozen=True)
class ReferenceALU:
    """Bit-exact reference for the macro's operation set."""

    precision_bits: int = 8

    def _check(self, name: str, value: int) -> int:
        if not 0 <= value <= mask(self.precision_bits):
            raise OperandError(
                f"{name}={value} does not fit in {self.precision_bits} unsigned bits"
            )
        return value

    def evaluate(self, opcode: Opcode, a: int, b: int | None = None) -> int:
        """Evaluate one operation with the macro's semantics."""
        modulus = 1 << self.precision_bits
        a = self._check("a", a)
        if opcode in (Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT):
            if opcode is Opcode.NOT:
                return (~a) % modulus
            if opcode is Opcode.COPY:
                return a
            return (a << 1) % modulus
        if b is None:
            raise OperandError(f"{opcode.name} needs two operands")
        b = self._check("b", b)
        if opcode is Opcode.AND:
            return a & b
        if opcode is Opcode.NAND:
            return (~(a & b)) % modulus
        if opcode is Opcode.OR:
            return a | b
        if opcode is Opcode.NOR:
            return (~(a | b)) % modulus
        if opcode is Opcode.XOR:
            return a ^ b
        if opcode is Opcode.XNOR:
            return (~(a ^ b)) % modulus
        if opcode is Opcode.ADD:
            return (a + b) % modulus
        if opcode is Opcode.ADD_SHIFT:
            return ((a + b) << 1) % modulus
        if opcode is Opcode.SUB:
            return (a - b) % modulus
        if opcode is Opcode.MULT:
            return a * b
        raise OperandError(f"unknown opcode {opcode!r}")
