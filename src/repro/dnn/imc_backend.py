"""Integer matrix-multiplication backends for quantised inference.

Two interchangeable backends implement the integer product of a quantised
dense layer:

* :class:`NumpyIntBackend` — the golden path; plain int64 matrix product.
* :class:`IMCMatmulBackend` — every scalar multiply is executed **on the
  IMC macro** (unsigned magnitude multiplication on the bit lines, sign
  applied near-memory) and the partial products are accumulated by the
  near-memory adder.  The backend also keeps the macro's statistics, so an
  inference run reports the in-memory cycles and energy it consumed.

Running a whole test set through the macro is slow in a Python functional
simulation, so the quantised accuracy studies use the numpy backend by
default and the test-suite asserts bit-exact equivalence between the two on
sampled layers — which is what makes the fast path trustworthy.

For production-style inference prefer
:class:`repro.core.matmul.TiledMatmulEngine`: it is weight-stationary
(weights are programmed once per layer and cached on the chip) and serves
batched activation streams orders of magnitude faster than re-sending both
operands per call, while remaining bit-exact against
:class:`NumpyIntBackend`.

Every backend counts MACs through the shared
:func:`repro.core.matmul.matmul_mac_count`, derived from the operand shapes
alone.  Counting from the executed multiplication stream instead would be
fragile around zero-valued activations — their magnitude MULT is issued
*and* the sign path suppresses the product (``sign(0) = 0``), so a backend
walking both would double-count them while one skipping suppressed products
would under-count.  Shape-derived counting makes every backend agree by
construction, and the backend-equivalence test pins the equality down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.chip import IMCChip
from repro.core.macro import IMCMacro
from repro.core.matmul import matmul_mac_count
from repro.core.operations import Opcode
from repro.errors import ConfigurationError
from repro.utils.bitops import mask

__all__ = ["NumpyIntBackend", "IMCMatmulBackend"]


class NumpyIntBackend:
    """Reference integer matmul backend (int64 numpy)."""

    def __init__(self) -> None:
        self.mac_count = 0

    def __call__(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        self.mac_count += matmul_mac_count(activations, weights)
        return activations @ weights


@dataclass
class IMCMatmulBackend:
    """Integer matmul executed on the bit-parallel IMC engine.

    Parameters
    ----------
    macro:
        The execution engine: a single :class:`~repro.core.macro.IMCMacro`
        or a sharded :class:`~repro.core.chip.IMCChip` (both expose the same
        ``elementwise`` / ``stats`` / cost-model interface; a chip spreads
        the multiplication stream across its macro shards).  The configured
        precision must be able to hold the magnitude of every operand code
        (e.g. 8-bit codes need an 8-bit or wider precision).
    precision_bits:
        Operand precision used for the in-memory multiplications; defaults
        to the engine's configured precision.
    """

    macro: "IMCMacro | IMCChip"
    precision_bits: Optional[int] = None
    mac_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.precision_bits is None:
            self.precision_bits = self.macro.precision_bits

    # ------------------------------------------------------------------ #
    # Matmul
    # ------------------------------------------------------------------ #
    def __call__(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Integer product of activation codes (B x I) and weights (I x O)."""
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ConfigurationError("the backend expects 2-D code matrices")
        if activations.shape[1] != weights.shape[0]:
            raise ConfigurationError(
                f"shape mismatch: activations {activations.shape} x weights "
                f"{weights.shape}"
            )
        limit = mask(self.precision_bits - 1)
        if max(np.abs(activations).max(initial=0), np.abs(weights).max(initial=0)) > limit:
            raise ConfigurationError(
                f"operand magnitudes exceed the {self.precision_bits}-bit precision"
            )

        batch, inner = activations.shape
        outer = weights.shape[1]
        output = np.zeros((batch, outer), dtype=np.int64)

        # Flatten every scalar product of the matmul into one long vector of
        # unsigned magnitude multiplications executed on the macro, then put
        # the signs back and accumulate near-memory.
        magnitude_a = np.abs(activations)
        magnitude_w = np.abs(weights)
        signs = np.sign(activations)[:, :, None] * np.sign(weights)[None, :, :]

        a_flat = np.repeat(magnitude_a[:, :, None], outer, axis=2).reshape(-1)
        w_flat = np.repeat(magnitude_w[None, :, :], batch, axis=0).reshape(-1)
        products = self.macro.elementwise_array(
            Opcode.MULT, a_flat, w_flat, precision_bits=self.precision_bits
        )
        products = np.asarray(products, dtype=np.int64).reshape(batch, inner, outer)
        output = (products * signs).sum(axis=1)
        # Shape-derived count shared with NumpyIntBackend, so zero
        # activations suppressed by the sign path count exactly once.
        self.mac_count += matmul_mac_count(activations, weights)
        return output

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, float]:
        """In-memory cycles/energy accumulated by the macro so far."""
        summary = self.macro.stats.summary()
        summary["mac_count"] = float(self.mac_count)
        return summary

    def estimate_inference_cost(
        self, mac_count: int, precision_bits: Optional[int] = None
    ) -> Dict[str, float]:
        """Analytic cost of ``mac_count`` MACs without executing them.

        Uses the calibrated energy/cycle models: each MAC is one N-bit MULT
        plus one accumulate ADD at double precision.  This is how the
        examples report per-inference energy for large batches that would be
        too slow to push through the functional simulation.
        """
        bits = self.precision_bits if precision_bits is None else precision_bits
        vdd = self.macro.config.operating_point.vdd
        separator = self.macro.config.bl_separator
        mult = self.macro.energy_model.mult_energy(bits, vdd=vdd, bl_separator=separator)
        add = self.macro.energy_model.add_energy(
            min(2 * bits, 32), vdd=vdd, bl_separator=separator
        )
        mult_cycles = bits + 2
        add_cycles = 1
        slots = self.macro.mult_slots_per_row(bits)
        cycle_time = self.macro.cycle_time_s(bits)
        total_cycles = mac_count * (mult_cycles + add_cycles) / slots
        return {
            "mac_count": float(mac_count),
            "energy_j": mac_count * (mult.total_j + add.total_j),
            "cycles": total_cycles,
            "latency_s": total_cycles * cycle_time,
            "macs_per_second": (
                mac_count / (total_cycles * cycle_time) if total_cycles else 0.0
            ),
        }
