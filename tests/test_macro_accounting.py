"""Cycle, energy and latency accounting of the macro (Table I / Table II
consistency at the system level)."""

import pytest

from repro.circuits.wordline import WordlineScheme
from repro.core import IMCMacro, MacroConfig, Opcode, cycles_for
from repro.tech import OperatingPoint


class TestCycleAccounting:
    @pytest.mark.parametrize("precision", [2, 4, 8])
    def test_measured_cycles_match_table1(self, precision):
        macro = IMCMacro(MacroConfig(precision_bits=precision))
        operand = (1 << precision) - 2
        for opcode in Opcode:
            macro.reset_stats()
            if opcode.is_dual_wordline:
                macro.compute(opcode, operand, 3)
            else:
                macro.compute(opcode, operand)
            assert macro.stats.cycles_for(opcode) == cycles_for(opcode, precision)

    def test_operation_result_reports_cycles(self, macro):
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [5, 6, 7, 8])
        result = macro.execute(Opcode.ADD, 0, 1)
        assert result.cycles == 1
        result = macro.execute(Opcode.MULT, 0, 1, dest_row=2)
        assert result.cycles == 10

    def test_cycles_accumulate(self, macro):
        macro.reset_stats()
        macro.add(1, 2)
        macro.subtract(5, 3)
        macro.multiply(10, 10)
        assert macro.stats.total_cycles == 1 + 2 + 10


class TestEnergyAccounting:
    def test_energy_matches_model_per_word(self, macro):
        macro.reset_stats()
        macro.add(100, 50)
        expected = macro.energy_model.add_energy(8, vdd=0.9).total_j
        assert macro.stats.energy_for(Opcode.ADD) == pytest.approx(expected)

    def test_vector_energy_scales_with_words(self, macro):
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [5, 6, 7, 8])
        macro.reset_stats()
        macro.execute(Opcode.ADD, 0, 1)
        expected = 4 * macro.energy_model.add_energy(8, vdd=0.9).total_j
        assert macro.stats.energy_for(Opcode.ADD) == pytest.approx(expected)

    def test_bl_separator_lowers_mult_energy(self):
        with_sep = IMCMacro(MacroConfig(bl_separator=True))
        without_sep = IMCMacro(MacroConfig(bl_separator=False))
        with_sep.multiply(100, 100)
        without_sep.multiply(100, 100)
        assert (
            with_sep.stats.energy_for(Opcode.MULT)
            < without_sep.stats.energy_for(Opcode.MULT)
        )

    def test_energy_scales_with_supply(self):
        low = IMCMacro(MacroConfig(operating_point=OperatingPoint(vdd=0.6)))
        high = IMCMacro(MacroConfig(operating_point=OperatingPoint(vdd=1.1)))
        low.add(10, 20)
        high.add(10, 20)
        assert low.stats.energy_for(Opcode.ADD) < high.stats.energy_for(Opcode.ADD)

    def test_operation_result_energy_per_word(self, macro):
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [5, 6, 7, 8])
        result = macro.execute(Opcode.ADD, 0, 1)
        assert result.energy_per_word_j == pytest.approx(result.energy_j / 4)


class TestTimingAccounting:
    def test_cycle_time_matches_breakdown(self, macro):
        expected = macro.delay_model.cycle_time(
            macro.config.operating_point, precision_bits=8, bl_separator=True
        )
        assert macro.cycle_time_s() == pytest.approx(expected)

    def test_max_frequency_at_nominal(self, macro):
        # 603 ps cycle at 0.9 V NN -> ~1.66 GHz.
        assert macro.max_frequency_hz() == pytest.approx(1.66e9, rel=0.05)

    def test_latency_is_cycles_times_cycle_time(self, macro):
        result_add = macro.execute(Opcode.ADD, 0, 1)
        assert result_add.latency_s == pytest.approx(macro.cycle_time_s())
        result_mult = macro.execute(Opcode.MULT, 0, 1, dest_row=2)
        assert result_mult.latency_s == pytest.approx(10 * macro.cycle_time_s())

    def test_lower_precision_has_shorter_cycle(self, macro):
        assert macro.cycle_time_s(2) < macro.cycle_time_s(8)

    def test_low_voltage_macro_is_slower(self):
        slow = IMCMacro(MacroConfig(operating_point=OperatingPoint(vdd=0.6)))
        fast = IMCMacro(MacroConfig(operating_point=OperatingPoint(vdd=1.1)))
        assert slow.max_frequency_hz() < fast.max_frequency_hz()


class TestStatsBookkeeping:
    def test_array_accesses_tracked(self, macro):
        macro.reset_stats()
        macro.add(1, 2)
        assert macro.stats.array_accesses >= 1

    def test_reset_stats(self, macro):
        macro.add(1, 2)
        macro.reset_stats()
        assert macro.stats.total_cycles == 0
        assert macro.stats.array_accesses == 0

    def test_decoder_history_counts_dual_activations(self, macro):
        macro.reset_stats()
        macro.add(1, 2)
        assert macro.decoder.dual_activation_count >= 1

    def test_words_accounting_override(self, macro):
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [5, 6, 7, 8])
        macro.reset_stats()
        macro.execute(Opcode.ADD, 0, 1, words=2)
        assert macro.stats.words_for(Opcode.ADD) == 2


class TestReadDisturbInjection:
    def test_naive_full_static_scheme_corrupts_data(self):
        config = MacroConfig(
            wordline_scheme=WordlineScheme.FULL_STATIC,
            inject_read_disturb=True,
            seed=1,
        )
        macro = IMCMacro(config)
        corrupted = 0
        for trial in range(300):
            macro.write_word(0, 0, 0xAA)
            macro.write_word(1, 0, 0x55)
            macro.execute(Opcode.AND, 0, 1, words=1)
            if macro.read_word(0, 0) != 0xAA or macro.read_word(1, 0) != 0x55:
                corrupted += 1
        assert corrupted > 0
        assert macro.stats.disturb_events > 0

    def test_proposed_scheme_keeps_data_intact(self):
        config = MacroConfig(inject_read_disturb=True, seed=1)
        macro = IMCMacro(config)
        for trial in range(300):
            macro.write_word(0, 0, 0xAA)
            macro.write_word(1, 0, 0x55)
            macro.execute(Opcode.AND, 0, 1, words=1)
            assert macro.read_word(0, 0) == 0xAA
            assert macro.read_word(1, 0) == 0x55
