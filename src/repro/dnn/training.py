"""Plain-numpy SGD training of the float reference MLP.

Nothing fancy is needed: mini-batch SGD with momentum on a softmax
cross-entropy loss reaches ~95 % accuracy on the synthetic dataset in a few
hundred steps, which is all the precision study requires as a float
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dnn.datasets import DatasetSplit
from repro.dnn.model import MLP, _softmax
from repro.errors import ConfigurationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["TrainingResult", "train_mlp"]


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    model: MLP
    train_accuracy: float
    test_accuracy: float
    loss_history: List[float]

    @property
    def final_loss(self) -> float:
        """Loss of the final training epoch."""
        return self.loss_history[-1] if self.loss_history else float("nan")


def _one_hot(labels: np.ndarray, classes: int) -> np.ndarray:
    encoded = np.zeros((labels.size, classes), dtype=np.float64)
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


def train_mlp(
    dataset: DatasetSplit,
    hidden_sizes: tuple[int, ...] = (32, 16),
    epochs: int = 40,
    batch_size: int = 64,
    learning_rate: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainingResult:
    """Train a float MLP on a dataset split and report accuracies."""
    check_positive("epochs", epochs)
    check_positive("batch_size", batch_size)
    check_positive("learning_rate", learning_rate)
    check_in_range("momentum", momentum, 0.0, 0.999)
    if not hidden_sizes:
        raise ConfigurationError("at least one hidden layer is required")

    classes = dataset.class_count
    sizes = [dataset.feature_count, *hidden_sizes, classes]
    model = MLP.create(sizes, seed=seed)
    rng = np.random.default_rng(seed)

    velocities = [
        (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
        for layer in model.layers
    ]
    targets = _one_hot(dataset.train_y, classes)
    loss_history: List[float] = []

    for _ in range(epochs):
        order = rng.permutation(dataset.train_x.shape[0])
        epoch_losses: List[float] = []
        for start in range(0, order.size, batch_size):
            batch = order[start : start + batch_size]
            inputs = dataset.train_x[batch]
            labels = targets[batch]

            # Forward pass keeping intermediate activations.
            activations = [inputs]
            for layer in model.layers:
                activations.append(layer.forward(activations[-1]))
            probabilities = _softmax(activations[-1])
            loss = -float(
                np.mean(np.sum(labels * np.log(probabilities + 1e-12), axis=1))
            )
            epoch_losses.append(loss)

            # Backward pass.
            gradient = (probabilities - labels) / batch.size
            for index in range(len(model.layers) - 1, -1, -1):
                layer = model.layers[index]
                layer_input = activations[index]
                grad_weights = layer_input.T @ gradient
                grad_bias = gradient.sum(axis=0)
                if index > 0:
                    gradient = gradient @ layer.weights.T
                    # ReLU derivative of the previous layer's output.
                    gradient = gradient * (activations[index] > 0)
                velocity_w, velocity_b = velocities[index]
                velocity_w *= momentum
                velocity_w -= learning_rate * grad_weights
                velocity_b *= momentum
                velocity_b -= learning_rate * grad_bias
                layer.weights += velocity_w
                layer.bias += velocity_b
        loss_history.append(float(np.mean(epoch_losses)))

    return TrainingResult(
        model=model,
        train_accuracy=model.accuracy(dataset.train_x, dataset.train_y),
        test_accuracy=model.accuracy(dataset.test_x, dataset.test_y),
        loss_history=loss_history,
    )
