"""Smoke tests that execute the (fast) example scripts end to end.

The two training-heavy examples (``dnn_inference.py`` and
``cnn_pattern_classification.py``) are exercised through their underlying
APIs elsewhere in the suite; here we run the lightweight examples exactly as
a user would, to guarantee the documented entry points keep working.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "voltage_scaling_study.py",
    "signal_processing_kernels.py",
    "vector_image_processing.py",
    "serve_cnn.py",
    "cluster_serve.py",
    "gateway_serve.py",
]


def _load_module(script_name: str):
    path = EXAMPLES_DIR / script_name
    spec = importlib.util.spec_from_file_location(
        f"example_{script_name.replace('.py', '')}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_contents(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        # The README documents six examples; all must exist.
        expected = set(FAST_EXAMPLES) | {"dnn_inference.py", "cnn_pattern_classification.py"}
        assert expected.issubset(scripts)

    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_fast_example_runs(self, script, capsys):
        module = _load_module(script)
        module.main()
        output = capsys.readouterr().out
        assert len(output.splitlines()) > 5
        assert "Traceback" not in output

    def test_quickstart_prints_correct_arithmetic(self, capsys):
        module = _load_module("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "34773" in output  # 173 x 201
        assert "155" in output  # 100 + 55

    def test_vector_image_example_verifies_against_numpy(self, capsys):
        module = _load_module("vector_image_processing.py")
        module.main()
        output = capsys.readouterr().out
        assert output.count("True") >= 3
        assert "False" not in output
