"""Deterministic virtual-time fault injection for the cluster runtime.

A :class:`FaultPlan` is an immutable script of node-level failure events on
the cluster's *modeled* (virtual) clock — the same clock the router runs
admission and dispatch on — so a chaos scenario is exactly as deterministic
as the workload itself: the same trace through the same plan on the same
fleet produces the same placements, replays, latencies and ledgers, in
either execution mode.  The semantics mirror the per-device-server failure
model of distributed instrument-control stacks (a device server crashes,
its queued work is re-routed, it reconnects later):

* ``CRASH``   — the node leaves rotation; requests queued on it are
  *replayed* through the scheduler onto surviving nodes (the router's
  existing exclusion/re-placement machinery), never lost or duplicated;
* ``RECOVER`` — the node returns to rotation at full health (a crash also
  clears any degradation);
* ``STALL``   — a transient hiccup: the node stays in rotation but its
  completion clock is pushed ``duration_s`` into the future, delaying
  everything queued behind it;
* ``DEGRADE`` — thermal throttling / partial failure: the node's modeled
  compute time stretches by ``factor`` (work and energy are unchanged —
  the silicon does the same switching, slower);
* ``RESTORE`` — degradation ends (factor returns to 1.0).

Events take effect at the first router step whose virtual clock has reached
their timestamp; ties apply in plan order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    """What happens to the node when the event fires."""

    CRASH = "crash"
    RECOVER = "recover"
    STALL = "stall"
    DEGRADE = "degrade"
    RESTORE = "restore"


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault on the virtual clock."""

    at_s: float
    kind: FaultKind
    node_id: str
    #: STALL only: how long the node's completion clock is pushed forward.
    duration_s: float = 0.0
    #: DEGRADE only: modeled compute-time multiplier (>= 1 throttles).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("fault events need a non-negative at_s")
        if not self.node_id:
            raise ConfigurationError("fault events need a node_id")
        if self.kind is FaultKind.STALL and self.duration_s <= 0:
            raise ConfigurationError("STALL events need a positive duration_s")
        if self.kind is FaultKind.DEGRADE and self.factor <= 0:
            raise ConfigurationError("DEGRADE events need a positive factor")


class FaultPlan:
    """An ordered, immutable schedule of fault events.

    The plan itself holds no cursor — the router keeps its own progress —
    so one plan can be replayed against many fleets (the fidelity benches
    run the identical plan through EXACT and ANALYTIC fleets).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = list(events)
        for event in ordered:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(f"not a FaultEvent: {event!r}")
        # Stable sort: simultaneous events keep their scripted order.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(ordered, key=lambda event: event.at_s)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def node_crash(
        cls,
        node_id: str,
        at_s: float,
        recover_at_s: Optional[float] = None,
    ) -> "FaultPlan":
        """A single crash (with optional scripted recovery)."""
        events = [FaultEvent(at_s=at_s, kind=FaultKind.CRASH, node_id=node_id)]
        if recover_at_s is not None:
            if recover_at_s <= at_s:
                raise ConfigurationError("recovery must follow the crash")
            events.append(
                FaultEvent(at_s=recover_at_s, kind=FaultKind.RECOVER, node_id=node_id)
            )
        return cls(events)

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """The union of two plans (events interleaved by timestamp)."""
        return FaultPlan(self.events + other.events)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def events_for(self, node_id: str) -> List[FaultEvent]:
        """The plan restricted to one node."""
        return [event for event in self.events if event.node_id == node_id]

    def downtime_s(self, node_ids: Sequence[str], span_s: float) -> Dict[str, float]:
        """Scripted per-node downtime over ``[0, span_s]``.

        Crash-to-recovery intervals (open crashes run to the span end) plus
        stall durations; the scripted-availability denominator of
        reliability studies.  Degradation is slow, not down, and does not
        count.
        """
        if span_s < 0:
            raise ConfigurationError("span_s must be non-negative")
        downtime = {node_id: 0.0 for node_id in node_ids}
        down_since: Dict[str, float] = {}
        for event in self.events:
            if event.node_id not in downtime or event.at_s > span_s:
                continue
            if event.kind is FaultKind.CRASH:
                down_since.setdefault(event.node_id, event.at_s)
            elif event.kind is FaultKind.RECOVER:
                started = down_since.pop(event.node_id, None)
                if started is not None:
                    downtime[event.node_id] += event.at_s - started
            elif event.kind is FaultKind.STALL:
                downtime[event.node_id] += min(event.duration_s, span_s - event.at_s)
        for node_id, started in down_since.items():
            downtime[node_id] += span_s - started
        return downtime

    def availability(self, node_ids: Sequence[str], span_s: float) -> float:
        """Scripted fleet availability: 1 - downtime over node-time."""
        if not node_ids or span_s <= 0:
            return 1.0
        downtime = self.downtime_s(node_ids, span_s)
        return 1.0 - sum(downtime.values()) / (span_s * len(node_ids))
