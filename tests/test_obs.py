"""Tests for the ``repro.obs`` observability layer.

Covers the metrics registry (counter/gauge/histogram semantics, label
children, NaN rejection, snapshot round-trips, collectors, dual
timestamps), the span tracer (deterministic sampling, the standard
request span tree), the exposition renderers and the CLI report, plus
the ``percentile_summary`` edge cases and the histogram merge
associativity property the registry docstring promises.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import ClusterNode, ClusterRouter, SLAClass
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn
from repro.gateway.protocol import percentile_summary
from repro.obs import (
    Histogram,
    MetricError,
    MetricsRegistry,
    Tracer,
    render_json,
    render_prometheus,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.__main__ import render_report
from repro.obs.registry import SNAPSHOT_SCHEMA
from repro.reliability import ChipBinner


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_tolerated(self):
        # The gateway's zero-loss accounting occasionally takes a
        # count back, so negative increments must not raise.
        registry = MetricsRegistry()
        counter = registry.counter("staged_total")
        counter.inc(3.0)
        counter.inc(-1.0)
        assert counter.value == 2.0

    def test_nan_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("bad_total")
        with pytest.raises(MetricError, match="NaN"):
            counter.inc(float("nan"))


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(7.0)
        gauge.inc(-2.0)
        assert gauge.value == 5.0

    def test_nan_rejected(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("bad_depth")
        with pytest.raises(MetricError, match="NaN"):
            gauge.set(float("nan"))


class TestHistogram:
    def test_basic_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds").labels()
        for value in (0.5, 1.0, 2.0, 4.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(7.5)
        assert histogram.min == 0.5
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(7.5 / 4)

    def test_zero_samples_get_their_own_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("zeros_seconds").labels()
        histogram.record(0.0)
        histogram.record(0.0)
        assert histogram.zero_count == 2
        assert histogram.buckets == {}
        assert histogram.quantile(0.5) == 0.0

    def test_nan_and_negative_rejected(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("strict_seconds").labels()
        with pytest.raises(MetricError, match="NaN"):
            histogram.record(float("nan"))
        with pytest.raises(MetricError, match=">= 0"):
            histogram.record(-1.0)

    def test_record_many_matches_scalar_path(self):
        registry = MetricsRegistry()
        scalar = registry.histogram("scalar_seconds").labels()
        batch = registry.histogram("batch_seconds").labels()
        values = [0.0, 0.001, 0.01, 0.1, 1.0, 10.0, 0.01]
        for value in values:
            scalar.record(value)
        batch.record_many(np.asarray(values))
        assert batch.buckets == scalar.buckets
        assert batch.zero_count == scalar.zero_count
        assert batch.count == scalar.count
        assert batch.sum == pytest.approx(scalar.sum)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert batch.quantile(q) == scalar.quantile(q)

    def test_record_many_rejects_nan_and_negative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("batch_strict_seconds").labels()
        with pytest.raises(MetricError, match="NaN"):
            histogram.record_many([1.0, float("nan")])
        with pytest.raises(MetricError, match=">= 0"):
            histogram.record_many([1.0, -0.5])
        assert histogram.count == 0

    def test_record_many_empty_is_noop(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("empty_seconds").labels()
        histogram.record_many([])
        assert histogram.count == 0
        assert histogram.wall_s is None

    def test_quantile_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("clamp_seconds").labels()
        histogram.record(3.0)
        # One sample: every positive quantile is that sample (bucket
        # edge is clamped to the observed min/max).
        assert histogram.quantile(0.5) == 3.0
        assert histogram.quantile(1.0) == 3.0

    def test_quantile_domain_checked(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("domain_seconds").labels()
        with pytest.raises(MetricError, match="quantile"):
            histogram.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("void_seconds").labels()
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean == 0.0

    def test_merge_requires_matching_grid(self):
        clock = lambda: None  # noqa: E731 - trivial stand-in clock
        coarse = Histogram({}, clock, buckets_per_octave=4)
        fine = Histogram({}, clock, buckets_per_octave=8)
        with pytest.raises(MetricError, match="bucket grids"):
            coarse.merge(fine)


class TestRegistry:
    def test_declare_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", labelnames=("node",))
        second = registry.counter("hits_total", labelnames=("node",))
        assert first is second

    def test_redeclare_with_other_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("shape_total")
        with pytest.raises(MetricError, match="already declared"):
            registry.gauge("shape_total")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("bad-name")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("typed_total", labelnames=("sla",))
        with pytest.raises(MetricError, match="do not match"):
            family.labels(node="n0")
        with pytest.raises(MetricError, match="declares labels"):
            family.inc()

    def test_label_children_are_distinct_series(self):
        registry = MetricsRegistry()
        family = registry.counter("routed_total", labelnames=("sla", "node"))
        family.labels(sla="latency", node="n0").inc(2)
        family.labels(sla="throughput", node="n1").inc(5)
        assert family.labels(sla="latency", node="n0").value == 2
        assert family.labels(sla="throughput", node="n1").value == 5
        assert len(family.samples()) == 2

    def test_virtual_clock_stamps_samples(self):
        clock = {"now": 12.5}
        registry = MetricsRegistry(virtual_clock=lambda: clock["now"])
        counter = registry.counter("timed_total").labels()
        counter.inc()
        assert counter.virtual_s == 12.5
        assert counter.wall_s is not None
        clock["now"] = 99.0
        counter.inc()
        assert counter.virtual_s == 99.0

    def test_virtual_clock_attached_later(self):
        registry = MetricsRegistry()
        counter = registry.counter("late_total").labels()
        counter.inc()
        assert counter.virtual_s is None
        registry.set_virtual_clock(lambda: 3.0)
        counter.inc()
        assert counter.virtual_s == 3.0
        assert registry.snapshot()["virtual_time_s"] == 3.0

    def test_collectors_run_at_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("residency_generation")
        registry.register_collector(lambda r: gauge.set(gauge.value + 1.0))
        registry.snapshot()
        registry.snapshot()
        assert gauge.value == 2.0

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry(virtual_clock=lambda: 42.0)
        registry.counter("req_total", labelnames=("sla",)).labels(sla="latency").inc(7)
        registry.gauge("depth").set(3.0)
        histogram = registry.histogram("lat_seconds", buckets_per_octave=4)
        histogram.record_many([0.01, 0.1, 1.0])
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        # The snapshot must be JSON-safe verbatim.
        restored = MetricsRegistry.from_snapshot(json.loads(json.dumps(snapshot)))
        assert restored.get("req_total").labels(sla="latency").value == 7
        assert restored.get("depth").value == 3.0
        rebuilt = restored.get("lat_seconds").labels()
        assert rebuilt.count == 3
        assert rebuilt.buckets_per_octave == 4
        assert rebuilt.quantile(0.5) == histogram.labels().quantile(0.5)

    def test_merge_snapshot_adds_counters_overwrites_gauges(self):
        worker_a = MetricsRegistry()
        worker_a.counter("jobs_total").inc(3)
        worker_a.gauge("depth").set(1.0)
        worker_b = MetricsRegistry()
        worker_b.counter("jobs_total").inc(4)
        worker_b.gauge("depth").set(9.0)
        worker_a.merge_snapshot(worker_b.snapshot())
        assert worker_a.get("jobs_total").value == 7
        assert worker_a.get("depth").value == 9.0

    def test_merge_snapshot_rejects_wrong_schema(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="schema"):
            registry.merge_snapshot({"schema": "other/9", "metrics": {}})


class TestTracer:
    def test_should_sample_is_modular_arithmetic(self):
        tracer = Tracer(sample_every=8)
        sampled = [i for i in range(32) if tracer.should_sample(i)]
        assert sampled == [0, 8, 16, 24]

    def test_sample_every_zero_disables(self):
        tracer = Tracer(sample_every=0)
        assert not any(tracer.should_sample(i) for i in range(100))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=-1)
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_emit_request_builds_standard_tree(self):
        tracer = Tracer(sample_every=1)
        root_id = tracer.emit_request(
            request_id=1024,
            node_id="node-0",
            arrival_s=1.0,
            start_s=1.5,
            finish_s=2.5,
            compute_s=0.75,
            sla="latency",
        )
        spans = tracer.spans_for(1024)
        assert [s.name for s in spans] == [
            "admission",
            "schedule",
            "dispatch",
            "engine.charge",
        ]
        admission, schedule, dispatch, charge = spans
        assert admission.span_id == root_id
        assert admission.parent_id is None
        assert schedule.parent_id == admission.span_id
        assert dispatch.parent_id == schedule.span_id
        assert charge.parent_id == dispatch.span_id
        # Admission covers the queue; engine.charge is the compute tail.
        assert admission.duration_virtual_s == pytest.approx(0.5)
        assert dispatch.duration_virtual_s == pytest.approx(1.0)
        assert charge.start_virtual_s == pytest.approx(1.75)
        assert admission.attrs["sla"] == "latency"
        assert tracer.sampled_requests == 1

    def test_span_ids_deterministic_across_runs(self):
        def run():
            tracer = Tracer(sample_every=1)
            for request_id in range(5):
                tracer.emit_request(request_id, "n0", 0.0, 0.1, 0.2, 0.1)
            return [s.span_id for s in tracer.spans]

        assert run() == run()

    def test_max_spans_evicts_oldest(self):
        tracer = Tracer(sample_every=1, max_spans=4)
        tracer.emit_request(0, "n0", 0.0, 0.1, 0.2, 0.1)
        tracer.emit_request(1, "n0", 0.0, 0.1, 0.2, 0.1)
        assert len(tracer.spans) == 4
        assert all(span.trace_id == 1 for span in tracer.spans)

    def test_wall_spans_round_trip(self):
        tracer = Tracer(sample_every=1)
        span = tracer.start_span("gateway.accept", trace_id=7, peer="client-1")
        tracer.end_span(span, virtual_s=2.0)
        (kept,) = tracer.spans_for(7)
        assert kept.start_wall_s is not None
        assert kept.end_wall_s >= kept.start_wall_s
        assert kept.end_virtual_s == 2.0
        assert kept.to_dict()["attrs"] == {"peer": "client-1"}
        assert tracer.to_dicts() == [kept.to_dict()]


def _sample_snapshot() -> dict:
    registry = MetricsRegistry(virtual_clock=lambda: 60.0)
    requests = registry.counter(
        "cluster_requests_total", "requests", labelnames=("sla", "node")
    )
    requests.labels(sla="latency", node="node-0").inc(10)
    energy = registry.counter(
        "cluster_energy_joules_total", "energy", labelnames=("sla", "node")
    )
    energy.labels(sla="latency", node="node-0").inc(0.25)
    images = registry.counter(
        "cluster_images_total", "images", labelnames=("sla", "node")
    )
    images.labels(sla="latency", node="node-0").inc(20)
    latency = registry.histogram(
        "cluster_request_latency_seconds", "latency", labelnames=("sla", "node")
    )
    latency.labels(sla="latency", node="node-0").record_many([0.01, 0.02, 0.04])
    registry.gauge("gateway_queue_depth", "queue").set(3.0)
    return registry.snapshot()


class TestRenderers:
    def test_prometheus_counters_and_gauges(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE cluster_requests_total counter" in text
        assert 'cluster_requests_total{sla="latency",node="node-0"} 10' in text
        assert "gateway_queue_depth 3" in text
        assert "obs_virtual_time_seconds 60" in text

    def test_prometheus_histogram_series(self):
        text = render_prometheus(_sample_snapshot())
        assert 'cluster_request_latency_seconds_bucket{sla="latency"' in text
        assert 'le="+Inf"} 3' in text
        assert 'cluster_request_latency_seconds_count{sla="latency",node="node-0"} 3' in text
        # Bucket series are cumulative: counts never decrease.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("cluster_request_latency_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labelnames=("kind",)).labels(
            kind='quo"te\\slash'
        ).inc()
        text = render_prometheus(registry.snapshot())
        assert 'kind="quo\\"te\\\\slash"' in text

    def test_render_json_is_stable(self):
        snapshot = _sample_snapshot()
        text = render_json(snapshot)
        assert json.loads(text)["schema"] == SNAPSHOT_SCHEMA
        assert text == render_json(json.loads(text))

    def test_report_lists_series_and_gateway(self):
        report = render_report(_sample_snapshot())
        assert "latency" in report
        assert "node-0" in report
        assert "queue=3" in report

    def test_report_on_empty_snapshot(self):
        report = render_report(MetricsRegistry().snapshot())
        assert "no cluster request series" in report


class TestCli:
    def test_report_subcommand(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(_sample_snapshot()), encoding="utf-8")
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out
        assert "node-0" in out

    def test_report_subcommand_json_format(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(_sample_snapshot()), encoding="utf-8")
        assert obs_main(["report", str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == SNAPSHOT_SCHEMA

    def test_tail_rejects_bad_target(self, capsys):
        assert obs_main(["tail", "not-an-address"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestPercentileSummary:
    def test_empty_sample_is_all_zeros(self):
        summary = percentile_summary([])
        assert summary == {
            "count": 0,
            "p50_s": 0.0,
            "p99_s": 0.0,
            "p999_s": 0.0,
            "max_s": 0.0,
        }

    def test_single_sample_collapses_every_percentile(self):
        summary = percentile_summary([0.125])
        assert summary["count"] == 1
        assert summary["p50_s"] == 0.125
        assert summary["p99_s"] == 0.125
        assert summary["p999_s"] == 0.125
        assert summary["max_s"] == 0.125

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile_summary([0.1, float("nan"), 0.2])

    def test_percentiles_ordered(self):
        summary = percentile_summary([i / 1000.0 for i in range(1, 101)])
        assert summary["p50_s"] <= summary["p99_s"] <= summary["p999_s"]
        assert summary["p999_s"] <= summary["max_s"] == 0.1


# Latency-shaped positive floats spanning ~9 octaves, plus exact zeros.
_samples = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-4, max_value=64.0, allow_nan=False),
    ),
    max_size=40,
)


def _fold(chunks) -> Histogram:
    """Fold sample chunks into one histogram, in the order given."""
    merged = Histogram({}, lambda: None)
    for chunk in chunks:
        part = Histogram({}, lambda: None)
        part.record_many(chunk)
        merged.merge(part)
    return merged


class TestMergeProperty:
    """The registry docstring's pinned property: merge order never
    changes what a histogram reports."""

    @given(a=_samples, b=_samples, c=_samples)
    def test_merge_associative_and_commutative(self, a, b, c):
        orders = [(a, b, c), (c, a, b), (b, c, a), (c, b, a)]
        reference = _fold(orders[0])
        for order in orders[1:]:
            other = _fold(order)
            assert other.buckets == reference.buckets
            assert other.zero_count == reference.zero_count
            assert other.count == reference.count
            assert other.sum == pytest.approx(reference.sum)
            for q in (0.0, 0.5, 0.9, 0.99, 1.0):
                assert other.quantile(q) == reference.quantile(q)

    @given(a=_samples, b=_samples)
    def test_merge_matches_single_pass(self, a, b):
        merged = _fold((a, b))
        single = Histogram({}, lambda: None)
        single.record_many(list(a) + list(b))
        assert merged.buckets == single.buckets
        assert merged.count == single.count
        for q in (0.5, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    @given(values=_samples)
    def test_snapshot_merge_reconstructs_quantiles(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("prop_seconds").labels()
        histogram.record_many(values)
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot()))
        ).get("prop_seconds").labels()
        assert restored.count == histogram.count
        if values:
            assert restored.min == histogram.min
            assert restored.max == histogram.max
        else:
            assert math.isinf(restored.min)
        for q in (0.5, 0.99):
            assert restored.quantile(q) == histogram.quantile(q)


class TestClusterInstrumentation:
    """The cluster ends up in the registry: folds, collectors, spans.

    Exercises the ``metrics=`` / ``tracer=`` wiring end-to-end on a real
    two-node router — the fold-side request series, the scrape-time
    collectors (scheduler policy, serve counters, node state, bin
    gauges) and the retro-emitted span trees.
    """

    @pytest.fixture(scope="class")
    def observed(self):
        dataset = make_pattern_image_dataset(samples=90, size=8)
        model, _ = train_pattern_cnn(dataset, epochs=6, seed=0)
        chip_bin = ChipBinner(seed=2020, samples=256).bin_chip(0)
        registry = MetricsRegistry()
        tracer = Tracer(sample_every=1)
        nodes = [
            ClusterNode("n0", vdd=1.0, num_macros=16, bin=chip_bin),
            ClusterNode("n1", vdd=0.7, num_macros=16),
        ]
        router = ClusterRouter(nodes, metrics=registry, tracer=tracer)
        router.register_model("m", model)
        for start in range(0, 6, 2):
            router.submit(
                "m", dataset.test_images[start : start + 2], sla=SLAClass.THROUGHPUT
            )
        router.submit(
            "m", dataset.test_images[:1], sla=SLAClass.LATENCY, deadline_s=10.0
        )
        router.drain()
        return router, registry, tracer, registry.snapshot()

    def test_request_series_fold_to_submitted_totals(self, observed):
        router, registry, _, snap = observed
        series = snap["metrics"]["cluster_requests_total"]["samples"]
        assert sum(s["value"] for s in series) == 4.0
        assert {s["labels"]["sla"] for s in series} <= {"latency", "throughput"}
        assert {s["labels"]["node"] for s in series} <= {"n0", "n1"}
        images = snap["metrics"]["cluster_images_total"]["samples"]
        assert sum(s["value"] for s in images) == 7.0
        latency = registry.get("cluster_request_latency_seconds")
        assert sum(s.count for s in latency.samples()) == 4
        assert snap["metrics"]["cluster_energy_joules_total"]["samples"]

    def test_collector_publishes_runtime_and_clock(self, observed):
        router, _, _, snap = observed
        metrics = snap["metrics"]
        assert snap["virtual_time_s"] == router.clock_s
        assert metrics["cluster_virtual_clock_seconds"]["samples"][0]["value"] == (
            router.clock_s
        )
        assert metrics["cluster_queue_depth"]["samples"][0]["value"] == 0.0
        assert metrics["cluster_admissions_total"]["samples"][0]["value"] == 4.0
        assert metrics["cluster_drains_total"]["samples"][0]["value"] >= 1.0

    def test_scheduler_policy_gauges_match_policy(self, observed):
        router, _, _, snap = observed
        series = snap["metrics"]["scheduler_policy"]["samples"]
        published = {s["labels"]["param"]: s["value"] for s in series}
        assert published == router.scheduler.policy()

    def test_serve_counters_per_node_and_model(self, observed):
        router, _, _, snap = observed
        metrics = snap["metrics"]
        images = metrics["serve_images_total"]["samples"]
        assert all(s["labels"]["model"] == "m" for s in images)
        assert sum(s["value"] for s in images) == 7.0
        batches = metrics["serve_batches_total"]["samples"]
        assert sum(s["value"] for s in batches) >= 4.0
        pending = metrics["serve_pending_images"]["samples"]
        assert all(s["value"] == 0.0 for s in pending)

    def test_node_state_and_bin_gauges(self, observed):
        router, _, _, snap = observed
        metrics = snap["metrics"]
        active = {
            s["labels"]["node"]: s["value"]
            for s in metrics["node_active"]["samples"]
        }
        assert active == {"n0": 1.0, "n1": 1.0}
        assert metrics["node_weight_cache_misses_total"]["samples"]
        # Only n0 is binned; its silicon grade is exposed per field.
        binned = router.nodes[0].bin
        for field, value in binned.metric_summary().items():
            series = metrics[f"node_bin_{field}"]["samples"]
            assert [s["labels"]["node"] for s in series] == ["n0"]
            assert series[0]["value"] == value

    def test_spans_emitted_for_every_sampled_request(self, observed):
        _, _, tracer, _ = observed
        assert tracer.sampled_requests == 4
        roots = [s for s in tracer.spans if s.name == "admission"]
        assert len(roots) == 4
        names = {s.name for s in tracer.spans}
        assert {"admission", "schedule", "dispatch", "engine.charge"} <= names

    def test_snapshot_survives_merge_round_trip(self, observed):
        _, _, _, snap = observed
        clone = MetricsRegistry()
        clone.merge_snapshot(json.loads(json.dumps(snap)))
        reread = clone.snapshot()

        def series(snapshot):
            # Timestamps re-stamp on merge; the data must not change.
            return [
                (s["labels"]["sla"], s["labels"]["node"], s["value"])
                for s in snapshot["metrics"]["cluster_requests_total"]["samples"]
            ]

        assert series(reread) == series(snap)
