"""Asyncio TCP gateway multiplexing wire clients onto a ClusterRouter.

:class:`GatewayServer` is the event-driven, non-threaded serving front end
(one event loop, no worker threads — the CCP-interpreter concurrency model
from PAPERS.md translated to asyncio):

* every client connection is one reader coroutine feeding an incremental
  :class:`~repro.gateway.protocol.FrameDecoder`;
* validated requests land in a *bounded* admission queue — when it is
  full the client gets an immediate ``BUSY`` frame carrying a
  ``retry_after_s`` hint instead of unbounded buffering (explicit
  backpressure, the zero-loss contract: every request is answered with
  RESPONSE, ERROR or BUSY, nothing is silently dropped);
* a single dispatcher coroutine drains the admission queue in bounded
  batches through :meth:`ClusterRouter.submit` / ``drain`` — adjacent
  same-model requests coalesce inside the router — and streams each
  response back on its own connection, yielding to the loop between
  batches so admission and I/O never starve;
* writes go through ``await writer.drain()``, so a slow reader throttles
  its own response stream via the transport's flow control instead of
  growing server buffers;
* :meth:`drain_and_stop` is the graceful shutdown: new work is refused
  with ``BUSY {"draining": true}``, everything already admitted completes
  and is flushed, every connection gets a ``DRAIN`` frame, then sockets
  close.

Protocol revision 3 adds the resilience surface:

* **deadline budgets / load shedding** — a request carrying ``budget_s``
  (remaining wall-clock budget, stamped by the client) is *shed* with
  ``ERROR {"code": "shed"}`` the moment the budget is provably blown:
  at admission when it arrives already expired, and again at dispatch
  when queueing ate what was left.  Shedding at dispatch is the useful
  half — work the caller has already abandoned never reaches the router;
* **CANCEL** — unwinds a queued-but-undispatched request: the target gets
  ``ERROR {"code": "cancelled"}``, the CANCEL op gets an ack with
  ``cancelled`` true/false (false = already dispatched, result still
  coming);
* **HEALTH** — live/ready/draining probe for supervisors and load
  balancers, answered from the reader coroutine even while dispatch is
  saturated;
* **idle timeout** — a connection that stays silent for
  ``idle_timeout_s`` with no outstanding work is closed with
  ``ERROR {"code": "idle_timeout"}``, so dead peers cannot pin
  connection state forever (slow-loris defence);
* **admission journal** — an optional
  :class:`~repro.gateway.journal.AdmissionJournal` records every
  admission and terminal outcome, so a restart after a crash reports
  exactly which acknowledged requests were lost
  (``python -m repro.gateway.journal``).

:class:`ThreadedGateway` hosts the server loop in a daemon thread for
synchronous callers (tests, benchmarks, the example scripts); its
:meth:`~ThreadedGateway.kill` is the supervised-restart drill's abrupt
stop — no drain, no farewell frames, no final journal fsync.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections.abc import MutableMapping
from typing import Awaitable, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster import ClusterRouter, SLAClass
from repro.errors import ConfigurationError
from repro.gateway.journal import AdmissionJournal
from repro.gateway.protocol import (
    FrameDecoder,
    FrameType,
    MAX_PAYLOAD_BYTES,
    ProtocolError,
    decode_images,
    encode_frame,
    images_digest,
)
from repro.obs import MetricsRegistry, Tracer

__all__ = ["GatewayServer", "ThreadedGateway"]

#: Wire names of the SLA classes, straight from the enum values.
_SLA_BY_WIRE = {sla.value: sla for sla in SLAClass}


class _Connection:
    """Per-connection state: the writer, a decoder, and send accounting."""

    __slots__ = ("reader", "writer", "decoder", "open", "peer")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_payload: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_payload=max_payload)
        self.open = True
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"


#: Wire stats keys → help text; each is backed by a registry counter
#: named ``gateway_<key>_total``, the single source both ``snapshot()``
#: and the METRICS scrape read (so the two can never drift).
_STATS_KEYS = {
    "connections_opened": "Client connections accepted.",
    "connections_closed": "Client connections torn down.",
    "frames_received": "Well-formed frames decoded off the wire.",
    "requests_received": "REQUEST frames seen (admitted or refused).",
    "requests_admitted": "REQUEST frames accepted into the admission queue.",
    "responses_sent": "RESPONSE frames delivered to live peers.",
    "responses_dropped": "Responses computed for peers that vanished.",
    "busy_sent": "BUSY backpressure frames sent.",
    "errors_sent": "ERROR frames sent.",
    "malformed_frames": "Framing violations (connection closed).",
    "pings": "PING frames answered.",
    "bytes_received": "Raw bytes read off client sockets.",
    "bytes_sent": "Raw frame bytes written to client sockets.",
    "shed_sent": "Requests shed for an expired deadline budget.",
    "cancels_received": "CANCEL frames received.",
    "requests_cancelled": "Admitted requests unwound by CANCEL before dispatch.",
    "health_checks": "HEALTH frames answered.",
    "idle_timeouts": "Connections closed for exceeding the idle timeout.",
}


class _RegistryStats(MutableMapping):
    """The gateway's stats dict, backed by registry counters.

    Keeps every ``stats["key"] += 1`` call site (and the existing test
    assertions on integer values) working while making the registry the
    one source of truth: ``snapshot()``, the wire ``STATS`` reply and a
    ``METRICS`` scrape all read the same counters.
    """

    __slots__ = ("_families",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self._families = {
            key: registry.counter(f"gateway_{key}_total", help_text)
            for key, help_text in _STATS_KEYS.items()
        }

    def __getitem__(self, key: str) -> int:
        return int(self._families[key].value)

    def __setitem__(self, key: str, value: int) -> None:
        family = self._families[key]
        delta = float(value) - family.value
        if delta:
            family.inc(delta)

    def __delitem__(self, key: str) -> None:
        raise TypeError("gateway stats keys are fixed")

    def __iter__(self) -> Iterator[str]:
        return iter(self._families)

    def __len__(self) -> int:
        return len(self._families)


class _Pending:
    """One admitted request waiting for its router result."""

    __slots__ = ("connection", "wire_id", "router_id", "parsed")

    def __init__(
        self, connection: _Connection, wire_id, router_id: int, parsed: dict
    ) -> None:
        self.connection = connection
        self.wire_id = wire_id
        self.router_id = router_id
        self.parsed = parsed


class GatewayServer:
    """Length-prefixed-JSON TCP front end for a :class:`ClusterRouter`.

    The server owns no models and no fleet — it translates frames into
    admissions on the router it is given and router results back into
    frames.  All router interaction happens on the event loop from the
    single dispatcher coroutine, so the (synchronous, single-threaded)
    router never sees concurrent calls.

    Args:
        router: The cluster router requests are admitted to.  Models must
            already be registered.
        host: Interface to bind (loopback by default).
        port: TCP port; 0 picks a free port (read :attr:`port` after
            :meth:`start`).
        max_queue: Bound of the admission queue; a request arriving while
            it is full is refused with a ``BUSY`` frame.
        admission_batch: Most requests the dispatcher admits+drains per
            cycle before yielding to the event loop.
        max_payload_bytes: Per-frame payload cap for this server.
        min_retry_after_s: Floor of the ``retry_after_s`` hint in ``BUSY``
            frames.
        metrics: Observability registry answering the wire ``METRICS``
            scrape; one is created when omitted.  The router is attached
            to it (cluster metric families, virtual clock) unless it
            already carries its own instrumentation.
        tracer: Span tracer; one is created (with ``sample_every``) when
            omitted.
        sample_every: Deterministic trace sampling rate for the default
            tracer (trace one request in this many; 0 disables).
        idle_timeout_s: Close a connection after this many seconds with
            no bytes arriving *and* no outstanding admitted work (``None``
            disables — the pre-revision-3 behaviour).
        journal: Crash-safety journal — an
            :class:`~repro.gateway.journal.AdmissionJournal`, or a path
            one is opened at.  ``None`` (default) journals nothing.
    """

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 1024,
        admission_batch: int = 128,
        max_payload_bytes: int = MAX_PAYLOAD_BYTES,
        min_retry_after_s: float = 0.01,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        sample_every: int = 1024,
        idle_timeout_s: Optional[float] = None,
        journal=None,
    ) -> None:
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if admission_batch < 1:
            raise ConfigurationError("admission_batch must be >= 1")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ConfigurationError("idle_timeout_s must be positive (or None)")
        self.router = router
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.admission_batch = admission_batch
        self.max_payload_bytes = max_payload_bytes
        self.min_retry_after_s = min_retry_after_s
        self.idle_timeout_s = idle_timeout_s
        if journal is None or isinstance(journal, AdmissionJournal):
            self.journal = journal
        else:
            self.journal = AdmissionJournal(journal)
        #: Decoded image tensors by content digest (the ``images_ref``
        #: cache).  Bounded only by distinct payloads seen; an operator
        #: restarts the gateway to flush it (documented in OPERATIONS.md).
        self._images_by_ref: Dict[str, np.ndarray] = {}
        self._admission: List[Tuple[_Connection, dict]] = []
        self._pending: List[_Pending] = []
        self._dispatch_wakeup: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: List[_Connection] = []
        self._draining = False
        self._paused = False
        #: Exponential moving average of per-request service time, the
        #: basis of the ``retry_after_s`` backpressure hint.
        self._service_time_ema_s = 0.001
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(sample_every)
        if getattr(router, "_obs", None) is None:
            from repro.cluster.instrumentation import attach_cluster_observability

            attach_cluster_observability(router, self.metrics, tracer=self.tracer)
        if getattr(router, "tracer", None) is None:
            router.tracer = self.tracer
        self.stats: MutableMapping = _RegistryStats(self.metrics)
        self._ema_gauge = self.metrics.gauge(
            "gateway_service_time_ema_seconds",
            "EMA of per-request wall service time (retry_after basis).",
        )
        self._retry_gauge = self.metrics.gauge(
            "gateway_retry_after_seconds",
            "The retry_after_s hint a BUSY frame would carry right now.",
        )
        self._queue_gauge = self.metrics.gauge(
            "gateway_queue_depth",
            "Admitted-but-unanswered requests (admission + in flight).",
        )
        self._queue_limit_gauge = self.metrics.gauge(
            "gateway_queue_limit", "Bound of the admission queue."
        )
        self._queue_limit_gauge.set(float(max_queue))
        self.metrics.register_collector(self._collect_gauges)

    def _collect_gauges(self, _registry: MetricsRegistry) -> None:
        """Scrape-time collector: live queue/backpressure state."""
        self._ema_gauge.set(self._service_time_ema_s)
        self._retry_gauge.set(self._retry_after_s())
        self._queue_gauge.set(float(len(self._admission) + len(self._pending)))
        self._queue_limit_gauge.set(float(self.max_queue))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher.

        Raises:
            OSError: If the bind fails (port in use, bad interface).
        """
        self._dispatch_wakeup = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher_task = asyncio.ensure_future(self._dispatcher())

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: refuse new work, finish admitted work, close.

        New ``REQUEST`` frames arriving during the drain are answered with
        ``BUSY {"draining": true}``.  Once the admission queue and the
        in-flight batch are empty, every connection receives a ``DRAIN``
        frame and is closed, then the listener stops.
        """
        self._draining = True
        self._paused = False
        if self._server is not None:
            self._server.close()
        while self._admission or self._pending:
            self._dispatch_wakeup.set()
            await asyncio.sleep(0)
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
        farewell = encode_frame(
            FrameType.DRAIN,
            {
                "reason": "shutdown",
                "completed": self.stats["responses_sent"],
            },
        )
        for connection in list(self._connections):
            if connection.open:
                try:
                    connection.writer.write(farewell)
                    await connection.writer.drain()
                except (ConnectionError, RuntimeError):
                    pass
            await self._close_connection(connection)
        # One tick for reader coroutines to observe their closed sockets
        # and finish, so stopping the loop does not strand pending tasks.
        await asyncio.sleep(0)
        if self._server is not None:
            await self._server.wait_closed()
        if self.journal is not None:
            # Graceful drains leave a fully reconciled journal: every
            # admitted request has a terminal record, and the tail batch
            # is fsynced by close().
            self.journal.close()

    def pause_dispatch(self) -> None:
        """Hold the dispatcher (admissions keep queueing until ``BUSY``).

        A test/operations knob: with dispatch paused, offered load beyond
        ``max_queue`` is refused with ``BUSY`` frames, which is how the
        backpressure drills produce a deterministic overload.
        """
        self._paused = True

    def resume_dispatch(self) -> None:
        """Release a :meth:`pause_dispatch` hold.

        Safe to call from any thread: the wakeup is marshalled onto the
        server's loop with ``call_soon_threadsafe`` — a plain
        ``Event.set()`` from a foreign thread would not interrupt a loop
        blocked in ``select()``, leaving queued admissions stranded until
        unrelated I/O happened to arrive.
        """
        self._paused = False
        if self._loop is not None and self._dispatch_wakeup is not None:
            self._loop.call_soon_threadsafe(self._dispatch_wakeup.set)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Reader loop of one client connection."""
        connection = _Connection(reader, writer, self.max_payload_bytes)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Response frames are small; without NODELAY, Nagle + delayed
            # ACK would add 40 ms stalls to every tail percentile.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._connections.append(connection)
        self.stats["connections_opened"] += 1
        try:
            while True:
                if self.idle_timeout_s is None:
                    chunk = await reader.read(64 * 1024)
                else:
                    try:
                        chunk = await asyncio.wait_for(
                            reader.read(64 * 1024), self.idle_timeout_s
                        )
                    except asyncio.TimeoutError:
                        # A silent peer with admitted work in flight is a
                        # pipelining client waiting on its responses, not
                        # a dead one — only truly idle connections close.
                        if self._has_outstanding(connection):
                            continue
                        self.stats["idle_timeouts"] += 1
                        await self._send_error(
                            connection,
                            None,
                            "idle_timeout",
                            f"no frames for {self.idle_timeout_s}s; closing",
                        )
                        break
                if not chunk:
                    break
                self.stats["bytes_received"] += len(chunk)
                try:
                    for frame_type, payload in connection.decoder.feed(chunk):
                        self.stats["frames_received"] += 1
                        await self._handle_frame(connection, frame_type, payload)
                except ProtocolError as error:
                    self.stats["malformed_frames"] += 1
                    await self._send_error(connection, None, "malformed_frame", str(error))
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_connection(connection)

    def _has_outstanding(self, connection: _Connection) -> bool:
        """Whether any admitted or in-flight request belongs to this peer."""
        return any(owner is connection for owner, _ in self._admission) or any(
            entry.connection is connection for entry in self._pending
        )

    async def _close_connection(self, connection: _Connection) -> None:
        """Tear one connection down idempotently."""
        if not connection.open:
            return
        connection.open = False
        self.stats["connections_closed"] += 1
        if connection in self._connections:
            self._connections.remove(connection)
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def _send(self, connection: _Connection, frame: bytes) -> bool:
        """Write one frame with flow control; False if the peer is gone.

        ``await writer.drain()`` is the slow-reader throttle: a client
        that stops reading blocks only its own response stream (this
        coroutine), never the dispatcher or other connections.
        """
        if not connection.open:
            return False
        try:
            connection.writer.write(frame)
            self.stats["bytes_sent"] += len(frame)
            await connection.writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            await self._close_connection(connection)
            return False

    async def _send_error(
        self, connection: _Connection, wire_id, code: str, message: str
    ) -> None:
        """Send one ERROR frame (counted)."""
        self.stats["errors_sent"] += 1
        await self._send(
            connection,
            encode_frame(
                FrameType.ERROR, {"id": wire_id, "code": code, "message": message}
            ),
        )

    # ------------------------------------------------------------------ #
    # Frame handling
    # ------------------------------------------------------------------ #
    async def _handle_frame(
        self, connection: _Connection, frame_type: FrameType, payload: dict
    ) -> None:
        """Route one decoded frame to its handler."""
        if frame_type is FrameType.REQUEST:
            await self._handle_request(connection, payload)
        elif frame_type is FrameType.PING:
            self.stats["pings"] += 1
            await self._send(
                connection,
                encode_frame(FrameType.PONG, {"id": payload.get("id")}),
            )
        elif frame_type is FrameType.STATS:
            await self._send(
                connection,
                encode_frame(
                    FrameType.STATS,
                    {"id": payload.get("id"), "stats": self.snapshot()},
                ),
            )
        elif frame_type is FrameType.METRICS:
            await self._send(
                connection,
                encode_frame(
                    FrameType.METRICS,
                    {"id": payload.get("id"), "snapshot": self.metrics.snapshot()},
                ),
            )
        elif frame_type is FrameType.CANCEL:
            await self._handle_cancel(connection, payload)
        elif frame_type is FrameType.HEALTH:
            await self._handle_health(connection, payload)
        else:
            await self._send_error(
                connection,
                payload.get("id"),
                "bad_request",
                f"frame type {frame_type.name} is not valid client -> server",
            )

    async def _handle_cancel(self, connection: _Connection, payload: dict) -> None:
        """Unwind one queued-but-undispatched request of this connection.

        The CANCEL op carries its own ``id`` plus the ``target_id`` of the
        request to unwind, so the ack and the target's terminal ERROR
        never collide on one wire id.  A request already handed to the
        router is past the point of no return: the ack reports
        ``cancelled: false`` and the result (or its error) still arrives.
        """
        self.stats["cancels_received"] += 1
        target_id = payload.get("target_id")
        cancelled = False
        for index, (owner, parsed) in enumerate(self._admission):
            if owner is connection and parsed["id"] == target_id:
                del self._admission[index]
                cancelled = True
                self.stats["requests_cancelled"] += 1
                self._journal_done(parsed, "cancelled")
                await self._send_error(
                    connection,
                    target_id,
                    "cancelled",
                    "request cancelled before dispatch",
                )
                break
        await self._send(
            connection,
            encode_frame(
                FrameType.CANCEL,
                {
                    "id": payload.get("id"),
                    "target_id": target_id,
                    "cancelled": cancelled,
                },
            ),
        )

    async def _handle_health(self, connection: _Connection, payload: dict) -> None:
        """Answer a HEALTH probe from the reader coroutine (never queued).

        States: ``draining`` (shutdown under way — stop sending work),
        ``live`` (up but not accepting: dispatch paused or queue full),
        ``ready`` (accepting work).
        """
        self.stats["health_checks"] += 1
        depth = len(self._admission) + len(self._pending)
        if self._draining:
            state = "draining"
        elif self._paused or depth >= self.max_queue:
            state = "live"
        else:
            state = "ready"
        await self._send(
            connection,
            encode_frame(
                FrameType.HEALTH,
                {
                    "id": payload.get("id"),
                    "state": state,
                    "queue_depth": depth,
                    "queue_limit": self.max_queue,
                    "draining": self._draining,
                },
            ),
        )

    async def _handle_request(self, connection: _Connection, payload: dict) -> None:
        """Validate one REQUEST and admit it (or answer BUSY/ERROR)."""
        wire_id = payload.get("id")
        self.stats["requests_received"] += 1
        if self._draining or len(self._admission) + len(self._pending) >= self.max_queue:
            self.stats["busy_sent"] += 1
            await self._send(
                connection,
                encode_frame(
                    FrameType.BUSY,
                    {
                        "id": wire_id,
                        "retry_after_s": self._retry_after_s(),
                        "queue_depth": len(self._admission) + len(self._pending),
                        "queue_limit": self.max_queue,
                        "draining": self._draining,
                    },
                ),
            )
            return
        try:
            parsed = self._parse_request(payload)
        except ProtocolError as error:
            await self._send_error(connection, wire_id, "bad_request", str(error))
            return
        except KeyError as error:
            await self._send_error(
                connection,
                wire_id,
                "unknown_images_ref",
                f"images_ref {error.args[0]!r} has not been seen by this server",
            )
            return
        if parsed["budget_s"] is not None and parsed["budget_s"] <= 0.0:
            # The budget expired in flight: the caller has already given
            # up, so executing would burn cluster time on a dead request.
            # Shed before admission — never journaled, never queued.
            self.stats["shed_sent"] += 1
            await self._send_error(
                connection,
                wire_id,
                "shed",
                f"deadline budget {parsed['budget_s']}s already expired at admission",
            )
            return
        self.stats["requests_admitted"] += 1
        # Wall stamp of the accept, so the sampled gateway.accept span can
        # be emitted retroactively once the router id is known.
        parsed["_accept_wall_s"] = time.time()
        if parsed["budget_s"] is not None:
            parsed["_deadline_wall_s"] = parsed["_accept_wall_s"] + parsed["budget_s"]
        self._journal_admit(parsed)
        self._admission.append((connection, parsed))
        self._dispatch_wakeup.set()

    def _journal_admit(self, parsed: dict) -> None:
        """Record one admission in the journal (when one is attached)."""
        if self.journal is not None:
            parsed["_jid"] = self.journal.record_admitted(
                parsed["model_id"], parsed["images_ref"], wire_id=parsed["id"]
            )

    def _journal_done(self, parsed: dict, status: str) -> None:
        """Record one terminal outcome in the journal (when attached)."""
        if self.journal is not None and "_jid" in parsed:
            self.journal.record_done(parsed["_jid"], status)

    def _parse_request(self, payload: dict) -> dict:
        """Decode and validate a REQUEST payload into submit() kwargs.

        Raises:
            ProtocolError: On schema violations.
            KeyError: On an ``images_ref`` this server has never decoded.
        """
        if "model_id" not in payload or not isinstance(payload["model_id"], str):
            raise ProtocolError("request needs a string model_id")
        sla_name = payload.get("sla", SLAClass.BEST_EFFORT.value)
        if sla_name not in _SLA_BY_WIRE:
            raise ProtocolError(
                f"unknown sla {sla_name!r} (one of {sorted(_SLA_BY_WIRE)})"
            )
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and (
            not isinstance(deadline_s, (int, float)) or deadline_s <= 0
        ):
            raise ProtocolError("deadline_s must be a positive number")
        # budget_s is the *wall-clock* budget the client has left, distinct
        # from deadline_s (the modeled virtual-time SLA deadline).  Zero or
        # negative is legal on the wire — it means "already expired", which
        # admission answers with a shed, not a schema error.
        budget_s = payload.get("budget_s")
        if budget_s is not None and (
            isinstance(budget_s, bool)
            or not isinstance(budget_s, (int, float))
            or budget_s != budget_s  # NaN
        ):
            raise ProtocolError("budget_s must be a finite number")
        has_images = "images" in payload
        has_ref = "images_ref" in payload
        if has_images == has_ref:
            raise ProtocolError("request needs exactly one of images / images_ref")
        if has_images:
            images = decode_images(payload["images"])
            ref = images_digest(images)
            self._images_by_ref.setdefault(ref, images)
        else:
            ref = payload["images_ref"]
            if not isinstance(ref, str):
                raise ProtocolError("images_ref must be a string digest")
            images = self._images_by_ref[ref]  # KeyError -> unknown_images_ref
        return {
            "id": payload.get("id"),
            "model_id": payload["model_id"],
            "sla": _SLA_BY_WIRE[sla_name],
            "deadline_s": float(deadline_s) if deadline_s is not None else None,
            "budget_s": float(budget_s) if budget_s is not None else None,
            "images": images,
            "images_ref": ref,
            "echo_ref": has_images,
        }

    def _retry_after_s(self) -> float:
        """Backpressure hint: modeled time to clear half the queue."""
        backlog = len(self._admission) + len(self._pending)
        return max(self.min_retry_after_s, 0.5 * backlog * self._service_time_ema_s)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _dispatcher(self) -> None:
        """The single dispatcher coroutine: admission queue -> router -> wire."""
        while True:
            await self._dispatch_wakeup.wait()
            self._dispatch_wakeup.clear()
            while self._admission and not self._paused:
                await self._dispatch_batch()
                # Yield: let readers admit / refuse while results stream out.
                await asyncio.sleep(0)

    async def _dispatch_batch(self) -> None:
        """Admit one bounded batch into the router, drain it, respond."""
        batch = self._admission[: self.admission_batch]
        del self._admission[: len(batch)]
        started = time.perf_counter()
        now_wall_s = time.time()
        for connection, parsed in batch:
            deadline_wall_s = parsed.get("_deadline_wall_s")
            if deadline_wall_s is not None and now_wall_s > deadline_wall_s:
                # Queueing ate the budget: the caller timed out while this
                # request waited, so dispatching it would be pure waste.
                self.stats["shed_sent"] += 1
                self._journal_done(parsed, "shed")
                await self._send_error(
                    connection,
                    parsed["id"],
                    "shed",
                    "deadline budget expired while queued",
                )
                continue
            try:
                router_id = self.router.submit(
                    parsed["model_id"],
                    parsed["images"],
                    sla=parsed["sla"],
                    deadline_s=parsed["deadline_s"],
                    input_digest=parsed["images_ref"],
                )
            except ConfigurationError as error:
                self._journal_done(parsed, "error")
                await self._send_error(
                    connection, parsed["id"], "bad_request", str(error)
                )
                continue
            self._pending.append(
                _Pending(connection, parsed["id"], router_id, parsed)
            )
        self._drain_router()
        pending, self._pending = self._pending, []
        touched = []
        for entry in pending:
            if self._respond_nodrain(entry) and entry.connection not in touched:
                touched.append(entry.connection)
        # One flow-control flush per connection per batch (not per frame):
        # a slow reader still throttles its own stream here, but a healthy
        # batch costs one drain instead of admission_batch of them.
        for connection in touched:
            try:
                await connection.writer.drain()
            except (ConnectionError, RuntimeError):
                await self._close_connection(connection)
        if pending:
            span = time.perf_counter() - started
            per_request = span / len(pending)
            self._service_time_ema_s += 0.2 * (per_request - self._service_time_ema_s)

    def _drain_router(self) -> None:
        """Drain the router's backlog, tolerating per-dispatch failures.

        A dispatch that raises marks its requests failed (the router's
        contract) and leaves the rest queued; looping until the queue is
        empty guarantees every admitted request reaches a terminal state,
        which :meth:`_respond` then reports as RESPONSE or ERROR.
        """
        while self.router.queue_depth():
            try:
                self.router.drain()
            except Exception:  # noqa: BLE001 - re-raised per request by result()
                continue

    def _write_nodrain(self, connection: _Connection, frame: bytes) -> bool:
        """Buffer one frame on a connection without awaiting flow control.

        The per-batch drain in :meth:`_dispatch_batch` applies the
        backpressure; this just stages bytes.  Returns False when the
        peer is already gone.
        """
        if not connection.open:
            return False
        try:
            connection.writer.write(frame)
            self.stats["bytes_sent"] += len(frame)
            return True
        except (ConnectionError, RuntimeError):
            return False

    def _respond_nodrain(self, entry: _Pending) -> bool:
        """Stage the terminal frame (RESPONSE or ERROR) of one admission.

        Returns:
            True when bytes were staged on a live connection (the caller
            owes that connection a drain).
        """
        try:
            result = self.router.result(entry.router_id)
        except ConfigurationError as error:
            self.stats["errors_sent"] += 1
            self._journal_done(entry.parsed, "error")
            return self._write_nodrain(
                entry.connection,
                encode_frame(
                    FrameType.ERROR,
                    {"id": entry.wire_id, "code": "internal", "message": str(error)},
                ),
            )
        except Exception as error:  # noqa: BLE001 - the dispatch failure, per contract
            self.stats["errors_sent"] += 1
            self._journal_done(entry.parsed, "error")
            return self._write_nodrain(
                entry.connection,
                encode_frame(
                    FrameType.ERROR,
                    {
                        "id": entry.wire_id,
                        "code": "execution_failed",
                        "message": str(error),
                    },
                ),
            )
        trace = result.trace
        payload = {
            "id": entry.wire_id,
            "request_id": entry.router_id,
            "predictions": np.asarray(result.predictions).tolist(),
            "trace": {
                "model_id": trace.model_id,
                "node_id": trace.node_id,
                "sla": trace.sla,
                "latency_s": trace.latency_s,
                "compute_s": trace.compute_s,
                "energy_j": trace.energy_j,
                "deadline_missed": bool(trace.deadline_missed),
                "execution_mode": trace.execution_mode,
                "coalesced": int(trace.coalesced),
                "replayed": bool(trace.replayed),
            },
        }
        if entry.parsed.get("echo_ref"):
            payload["images_ref"] = entry.parsed["images_ref"]
        accept_span = None
        if self.tracer.should_sample(entry.router_id):
            # The wall-clock legs of the span tree: gateway.accept covers
            # socket arrival to result availability, response.write the
            # frame staging.  Same trace id as the modeled-time spans the
            # cluster emitted for this request.
            accept_span = self.tracer.start_span(
                "gateway.accept", entry.router_id, sla=trace.sla
            )
            accept_span.start_wall_s = entry.parsed.get(
                "_accept_wall_s", accept_span.start_wall_s
            )
            self.tracer.end_span(accept_span)
            write_span = self.tracer.start_span(
                "response.write", entry.router_id, parent=accept_span
            )
        # Count before writing: the socket send releases the GIL, so a
        # client thread could otherwise observe its response (and read a
        # snapshot) before this coroutine reaches the increment.
        self.stats["responses_sent"] += 1
        if self._write_nodrain(
            entry.connection, encode_frame(FrameType.RESPONSE, payload)
        ):
            if accept_span is not None:
                self.tracer.end_span(write_span)
            self._journal_done(entry.parsed, "responded")
            return True
        # The client vanished mid-request: the work was still done and
        # accounted (zero-loss means *answered or knowingly dropped at a
        # closed socket*, never silently lost in a queue).
        self.stats["responses_sent"] -= 1
        self.stats["responses_dropped"] += 1
        self._journal_done(entry.parsed, "dropped")
        return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """Counters answering the wire ``STATS`` query.

        Returns:
            Gateway counters (read from the metrics registry — the same
            source a ``METRICS`` scrape renders, so the two cannot
            drift) plus the router's conservation numerators
            (``router_completed``, ``router_failed``), the live
            ``queue_depth`` / ``queue_limit`` / ``draining`` state, and
            the backpressure signals ``service_time_ema_s`` /
            ``retry_after_s``.
        """
        snapshot: Dict[str, float] = dict(self.stats)
        snapshot["queue_depth"] = len(self._admission) + len(self._pending)
        snapshot["queue_limit"] = self.max_queue
        snapshot["draining"] = bool(self._draining)
        snapshot["service_time_ema_s"] = self._service_time_ema_s
        snapshot["retry_after_s"] = self._retry_after_s()
        snapshot["router_completed"] = self.router.completed_requests
        snapshot["router_failed"] = self.router.failed_requests
        if self.journal is not None:
            snapshot["journal_records_written"] = self.journal.records_written
            snapshot["journal_fsyncs"] = self.journal.fsyncs
        return snapshot


class ThreadedGateway:
    """Host a :class:`GatewayServer` event loop in a daemon thread.

    The synchronous harness around the async server: benchmarks, tests and
    examples start it, talk to ``(host, port)`` with the client SDK, and
    stop it.  The router is handed over to the gateway thread and must not
    be used concurrently from the starting thread while serving.

    Args:
        router: The cluster router to serve (models registered).
        **server_kwargs: Forwarded to :class:`GatewayServer`.
    """

    def __init__(self, router: ClusterRouter, **server_kwargs) -> None:
        self.server = GatewayServer(router, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def start(self, timeout_s: float = 10.0) -> Tuple[str, int]:
        """Start the loop thread; returns the bound ``(host, port)``.

        Args:
            timeout_s: Seconds to wait for the socket to bind.

        Raises:
            RuntimeError: If the server does not come up within the
                timeout.
        """
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("gateway server failed to start in time")
        return self.server.host, self.server.port

    def _run(self) -> None:
        """Thread body: a fresh event loop running the server forever."""
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            # Settle whatever the stop left behind so closing the loop
            # never destroys a pending task.  Readers are given a moment
            # to observe their closed/aborted transports and exit on
            # their own first — cancelling a streams client task outright
            # trips asyncio.streams' done callback into logging a
            # spurious CancelledError on this Python; only stragglers
            # get cancelled.
            pending = asyncio.all_tasks(self._loop)
            if pending:
                self._loop.run_until_complete(asyncio.wait(pending, timeout=1.0))
                stragglers = [task for task in pending if not task.done()]
                for task in stragglers:
                    task.cancel()
                if stragglers:
                    self._loop.run_until_complete(
                        asyncio.gather(*stragglers, return_exceptions=True)
                    )
            self._loop.close()

    def call(self, factory: Callable[[], Awaitable], timeout_s: float = 30.0):
        """Run one coroutine on the gateway loop and return its result.

        Args:
            factory: Zero-argument callable building the coroutine (built
                on the gateway loop's thread).
            timeout_s: Seconds to wait for completion.

        Returns:
            Whatever the coroutine returns.
        """
        future = asyncio.run_coroutine_threadsafe(factory(), self._loop)
        return future.result(timeout_s)

    def stop(self, timeout_s: float = 30.0) -> None:
        """Gracefully drain the server and join the loop thread.

        Args:
            timeout_s: Seconds to wait for the drain and the join.
        """
        if self._loop is None:
            return
        self.call(self.server.drain_and_stop, timeout_s=timeout_s)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self._loop = None

    def kill(self, timeout_s: float = 10.0) -> None:
        """Abrupt stop: the supervised-restart drill's simulated crash.

        No drain, no DRAIN farewell, no final journal fsync: connections
        are aborted mid-flight, the dispatcher is cancelled wherever it
        stands, and the journal is abandoned — admitted-but-unanswered
        requests stay *unreconciled* on disk, exactly what
        :meth:`AdmissionJournal.recover` exists to report after the
        restart.

        Args:
            timeout_s: Seconds to wait for the loop thread to die.
        """
        if self._loop is None:
            return

        def _abort() -> None:
            for connection in list(self.server._connections):
                connection.open = False
                transport = connection.writer.transport
                if transport is not None:
                    transport.abort()
            if self.server._server is not None:
                self.server._server.close()
            if self.server._dispatcher_task is not None:
                self.server._dispatcher_task.cancel()
            if self.server.journal is not None:
                self.server.journal.abandon()
            self._loop.stop()

        self._loop.call_soon_threadsafe(_abort)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self._loop = None

    def __enter__(self) -> "ThreadedGateway":
        """Start on entry; the instance is the context value."""
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Stop on exit (graceful drain)."""
        self.stop()
