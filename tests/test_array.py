"""Unit tests for the SRAM array functional model (repro.core.array)."""

import numpy as np
import pytest

from repro.core.array import ArraySpace, RowRef, SRAMArray
from repro.errors import AddressError, ConfigurationError


@pytest.fixture()
def array():
    return SRAMArray(rows=16, cols=16, dummy_rows=3)


def _cols(*indices):
    return np.array(indices, dtype=np.int64)


class TestRowRef:
    def test_constructors(self):
        assert RowRef.main(3).space is ArraySpace.MAIN
        assert RowRef.dummy(1).space is ArraySpace.DUMMY
        assert RowRef.dummy(1).is_dummy is True
        assert RowRef.main(0).is_dummy is False


class TestStorage:
    def test_write_read_bits(self, array):
        array.write_bits(RowRef.main(2), _cols(0, 3, 5), np.array([1, 0, 1]))
        assert array.read_bits(RowRef.main(2), _cols(0, 3, 5)).tolist() == [1, 0, 1]

    def test_dummy_rows_are_separate(self, array):
        array.write_bits(RowRef.main(0), _cols(0), np.array([1]))
        assert array.read_bits(RowRef.dummy(0), _cols(0)).tolist() == [0]

    def test_row_read_write(self, array):
        pattern = np.arange(16) % 2
        array.write_row(RowRef.main(5), pattern)
        assert array.read_row(RowRef.main(5)).tolist() == pattern.tolist()

    def test_row_write_shape_checked(self, array):
        with pytest.raises(ConfigurationError):
            array.write_row(RowRef.main(0), np.zeros(4, dtype=np.uint8))

    def test_out_of_range_row_rejected(self, array):
        with pytest.raises(AddressError):
            array.read_row(RowRef.main(99))
        with pytest.raises(AddressError):
            array.read_row(RowRef.dummy(3))

    def test_out_of_range_column_rejected(self, array):
        with pytest.raises(AddressError):
            array.read_bits(RowRef.main(0), _cols(16))

    def test_empty_column_list_rejected(self, array):
        with pytest.raises(AddressError):
            array.read_bits(RowRef.main(0), np.array([], dtype=np.int64))

    def test_non_binary_bits_rejected(self, array):
        with pytest.raises(ConfigurationError):
            array.write_bits(RowRef.main(0), _cols(0), np.array([2]))

    def test_clear(self, array):
        array.write_row(RowRef.main(1), np.ones(16, dtype=np.uint8))
        array.write_row(RowRef.dummy(1), np.ones(16, dtype=np.uint8))
        array.clear()
        assert array.read_row(RowRef.main(1)).sum() == 0
        assert array.read_row(RowRef.dummy(1)).sum() == 0

    def test_capacity(self, array):
        assert array.capacity_bits == 256


class TestBitlineComputing:
    def test_single_wordline_returns_data_and_complement(self, array):
        array.write_bits(RowRef.main(0), _cols(0, 1, 2), np.array([1, 0, 1]))
        output = array.single_wordline_access(RowRef.main(0), _cols(0, 1, 2))
        assert output.and_bits.tolist() == [1, 0, 1]
        assert output.nor_bits.tolist() == [0, 1, 0]
        assert output.dual_wordline is False

    def test_dual_wordline_and_nor_semantics(self, array):
        # Truth table of Fig. 1: BLT stays high only when both cells hold 1,
        # BLB stays high only when both hold 0.
        array.write_bits(RowRef.main(0), _cols(0, 1, 2, 3), np.array([0, 0, 1, 1]))
        array.write_bits(RowRef.main(1), _cols(0, 1, 2, 3), np.array([0, 1, 0, 1]))
        output = array.dual_wordline_access(RowRef.main(0), RowRef.main(1), _cols(0, 1, 2, 3))
        assert output.and_bits.tolist() == [0, 0, 0, 1]
        assert output.nor_bits.tolist() == [1, 0, 0, 0]
        assert output.or_bits.tolist() == [0, 1, 1, 1]
        assert output.xor_bits.tolist() == [0, 1, 1, 0]
        assert output.dual_wordline is True

    def test_dual_wordline_with_dummy_row(self, array):
        array.write_bits(RowRef.main(0), _cols(0), np.array([1]))
        array.write_bits(RowRef.dummy(1), _cols(0), np.array([1]))
        output = array.dual_wordline_access(RowRef.main(0), RowRef.dummy(1), _cols(0))
        assert output.and_bits.tolist() == [1]

    def test_dual_wordline_same_row_rejected(self, array):
        with pytest.raises(ConfigurationError):
            array.dual_wordline_access(RowRef.main(0), RowRef.main(0), _cols(0))

    def test_access_counter(self, array):
        array.single_wordline_access(RowRef.main(0), _cols(0))
        array.dual_wordline_access(RowRef.main(0), RowRef.main(1), _cols(0))
        assert array.access_count == 2

    def test_no_disturb_by_default(self, array):
        array.write_bits(RowRef.main(0), _cols(0, 1), np.array([1, 0]))
        array.write_bits(RowRef.main(1), _cols(0, 1), np.array([0, 1]))
        for _ in range(20):
            array.dual_wordline_access(RowRef.main(0), RowRef.main(1), _cols(0, 1))
        assert array.disturb_events == 0
        assert array.read_bits(RowRef.main(0), _cols(0, 1)).tolist() == [1, 0]

    def test_disturb_injection_flips_disagreeing_cells(self):
        array = SRAMArray(rows=4, cols=8, dummy_rows=3, rng=np.random.default_rng(1))
        array.write_row(RowRef.main(0), np.ones(8, dtype=np.uint8))
        array.write_row(RowRef.main(1), np.zeros(8, dtype=np.uint8))
        array.dual_wordline_access(
            RowRef.main(0), RowRef.main(1), np.arange(8), disturb_probability=1.0
        )
        # With probability 1 every exposed cell flips.
        assert array.disturb_events == 16
        assert array.read_row(RowRef.main(0)).sum() == 0
        assert array.read_row(RowRef.main(1)).sum() == 8

    def test_disturb_does_not_affect_agreeing_cells(self):
        array = SRAMArray(rows=4, cols=8, dummy_rows=3, rng=np.random.default_rng(1))
        array.write_row(RowRef.main(0), np.ones(8, dtype=np.uint8))
        array.write_row(RowRef.main(1), np.ones(8, dtype=np.uint8))
        array.dual_wordline_access(
            RowRef.main(0), RowRef.main(1), np.arange(8), disturb_probability=1.0
        )
        assert array.disturb_events == 0
        assert array.read_row(RowRef.main(0)).sum() == 8
