"""Fig. 9 — cycles per operation vs bit-line count, proposed bit-parallel
macro vs the bit-serial baseline [2].

The proposed side runs an actual 8-bit workload through the functional macro
at every BL size (128-1024 columns); the conventional side runs the same
workload through the bit-serial functional model.  See EXPERIMENTS.md for the
parallelism assumptions behind the comparison.
"""

from repro.analysis import experiments
from repro.analysis.report import format_table


def _render(result) -> str:
    rows = []
    for op_name in ("ADD", "SUB", "MULT"):
        for bl_size in sorted(result[op_name]):
            entry = result[op_name][bl_size]
            rows.append(
                [
                    op_name,
                    bl_size,
                    entry["proposed"],
                    entry["conventional"],
                    entry["ratio"],
                ]
            )
    return format_table(
        ["operation", "BL size", "proposed [cyc/op]", "bit-serial [cyc/op]", "ratio"],
        rows,
        title=(
            "Fig. 9 — cycles/operation vs BL size (8-bit); paper ratios: "
            "ADD 0.38-0.16, SUB 0.23-0.08, MULT 1.19-0.19"
        ),
    )


def test_fig9_cycles_vs_blsize(benchmark, reporter):
    result = benchmark.pedantic(
        experiments.fig9_cycles_vs_blsize, rounds=1, iterations=1
    )
    reporter("Figure 9 — cycles per operation vs BL size", _render(result))
    for op_name, per_size in result.items():
        ratios = [per_size[size]["ratio"] for size in sorted(per_size)]
        assert all(a > b for a, b in zip(ratios, ratios[1:])), op_name
    assert result["MULT"][1024]["ratio"] < 0.5
