"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything produced by this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
(operation-level) problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object (technology profile, macro geometry, precision
    setting, ...) is inconsistent or out of the supported range."""


class OperandError(ReproError):
    """An operand value or address does not fit the requested bit-precision or
    lies outside the addressed array."""


class AddressError(OperandError):
    """A row/column/word address is outside the array geometry."""


class PrecisionError(ConfigurationError):
    """The requested bit-precision is not supported by the current
    reconfiguration state of the macro."""


class DisturbanceError(ReproError):
    """Raised when a read-disturb event corrupts stored data and the macro is
    configured to treat disturbances as fatal."""


class SequencerError(ReproError):
    """The multi-cycle micro-sequencer was driven with an illegal sequence of
    micro-operations (e.g. write-back before a BL computation)."""


class CalibrationError(ConfigurationError):
    """A calibrated technology constant is missing or non-physical."""
