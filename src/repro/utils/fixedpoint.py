"""Fixed-point formats used by the DNN evaluation layer.

The paper motivates reconfigurable bit-precision with machine-learning
inference; the DNN layer quantises weights/activations to 2/4/8-bit integers
before mapping them onto the IMC macro.  This module defines the symmetric
fixed-point format used for that quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bitops import from_twos_complement, to_twos_complement

__all__ = ["FixedPointFormat", "quantize_value", "dequantize_value"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A symmetric signed fixed-point format.

    Attributes
    ----------
    width:
        Total number of bits, including the sign bit.
    scale:
        Real value represented by one least-significant bit.
    """

    width: int
    scale: float

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ConfigurationError(
                f"fixed-point width must be at least 2 bits, got {self.width}"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"fixed-point scale must be > 0, got {self.scale}")

    @property
    def min_code(self) -> int:
        """Most negative representable integer code (symmetric: -(2^(w-1)-1))."""
        return -((1 << (self.width - 1)) - 1)

    @property
    def max_code(self) -> int:
        """Most positive representable integer code."""
        return (1 << (self.width - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.min_code * self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.max_code * self.scale

    @classmethod
    def for_tensor(cls, tensor: np.ndarray, width: int) -> "FixedPointFormat":
        """Choose a scale so that the absolute maximum of ``tensor`` maps onto
        the largest representable code."""
        abs_max = float(np.max(np.abs(tensor))) if tensor.size else 0.0
        if abs_max == 0.0:
            abs_max = 1.0
        max_code = (1 << (width - 1)) - 1
        return cls(width=width, scale=abs_max / max_code)

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Quantise a float tensor to integer codes (numpy int64 array)."""
        codes = np.rint(np.asarray(tensor, dtype=np.float64) / self.scale)
        return np.clip(codes, self.min_code, self.max_code).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def encode(self, value: float) -> int:
        """Quantise a scalar and return its two's-complement bit pattern."""
        code = int(self.quantize(np.asarray([value]))[0])
        return to_twos_complement(code, self.width)

    def decode(self, pattern: int) -> float:
        """Decode a two's-complement bit pattern back to a real value."""
        return from_twos_complement(pattern, self.width) * self.scale


def quantize_value(value: float, fmt: FixedPointFormat) -> int:
    """Quantise a single real value to an integer code in ``fmt``."""
    return int(fmt.quantize(np.asarray([value]))[0])


def dequantize_value(code: int, fmt: FixedPointFormat) -> float:
    """Convert an integer code in ``fmt`` back to its real value."""
    return code * fmt.scale
