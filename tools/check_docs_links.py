"""Check that internal documentation links resolve.

Scans every tracked Markdown file for:

* inline links ``[text](target)`` and ``[text](target#anchor)`` whose
  target is a repository-relative or document-relative path — the file
  must exist, and when an anchor is given the target document must
  contain a heading whose GitHub slug matches it;
* bare in-document anchors ``[text](#anchor)``;
* wiki-style refs ``[[name]]`` — ``name`` (with ``.md`` appended when
  absent) must exist next to the referring file or under ``docs/``.

External schemes (``http(s)``, ``mailto``) and code spans/fences are
ignored.  Exit status is the number of broken references (0 = clean),
so CI can run it directly.

Usage::

    python tools/check_docs_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
WIKIREF_RE = re.compile(r"\[\[([^\]\n]+)\]\]")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`\n]*`")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Directories never scanned (third-party or generated content).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules", ".venv"}


def github_slug(heading: str) -> str:
    """Return the GitHub anchor slug for a heading's text.

    Mirrors GitHub's slugger: strip formatting, lowercase, drop anything
    that is not a word character, space or hyphen, then hyphenate spaces.
    """
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> List[Path]:
    """Every Markdown file under ``root``, skipping noise directories."""
    found = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            found.append(path)
    return found


def strip_code(lines: Iterable[str]) -> List[str]:
    """Blank out fenced code blocks and inline code spans."""
    stripped: List[str] = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            stripped.append("")
            continue
        stripped.append("" if in_fence else CODE_SPAN_RE.sub("", line))
    return stripped


def heading_slugs(path: Path) -> Set[str]:
    """The set of anchor slugs offered by a Markdown document."""
    slugs: Set[str] = set()
    counts: dict = {}
    for line in strip_code(path.read_text(encoding="utf-8").splitlines()):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub de-duplicates repeated headings with -1, -2, … suffixes.
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path, root: Path) -> List[str]:
    """Return a list of human-readable problems found in one document."""
    problems: List[str] = []
    lines = strip_code(path.read_text(encoding="utf-8").splitlines())

    def resolve(target: str) -> Path:
        if target.startswith("/"):
            return (root / target.lstrip("/")).resolve()
        return (path.parent / target).resolve()

    for lineno, line in enumerate(lines, start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            base, _, anchor = target.partition("#")
            if not base:  # in-document anchor
                if anchor and anchor not in heading_slugs(path):
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"no heading for anchor #{anchor}"
                    )
                continue
            dest = resolve(base)
            if not dest.exists():
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: broken link {target}"
                )
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in heading_slugs(dest):
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"{base} has no heading for anchor #{anchor}"
                    )
        for match in WIKIREF_RE.finditer(line):
            name = match.group(1).strip()
            candidates = [name] if name.endswith(".md") else [name, name + ".md"]
            if not any(
                (base_dir / candidate).exists()
                for candidate in candidates
                for base_dir in (path.parent, root, root / "docs")
            ):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"unresolved [[{name}]] reference"
                )
    return problems


def main(argv: List[str]) -> int:
    """Scan the tree and print problems; exit code = problem count."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files = markdown_files(root)
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} markdown files: "
        f"{len(problems)} broken reference(s)"
    )
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
