"""Bit-exact correctness of every macro operation, checked against the
reference ALU at every supported precision."""

import random

import pytest

from repro.baselines.reference import ReferenceALU
from repro.core import IMCMacro, MacroConfig, Opcode
from repro.errors import ConfigurationError, OperandError


LOGIC_OPS = (Opcode.AND, Opcode.NAND, Opcode.OR, Opcode.NOR, Opcode.XOR, Opcode.XNOR)


@pytest.fixture(scope="module")
def shared_macro():
    """One macro shared by the exhaustive sweeps in this module."""
    return IMCMacro()


class TestScalarCorrectness:
    @pytest.mark.parametrize("precision", [2, 4, 8])
    def test_exhaustive_2bit_random_other_precisions(self, shared_macro, precision):
        """2-bit ops are checked exhaustively; wider precisions use random
        sampling against the reference ALU."""
        macro = shared_macro
        macro.set_precision(precision)
        alu = ReferenceALU(precision)
        rng = random.Random(precision)
        if precision == 2:
            pairs = [(a, b) for a in range(4) for b in range(4)]
        else:
            pairs = [
                (rng.randrange(0, 1 << precision), rng.randrange(0, 1 << precision))
                for _ in range(12)
            ]
        for a, b in pairs:
            for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MULT, *LOGIC_OPS):
                assert macro.compute(opcode, a, b) == alu.evaluate(opcode, a, b), (
                    opcode,
                    precision,
                    a,
                    b,
                )

    @pytest.mark.parametrize("precision", [2, 4, 8])
    def test_single_operand_operations(self, shared_macro, precision):
        macro = shared_macro
        macro.set_precision(precision)
        alu = ReferenceALU(precision)
        rng = random.Random(precision + 100)
        values = range(4) if precision == 2 else [
            rng.randrange(0, 1 << precision) for _ in range(10)
        ]
        for a in values:
            for opcode in (Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT):
                assert macro.compute(opcode, a) == alu.evaluate(opcode, a)

    def test_add_shift(self, shared_macro):
        macro = shared_macro
        macro.set_precision(8)
        alu = ReferenceALU(8)
        for a, b in ((3, 5), (100, 60), (255, 255), (0, 0)):
            assert macro.compute(Opcode.ADD_SHIFT, a, b) == alu.evaluate(
                Opcode.ADD_SHIFT, a, b
            )

    def test_mult_full_product_width(self, shared_macro):
        macro = shared_macro
        macro.set_precision(8)
        assert macro.multiply(255, 255) == 65025
        assert macro.multiply(0, 123) == 0
        assert macro.multiply(1, 200) == 200

    def test_convenience_wrappers(self, shared_macro):
        macro = shared_macro
        macro.set_precision(8)
        assert macro.add(200, 100) == 44  # modulo 256
        assert macro.subtract(5, 10) == 251  # two's complement wrap
        assert macro.multiply(12, 12) == 144

    def test_16_bit_precision(self):
        macro = IMCMacro(MacroConfig(precision_bits=16))
        alu = ReferenceALU(16)
        rng = random.Random(16)
        for _ in range(5):
            a, b = rng.randrange(1 << 16), rng.randrange(1 << 16)
            assert macro.add(a, b) == alu.evaluate(Opcode.ADD, a, b)
            assert macro.subtract(a, b) == alu.evaluate(Opcode.SUB, a, b)
            assert macro.multiply(a, b) == a * b


class TestVectorExecution:
    def test_vector_add_processes_all_words(self, macro):
        macro.set_precision(8)
        values_a = [10, 20, 30, 40]
        values_b = [1, 2, 3, 4]
        macro.write_words(5, values_a)
        macro.write_words(6, values_b)
        result = macro.execute(Opcode.ADD, 5, 6, dest_row=7)
        assert list(result.values) == [11, 22, 33, 44]
        assert macro.read_words(7) == [11, 22, 33, 44]

    def test_vector_mult_uses_slots(self, macro):
        macro.set_precision(8)
        # Multiplicand/multiplier words live in the lower unit of each slot.
        macro.write_word(3, 0, 250)
        macro.write_word(3, 2, 17)
        macro.write_word(4, 0, 251)
        macro.write_word(4, 2, 19)
        result = macro.execute(Opcode.MULT, 3, 4, dest_row=8)
        assert list(result.values) == [250 * 251, 17 * 19]
        assert macro.read_slot_product(8, 0) == 250 * 251
        assert macro.read_slot_product(8, 1) == 17 * 19

    def test_elementwise_spans_multiple_accesses(self, macro):
        macro.set_precision(8)
        values_a = list(range(1, 11))
        values_b = list(range(11, 21))
        results = macro.elementwise(Opcode.ADD, values_a, values_b)
        assert results == [a + b for a, b in zip(values_a, values_b)]

    def test_elementwise_mult(self, macro):
        macro.set_precision(8)
        values_a = [3, 5, 250, 99, 128]
        values_b = [7, 11, 250, 101, 2]
        results = macro.elementwise(Opcode.MULT, values_a, values_b)
        assert results == [a * b for a, b in zip(values_a, values_b)]

    def test_elementwise_single_operand(self, macro):
        macro.set_precision(8)
        results = macro.elementwise(Opcode.NOT, [0, 255, 170])
        assert results == [255, 0, 85]

    def test_elementwise_length_mismatch(self, macro):
        with pytest.raises(OperandError):
            macro.elementwise(Opcode.ADD, [1, 2], [1])


class TestPrecisionReconfiguration:
    def test_set_precision_changes_vector_width(self, macro):
        macro.set_precision(8)
        assert macro.words_per_row() == 4
        macro.set_precision(2)
        assert macro.words_per_row() == 16
        macro.set_precision(4)
        assert macro.mult_slots_per_row() == 4

    def test_same_macro_computes_at_all_precisions(self, macro):
        for precision in (2, 4, 8, 16):
            macro.set_precision(precision)
            limit = (1 << precision) - 1
            assert macro.multiply(limit, limit) == limit * limit

    def test_unsupported_precision_rejected(self, macro):
        from repro.errors import PrecisionError

        with pytest.raises(PrecisionError):
            macro.set_precision(3)

    def test_per_call_precision_override(self, macro):
        macro.set_precision(8)
        assert macro.add(3, 2, precision_bits=4) == 5
        assert macro.precision_bits == 8


class TestStorageInterface:
    def test_write_read_word_roundtrip(self, macro):
        macro.set_precision(8)
        macro.write_word(10, 2, 171)
        assert macro.read_word(10, 2) == 171

    def test_word_value_range_checked(self, macro):
        with pytest.raises(OperandError):
            macro.write_word(0, 0, 256, precision_bits=8)

    def test_write_words_limit(self, macro):
        with pytest.raises(OperandError):
            macro.write_words(0, [1] * 5, precision_bits=8)

    def test_clear_erases_data(self, macro):
        macro.write_word(0, 0, 99)
        macro.clear()
        assert macro.read_word(0, 0) == 0


class TestArgumentValidation:
    def test_dual_op_requires_second_row(self, macro):
        with pytest.raises(ConfigurationError):
            macro.execute(Opcode.ADD, 0)

    def test_writeback_op_requires_dest(self, macro):
        with pytest.raises(ConfigurationError):
            macro.execute(Opcode.SUB, 0, 1)

    def test_words_accounting_bounds(self, macro):
        macro.write_words(0, [1, 2, 3, 4])
        macro.write_words(1, [1, 2, 3, 4])
        with pytest.raises(ConfigurationError):
            macro.execute(Opcode.ADD, 0, 1, words=5)

    def test_mult_requires_two_operands_in_compute(self, macro):
        with pytest.raises(OperandError):
            macro.compute(Opcode.MULT, 5)
