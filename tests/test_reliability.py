"""Tests for the variation-aware reliability runtime (repro.reliability).

Chip binning is a pure function of its seed (pinned to dataclass equality),
fault injection runs on the cluster's virtual clock (pinned to exact
replay/conservation outcomes), and the property test sweeps random fault
plans through random bursts asserting the conservation law: no admitted
request is ever lost or duplicated across crash/recovery windows.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    ClusterNode,
    ClusterRouter,
    NodeState,
    ReactiveAutoscaler,
    SLAClass,
    SLAScheduler,
)
from repro.cluster.node import ExecutionMode
from repro.core.chip import IMCChip
from repro.core.config import MacroConfig
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn
from repro.errors import ConfigurationError
from repro.reliability import (
    SPEED_GRADE_CUTOFFS,
    ChipBinner,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.tech.calibration import default_macro_calibration
from repro.utils.validation import check_ledger_conservation

NUM_MACROS = 16


@pytest.fixture(scope="module")
def trained():
    dataset = make_pattern_image_dataset(samples=90, size=8)
    model, _ = train_pattern_cnn(dataset, epochs=6, seed=0)
    return dataset, model


@pytest.fixture(scope="module")
def binner():
    return ChipBinner(seed=2020, samples=256)


@pytest.fixture(scope="module")
def bins(binner):
    return binner.bin_fleet(4)


def _images(dataset, count=2):
    return dataset.test_images[:count]


# ---------------------------------------------------------------------- #
# Calibration derating
# ---------------------------------------------------------------------- #
class TestCalibrationVariation:
    def test_neutral_variation_is_identity(self):
        calibration = default_macro_calibration()
        assert calibration.with_variation() is calibration

    def test_bl_scale_stretches_only_the_bl_path(self):
        calibration = default_macro_calibration()
        derated = calibration.with_variation(bl_speed_scale=1.5)
        assert derated.timing.bl_precharge_s == pytest.approx(
            1.5 * calibration.timing.bl_precharge_s
        )
        assert derated.timing.sense_amp_resolve_s == pytest.approx(
            1.5 * calibration.timing.sense_amp_resolve_s
        )
        # The disturb-calibrated pulse and the digital path are untouched.
        assert derated.timing.wl_pulse_s == calibration.timing.wl_pulse_s
        assert derated.timing.fa_tg_per_bit_s == calibration.timing.fa_tg_per_bit_s

    def test_energy_scale_scales_every_switching_component(self):
        calibration = default_macro_calibration()
        derated = calibration.with_variation(energy_scale=1.2)
        assert derated.energy.bl_compute_dual_per_bit_j == pytest.approx(
            1.2 * calibration.energy.bl_compute_dual_per_bit_j
        )
        assert derated.energy.logic_per_bit_j == pytest.approx(
            1.2 * calibration.energy.logic_per_bit_j
        )

    def test_global_vth_shift_changes_delay_at_reference_supply(self):
        # The shift must behave like a corner: slower even at 0.9 V, where
        # a naive vth_eff rewrite would cancel against the reference term.
        timing = default_macro_calibration().with_variation(vth_shift_v=0.02).timing
        assert timing.voltage_scale(0.9) > 1.0
        fast = default_macro_calibration().with_variation(vth_shift_v=-0.02).timing
        assert fast.voltage_scale(0.9) < 1.0


# ---------------------------------------------------------------------- #
# Chip binning
# ---------------------------------------------------------------------- #
class TestChipBinning:
    def test_same_seed_produces_identical_bins(self):
        first = ChipBinner(seed=7, samples=256).bin_fleet(3)
        second = ChipBinner(seed=7, samples=256).bin_fleet(3)
        # Dataclass equality covers every float field — bit-identical.
        assert first == second

    def test_different_seeds_produce_different_bins(self):
        a = ChipBinner(seed=7, samples=256).bin_chip(0)
        b = ChipBinner(seed=8, samples=256).bin_chip(0)
        assert a.speed_factor != b.speed_factor

    def test_chips_within_a_fleet_are_independent(self, bins):
        assert len({b.speed_factor for b in bins}) == len(bins)
        assert len({b.seed for b in bins}) == len(bins)

    def test_bin_fields_are_physical(self, bins, binner):
        for chip_bin in bins:
            assert chip_bin.bl_speed_scale >= 1.0  # tail is never faster
            assert chip_bin.f_max_hz > 0
            assert chip_bin.joules_per_mac > 0
            assert 0.0 <= chip_bin.failure_hazard < 1.0
            assert chip_bin.p999_delay_s > chip_bin.nominal_delay_s
            # The grade matches the published cutoffs.
            expected = next(
                name
                for name, cutoff in SPEED_GRADE_CUTOFFS
                if chip_bin.speed_factor < cutoff
            )
            assert chip_bin.speed_grade == expected

    def test_f_max_consistent_with_speed_factor(self, bins, binner):
        for chip_bin in bins:
            assert chip_bin.f_max_hz == pytest.approx(
                binner.nominal_f_max_hz / chip_bin.speed_factor
            )

    def test_chip_from_bin_runs_at_the_binned_speed(self, bins):
        nominal = IMCChip(1, MacroConfig())
        for chip_bin in bins[:2]:
            binned = IMCChip(1, MacroConfig(), bin=chip_bin)
            assert binned.bin is chip_bin
            assert binned.cycle_time_s() == pytest.approx(
                nominal.cycle_time_s() * chip_bin.speed_factor, rel=1e-6
            )

    def test_retune_preserves_the_bin_without_reapplying(self, bins):
        chip_bin = bins[0]
        chip = IMCChip(1, MacroConfig(), bin=chip_bin)
        point = chip.operating_point.at_voltage(1.0)
        retuned = chip.at_operating_point(point)
        assert retuned.bin is chip_bin
        # Derate applied exactly once: retuning must land on the same
        # physics as building the die's chip at 1.0 V from scratch (a
        # re-applied bin would compound the derate).
        fresh = IMCChip(1, MacroConfig().with_operating_point(point), bin=chip_bin)
        assert retuned.cycle_time_s() == pytest.approx(
            fresh.cycle_time_s(), rel=1e-12
        )

    def test_binned_results_are_bit_identical_to_nominal(self):
        # Variation changes physics (time/energy), never arithmetic.
        chip_bin = ChipBinner(seed=3, samples=256).bin_chip(0)
        nominal = IMCChip(2, MacroConfig())
        binned = IMCChip(2, MacroConfig(), bin=chip_bin)
        from repro.core.operations import Opcode

        a = list(range(0, 64))
        b = list(range(64, 128))
        assert binned.elementwise(Opcode.ADD, a, b) == nominal.elementwise(
            Opcode.ADD, a, b
        )


# ---------------------------------------------------------------------- #
# Binned cluster nodes
# ---------------------------------------------------------------------- #
class TestBinnedNodes:
    def test_node_estimates_reflect_the_bin(self, trained, bins):
        dataset, model = trained
        slow_bin = max(bins, key=lambda b: b.speed_factor)
        fast_bin = min(bins, key=lambda b: b.speed_factor)
        slow = ClusterNode("slow", num_macros=NUM_MACROS, bin=slow_bin)
        fast = ClusterNode("fast", num_macros=NUM_MACROS, bin=fast_bin)
        for node in (slow, fast):
            node.register_model("m", model)
        images = _images(dataset)
        est_slow = slow.estimate_request("m", images)
        est_fast = fast.estimate_request("m", images)
        # Identical work, binned physics.
        assert est_slow.critical_path_cycles == est_fast.critical_path_cycles
        assert est_slow.latency_s > est_fast.latency_s
        assert slow.hazard == slow_bin.failure_hazard
        assert ClusterNode("nominal", num_macros=NUM_MACROS).hazard == 0.0

    def test_degrade_stretches_time_but_not_work(self, trained):
        dataset, model = trained
        node = ClusterNode("n", num_macros=NUM_MACROS)
        node.register_model("m", model)
        images = _images(dataset)
        node.execute("m", images)  # programming charge out of the way
        baseline = node.execute("m", images)
        ledger_before = node.ledger().total_cycles
        node.degrade(2.0)
        degraded = node.execute("m", images)
        ledger_delta = node.ledger().total_cycles - ledger_before
        assert degraded.compute_s == pytest.approx(2.0 * baseline.compute_s)
        assert degraded.critical_path_cycles == baseline.critical_path_cycles
        # Pricing sees the stretch too (fresh estimate, not a stale cache).
        est = node.estimate_request("m", images)
        node.restore()
        assert est.latency_s == pytest.approx(
            2.0 * node.estimate_request("m", images).latency_s
        )
        # The work ledger is throttling-blind: same cycles as a healthy run.
        node.execute("m", images)
        assert node.ledger().total_cycles - ledger_before == 2 * ledger_delta

    def test_fail_recover_lifecycle(self, trained):
        dataset, model = trained
        node = ClusterNode("n", num_macros=NUM_MACROS)
        node.register_model("m", model)
        node.fail()
        assert node.state is NodeState.FAILED
        with pytest.raises(ConfigurationError):
            node.execute("m", _images(dataset))
        with pytest.raises(ConfigurationError):
            node.wake()  # dead silicon is not a parked spare
        node.recover()
        assert node.state is NodeState.ACTIVE
        assert node.execute("m", _images(dataset)).compute_s > 0

    def test_summary_reports_reliability_fields(self, bins):
        node = ClusterNode("n", num_macros=2, bin=bins[0])
        node.degrade(1.5)
        summary = node.summary()
        assert summary["hazard"] == bins[0].failure_hazard
        assert summary["degrade_factor"] == 1.5
        assert summary["bin_speed_factor"] == pytest.approx(bins[0].speed_factor)
        assert summary["failed"] == 0.0


# ---------------------------------------------------------------------- #
# Hazard-aware scheduling
# ---------------------------------------------------------------------- #
class TestHazardScheduling:
    def _twin_nodes(self, model, hazards):
        fake_bins = []
        reference = ChipBinner(seed=11, samples=256).bin_chip(0)
        for index, hazard in enumerate(hazards):
            fake_bins.append(
                dataclasses.replace(
                    reference, chip_id=f"twin-{index}", failure_hazard=hazard
                )
            )
        nodes = [
            ClusterNode(b.chip_id, num_macros=NUM_MACROS, bin=b) for b in fake_bins
        ]
        for node in nodes:
            node.register_model("m", model)
        return nodes

    def test_best_effort_prefers_the_safer_twin(self, trained):
        dataset, model = trained
        nodes = self._twin_nodes(model, hazards=(0.2, 0.0))
        router = ClusterRouter(nodes)
        request_id = router.submit("m", _images(dataset))
        assert router.decision(request_id).node_id == "twin-1"
        router.shutdown()

    def test_latency_class_prefers_the_safer_twin(self, trained):
        dataset, model = trained
        nodes = self._twin_nodes(model, hazards=(0.3, 0.0))
        router = ClusterRouter(nodes)
        request_id = router.submit(
            "m", _images(dataset), sla=SLAClass.LATENCY, deadline_s=10.0
        )
        assert router.decision(request_id).node_id == "twin-1"
        router.shutdown()

    def test_zero_hazard_weight_disables_the_penalty(self, trained):
        dataset, model = trained
        nodes = self._twin_nodes(model, hazards=(0.3, 0.0))
        router = ClusterRouter(nodes, scheduler=SLAScheduler(hazard_weight=0.0))
        request_id = router.submit(
            "m", _images(dataset), sla=SLAClass.LATENCY, deadline_s=10.0
        )
        # Identical estimates, no penalty: node-id tie-break wins.
        assert router.decision(request_id).node_id == "twin-0"
        router.shutdown()


# ---------------------------------------------------------------------- #
# Fault plans
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_events_sort_stably_by_time(self):
        plan = FaultPlan(
            [
                FaultEvent(at_s=2.0, kind=FaultKind.RECOVER, node_id="a"),
                FaultEvent(at_s=1.0, kind=FaultKind.CRASH, node_id="a"),
                FaultEvent(at_s=1.0, kind=FaultKind.DEGRADE, node_id="b", factor=2.0),
            ]
        )
        assert [e.kind for e in plan] == [
            FaultKind.CRASH,
            FaultKind.DEGRADE,
            FaultKind.RECOVER,
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_s=-1.0, kind=FaultKind.CRASH, node_id="a")
        with pytest.raises(ConfigurationError):
            FaultEvent(at_s=0.0, kind=FaultKind.STALL, node_id="a")  # no duration
        with pytest.raises(ConfigurationError):
            FaultEvent(at_s=0.0, kind=FaultKind.DEGRADE, node_id="a", factor=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.node_crash("a", at_s=2.0, recover_at_s=1.0)

    def test_downtime_and_availability(self):
        plan = FaultPlan.node_crash("a", at_s=2.0, recover_at_s=6.0)
        downtime = plan.downtime_s(["a", "b"], span_s=10.0)
        assert downtime == {"a": 4.0, "b": 0.0}
        assert plan.availability(["a", "b"], 10.0) == pytest.approx(0.8)
        # An open crash runs to the span end.
        open_plan = FaultPlan.node_crash("a", at_s=8.0)
        assert open_plan.downtime_s(["a"], 10.0)["a"] == pytest.approx(2.0)

    def test_merged_interleaves(self):
        a = FaultPlan.node_crash("a", at_s=5.0)
        b = FaultPlan.node_crash("b", at_s=1.0)
        assert [e.node_id for e in a.merged(b)] == ["b", "a"]


# ---------------------------------------------------------------------- #
# Fault injection through the router
# ---------------------------------------------------------------------- #
class TestRouterFaultInjection:
    def _fleet(self, model, count=3, **node_kwargs):
        nodes = [
            ClusterNode(f"n{i}", num_macros=NUM_MACROS, **node_kwargs)
            for i in range(count)
        ]
        for node in nodes:
            node.register_model("m", model)
        return nodes

    def test_unknown_node_in_plan_is_rejected(self, trained):
        _, model = trained
        nodes = self._fleet(model, count=1)
        with pytest.raises(ConfigurationError):
            ClusterRouter(nodes, fault_plan=FaultPlan.node_crash("ghost", at_s=1.0))

    def test_crash_replays_backlog_onto_survivors(self, trained):
        dataset, model = trained
        nodes = self._fleet(model)
        plan = FaultPlan.node_crash("n0", at_s=0.0001)
        router = ClusterRouter(nodes, fault_plan=plan)
        images = _images(dataset)
        # A same-arrival burst builds a backlog before anything dispatches;
        # affinity pins it all to one node, which then dies.
        ids = [router.submit("m", images, arrival_s=0.0) for _ in range(12)]
        victim = router.decision(ids[0]).node_id
        assert all(router.decision(i).node_id == victim for i in ids)
        ids.append(router.submit("m", images, arrival_s=0.001))  # passes crash
        results = router.drain()
        assert len(results) == len(ids)
        assert router.completed_requests == len(ids)
        assert router.replayed_requests > 0
        reference = model.predict(images)
        for request_id in ids:
            assert np.array_equal(router.result(request_id).predictions, reference)
        # Replayed dispatches are flagged in telemetry; none ran on a
        # failed node.
        assert any(trace.replayed for trace in router.telemetry.traces)
        crashed_after = [
            t for t in router.telemetry.traces if t.node_id == victim and t.replayed
        ]
        assert not crashed_after
        router.shutdown()

    def test_recovery_returns_the_node_to_rotation(self, trained):
        dataset, model = trained
        nodes = self._fleet(model, count=2)
        plan = FaultPlan.node_crash("n0", at_s=0.0, recover_at_s=0.001)
        router = ClusterRouter(nodes, fault_plan=plan)
        router.submit("m", _images(dataset), arrival_s=0.0)
        router.drain()
        assert router.node("n0").state is NodeState.FAILED
        router.submit("m", _images(dataset), arrival_s=0.002)
        router.drain()
        assert router.node("n0").state is NodeState.ACTIVE
        assert [e.kind for e in router.fault_log] == [
            FaultKind.CRASH,
            FaultKind.RECOVER,
        ]
        router.shutdown()

    def test_whole_fleet_crash_waits_for_scripted_recovery(self, trained):
        dataset, model = trained
        nodes = self._fleet(model, count=1)
        plan = FaultPlan.node_crash("n0", at_s=0.0005, recover_at_s=0.01)
        router = ClusterRouter(nodes, fault_plan=plan)
        ids = [router.submit("m", _images(dataset), arrival_s=0.0006 * (i + 1))
               for i in range(3)]
        results = router.drain()
        # Nothing lost: the router advanced virtual time to the recovery.
        assert len(results) == len(ids)
        assert router.completed_requests == len(ids)
        assert router.clock_s >= 0.01
        router.shutdown()

    def test_validation_errors_still_propagate_during_outage(self, trained):
        dataset, model = trained
        nodes = self._fleet(model, count=1)
        plan = FaultPlan.node_crash("n0", at_s=0.0, recover_at_s=0.01)
        router = ClusterRouter(nodes, fault_plan=plan)
        stranded_id = router.submit("m", _images(dataset), arrival_s=0.0)
        assert router.queue_depth() == 1  # outage strands a valid request
        # Invalid requests are rejected, outage or not — only the capacity
        # shortfall may strand admissions.
        with pytest.raises(ConfigurationError):
            router.submit(
                "m", _images(dataset), sla=SLAClass.LATENCY, arrival_s=0.0
            )
        assert router.queue_depth() == 1
        router.submit("m", _images(dataset), arrival_s=0.02)  # past recovery
        router.drain()
        assert router.completed_requests == 2
        router.result(stranded_id)
        router.shutdown()

    def test_stall_pushes_completion_forward(self, trained):
        dataset, model = trained
        nodes = self._fleet(model, count=1)
        stall = FaultPlan(
            [FaultEvent(at_s=0.0, kind=FaultKind.STALL, node_id="n0", duration_s=0.5)]
        )
        router = ClusterRouter(nodes, fault_plan=stall)
        request_id = router.submit("m", _images(dataset), arrival_s=0.0)
        router.drain()
        trace = router.result(request_id).trace
        assert trace.start_s >= 0.5  # the hiccup delayed the dispatch
        router.shutdown()

    def test_degrade_and_restore_shape_latency(self, trained):
        dataset, model = trained
        plain_nodes = self._fleet(model, count=1)
        plain = ClusterRouter(plain_nodes)
        cold_id = plain.submit("m", _images(dataset), arrival_s=0.0)
        plain.drain()
        warm_id = plain.submit("m", _images(dataset), arrival_s=1.0)
        plain.drain()
        cold_baseline = plain.result(cold_id).compute_s
        warm_baseline = plain.result(warm_id).compute_s
        plain.shutdown()

        nodes = self._fleet(model, count=1)
        plan = FaultPlan(
            [
                FaultEvent(at_s=0.0, kind=FaultKind.DEGRADE, node_id="n0", factor=3.0),
                FaultEvent(at_s=1.0, kind=FaultKind.RESTORE, node_id="n0"),
            ]
        )
        router = ClusterRouter(nodes, fault_plan=plan)
        slow_id = router.submit("m", _images(dataset), arrival_s=0.0)  # cold
        router.drain()
        fast_id = router.submit("m", _images(dataset), arrival_s=2.0)  # warm
        router.drain()
        assert router.result(slow_id).compute_s == pytest.approx(3.0 * cold_baseline)
        assert router.result(fast_id).compute_s == pytest.approx(warm_baseline)
        router.shutdown()

    def test_fault_fidelity_exact_vs_analytic(self, trained):
        dataset, model = trained
        outcomes = {}
        for mode in (ExecutionMode.EXACT, ExecutionMode.ANALYTIC):
            nodes = [
                ClusterNode(
                    f"n{i}", num_macros=NUM_MACROS, execution_mode=mode
                )
                for i in range(2)
            ]
            for node in nodes:
                node.register_model("m", model)
            plan = FaultPlan.node_crash("n0", at_s=0.0002, recover_at_s=0.01)
            router = ClusterRouter(nodes, fault_plan=plan)
            for i in range(8):
                router.submit("m", _images(dataset), arrival_s=0.0001 * i)
            router.drain()
            outcomes[mode] = (
                [
                    (t.request_id, t.node_id, t.start_s, t.finish_s, t.energy_j,
                     t.replayed)
                    for t in router.telemetry.traces
                ],
                router.ledger().total_cycles,
                router.ledger().total_energy_j,
            )
            # Fault plans (crash + replay) must not leak charge out of the
            # cluster-vs-node conservation law in either mode.
            check_ledger_conservation(
                router.ledger(), [node.ledger() for node in nodes]
            )
            router.shutdown()
        assert outcomes[ExecutionMode.EXACT] == outcomes[ExecutionMode.ANALYTIC]


# ---------------------------------------------------------------------- #
# Autoscaler failure pressure
# ---------------------------------------------------------------------- #
class TestFailurePressure:
    def test_crash_with_backlog_wakes_a_spare(self, trained):
        dataset, model = trained
        nodes = [ClusterNode(f"n{i}", num_macros=NUM_MACROS) for i in range(3)]
        for node in nodes:
            node.register_model("m", model)
        nodes[2].park()  # the spare
        plan = FaultPlan.node_crash("n0", at_s=0.0)
        router = ClusterRouter(nodes, fault_plan=plan)
        autoscaler = ReactiveAutoscaler(router, min_active=1, park_after_idle=1000)
        router.submit("m", _images(dataset), arrival_s=0.0)
        router.submit("m", _images(dataset), arrival_s=0.0)
        actions = autoscaler.observe()
        assert [a.action for a in actions] == ["wake"]
        assert "failure pressure" in actions[0].reason
        assert router.node("n2").state is NodeState.ACTIVE
        router.drain()
        assert router.completed_requests == 2
        router.shutdown()

    def test_no_failure_no_spurious_wake(self, trained):
        dataset, model = trained
        nodes = [ClusterNode(f"n{i}", num_macros=NUM_MACROS) for i in range(2)]
        for node in nodes:
            node.register_model("m", model)
        nodes[1].park()
        router = ClusterRouter(nodes)
        autoscaler = ReactiveAutoscaler(router, min_active=1, park_after_idle=1000)
        router.submit("m", _images(dataset), arrival_s=0.0)
        assert autoscaler.observe() == []  # below wake_queue_depth, no fault
        router.drain()
        router.shutdown()


# ---------------------------------------------------------------------- #
# Property: conservation of requests across arbitrary fault plans
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tiny(trained):
    return trained


class TestConservationProperty:
    # Example counts / deadline / health-check policy come from the shared
    # hypothesis profiles in conftest.py ("ci" by default, "nightly" via
    # REPRO_HYPOTHESIS_PROFILE).
    @given(
        crash_at=st.floats(min_value=0.0, max_value=0.002),
        recover_gap=st.one_of(
            st.none(), st.floats(min_value=1e-4, max_value=0.005)
        ),
        victim=st.integers(min_value=0, max_value=2),
        second_kind=st.sampled_from(["none", "stall", "degrade", "crash"]),
        burst=st.integers(min_value=1, max_value=10),
        spread=st.floats(min_value=0.0, max_value=0.003),
    )
    def test_no_request_lost_or_duplicated(
        self, tiny, crash_at, recover_gap, victim, second_kind, burst, spread
    ):
        dataset, model = tiny
        nodes = [ClusterNode(f"n{i}", num_macros=NUM_MACROS) for i in range(3)]
        for node in nodes:
            node.register_model("m", model)
        events = [
            FaultEvent(at_s=crash_at, kind=FaultKind.CRASH, node_id=f"n{victim}")
        ]
        if recover_gap is not None:
            events.append(
                FaultEvent(
                    at_s=crash_at + recover_gap,
                    kind=FaultKind.RECOVER,
                    node_id=f"n{victim}",
                )
            )
        other = f"n{(victim + 1) % 3}"
        if second_kind == "stall":
            events.append(
                FaultEvent(
                    at_s=crash_at / 2, kind=FaultKind.STALL, node_id=other,
                    duration_s=0.001,
                )
            )
        elif second_kind == "degrade":
            events.append(
                FaultEvent(
                    at_s=0.0, kind=FaultKind.DEGRADE, node_id=other, factor=2.5
                )
            )
        elif second_kind == "crash":
            events.append(
                FaultEvent(at_s=crash_at, kind=FaultKind.CRASH, node_id=other)
            )
        router = ClusterRouter(nodes, fault_plan=FaultPlan(events))
        images = dataset.test_images[:2]
        ids = []
        for index in range(burst):
            arrival = spread * index / burst
            ids.append(router.submit("m", images, arrival_s=arrival))
        results = router.drain()

        # Conservation: every admitted request completes exactly once.
        assert router.completed_requests == len(ids)
        assert router.failed_requests == 0
        assert router.queue_depth() == 0
        returned = sorted(r.request_id for r in results)
        assert returned == sorted(ids)  # no duplicates in the drain stream
        for request_id in ids:
            router.result(request_id)  # every id resolvable
        router.shutdown()
