"""Shared fixtures, hypothesis profiles and markers for the test suite.

Hypothesis settings are centralised here instead of per-module
``settings.register_profile`` calls so every property-based module runs
under the same policy:

* ``ci`` (default) — derandomized, bounded example counts, no deadline
  (CI machines are noisy; a slow example is not a failing example);
* ``nightly`` — ten times the examples, randomized, for the scheduled
  full-fidelity tier (select with ``REPRO_HYPOTHESIS_PROFILE=nightly``).

The ``slow`` marker is registered here (there is no pytest.ini); the CI
test matrix deselects it with ``-m "not slow"`` while tier-1 and the
nightly tier run everything.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core import IMCMacro, MacroConfig
from repro.dnn import make_classification_dataset
from repro.tech import CALIBRATED_28NM, OperatingPoint, default_macro_calibration

settings.register_profile(
    "ci",
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.register_profile(
    "nightly",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavyweight differential/property cases; the per-PR CI "
        'matrix deselects them with -m "not slow", tier-1 and nightly '
        "run them",
    )
    if not config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout enforces the per-test ceilings on the
        # multi-process fleet suites in CI (requirements-dev.txt); on a
        # bare local checkout the marker degrades to a registered no-op
        # so the suite still runs without the plugin installed.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test hard ceiling, enforced when "
            "pytest-timeout is installed (multi-process fleet suites)",
        )


@pytest.fixture(scope="session")
def technology():
    """The calibrated 28 nm technology profile."""
    return CALIBRATED_28NM


@pytest.fixture(scope="session")
def calibration():
    """The default calibrated constant bundle."""
    return default_macro_calibration()


@pytest.fixture(scope="session")
def nominal_point():
    """The nominal operating point (0.9 V, 25 C, NN)."""
    return OperatingPoint(vdd=0.9)


@pytest.fixture()
def macro():
    """A fresh default macro (128x128, 8-bit precision)."""
    return IMCMacro()


@pytest.fixture()
def small_macro():
    """A small macro (fast for exhaustive sweeps): 32 rows x 32 cols."""
    return IMCMacro(MacroConfig(rows=32, cols=32, precision_bits=4))


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic classification dataset (session-cached)."""
    return make_classification_dataset(
        samples=400, features=10, classes=3, seed=5
    )
