"""Banked memory built from IMC macros.

The paper evaluates a 128 KB memory organised as four banks of 128x128
macros.  :class:`IMCBank` groups several macros that share a control path and
can execute the same vector operation simultaneously (one macro per issue
slot); :class:`IMCMemory` groups banks and provides byte-capacity accounting,
a flat word-address space and aggregate statistics.

The bank layer is intentionally thin: all functional behaviour lives in
:class:`repro.core.macro.IMCMacro`, and the bank simply fans operations out
and merges the returned statistics — which is also how the physical design
scales (each macro has its own column periphery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import AddressError, ConfigurationError
from repro.core.config import MacroConfig
from repro.core.macro import IMCMacro, OperationResult
from repro.core.operations import Opcode
from repro.core.stats import MacroStatistics
from repro.utils.validation import check_positive

__all__ = ["WordLocation", "IMCBank", "IMCMemory"]


@dataclass(frozen=True)
class WordLocation:
    """Physical location of one word in the banked memory."""

    bank: int
    macro: int
    row: int
    word_index: int


class IMCBank:
    """A group of macros sharing one controller."""

    def __init__(self, macros_per_bank: int, config: Optional[MacroConfig] = None) -> None:
        check_positive("macros_per_bank", macros_per_bank)
        self.config = config if config is not None else MacroConfig()
        self.macros: List[IMCMacro] = [
            IMCMacro(self.config) for _ in range(macros_per_bank)
        ]

    @property
    def capacity_bytes(self) -> int:
        """Storage capacity of the bank in bytes."""
        return sum(macro.config.capacity_bytes for macro in self.macros)

    def macro(self, index: int) -> IMCMacro:
        """Access one macro of the bank."""
        if not 0 <= index < len(self.macros):
            raise AddressError(
                f"macro index {index} outside [0, {len(self.macros)})"
            )
        return self.macros[index]

    def broadcast(
        self,
        opcode: Opcode,
        row_a: int,
        row_b: Optional[int] = None,
        dest_row: Optional[int] = None,
        precision_bits: Optional[int] = None,
    ) -> List[OperationResult]:
        """Issue the same vector operation to every macro of the bank."""
        return [
            macro.execute(opcode, row_a, row_b, dest_row, precision_bits)
            for macro in self.macros
        ]

    def statistics(self) -> MacroStatistics:
        """Merged statistics of every macro in the bank."""
        merged = MacroStatistics()
        for macro in self.macros:
            merged.merge(macro.stats)
        return merged

    def reset_stats(self) -> None:
        """Reset the statistics of every macro."""
        for macro in self.macros:
            macro.reset_stats()


class IMCMemory:
    """A multi-bank in-memory-computing memory (128 KB by default)."""

    def __init__(
        self,
        banks: int = 4,
        capacity_bytes: int = 128 * 1024,
        config: Optional[MacroConfig] = None,
    ) -> None:
        check_positive("banks", banks)
        check_positive("capacity_bytes", capacity_bytes)
        self.config = config if config is not None else MacroConfig()
        macro_bytes = self.config.capacity_bytes
        total_macros = capacity_bytes // macro_bytes
        if total_macros * macro_bytes != capacity_bytes:
            raise ConfigurationError(
                f"capacity {capacity_bytes} B is not a whole number of "
                f"{macro_bytes} B macros"
            )
        if total_macros % banks != 0:
            raise ConfigurationError(
                f"{total_macros} macros cannot be split evenly across {banks} banks"
            )
        self.banks: List[IMCBank] = [
            IMCBank(total_macros // banks, self.config) for _ in range(banks)
        ]

    # ------------------------------------------------------------------ #
    # Capacity / addressing
    # ------------------------------------------------------------------ #
    @property
    def capacity_bytes(self) -> int:
        """Total storage capacity in bytes."""
        return sum(bank.capacity_bytes for bank in self.banks)

    @property
    def macros_per_bank(self) -> int:
        """Number of macros in each bank."""
        return len(self.banks[0].macros)

    @property
    def total_macros(self) -> int:
        """Total number of macros across all banks."""
        return self.macros_per_bank * len(self.banks)

    def words_per_row(self, precision_bits: Optional[int] = None) -> int:
        """Words per row access of one macro."""
        return self.banks[0].macros[0].words_per_row(precision_bits)

    def locate_word(
        self, flat_index: int, precision_bits: Optional[int] = None
    ) -> WordLocation:
        """Map a flat word index onto (bank, macro, row, word).

        Words are striped across macros first (to maximise the vector width
        of a single broadcast operation), then across rows, then banks.
        """
        words_per_row = self.words_per_row(precision_bits)
        rows = self.config.rows
        words_per_macro = words_per_row * rows
        words_per_bank = words_per_macro * self.macros_per_bank
        total_words = words_per_bank * len(self.banks)
        if not 0 <= flat_index < total_words:
            raise AddressError(
                f"flat word index {flat_index} outside [0, {total_words})"
            )
        bank, remainder = divmod(flat_index, words_per_bank)
        macro, remainder = divmod(remainder, words_per_macro)
        row, word_index = divmod(remainder, words_per_row)
        return WordLocation(bank=bank, macro=macro, row=row, word_index=word_index)

    def write_flat(self, flat_index: int, value: int, precision_bits: Optional[int] = None) -> None:
        """Write a word at a flat word index."""
        location = self.locate_word(flat_index, precision_bits)
        self.banks[location.bank].macro(location.macro).write_word(
            location.row, location.word_index, value, precision_bits
        )

    def read_flat(self, flat_index: int, precision_bits: Optional[int] = None) -> int:
        """Read a word from a flat word index."""
        location = self.locate_word(flat_index, precision_bits)
        return self.banks[location.bank].macro(location.macro).read_word(
            location.row, location.word_index, precision_bits
        )

    # ------------------------------------------------------------------ #
    # Operations / statistics
    # ------------------------------------------------------------------ #
    def broadcast(
        self,
        opcode: Opcode,
        row_a: int,
        row_b: Optional[int] = None,
        dest_row: Optional[int] = None,
        precision_bits: Optional[int] = None,
    ) -> List[OperationResult]:
        """Issue a vector operation to every macro of every bank."""
        results: List[OperationResult] = []
        for bank in self.banks:
            results.extend(
                bank.broadcast(opcode, row_a, row_b, dest_row, precision_bits)
            )
        return results

    def parallel_words(self, precision_bits: Optional[int] = None) -> int:
        """How many word-level results one broadcast operation produces."""
        return self.words_per_row(precision_bits) * self.total_macros

    def elementwise(
        self,
        opcode: Opcode,
        a_values: Sequence[int],
        b_values: Optional[Sequence[int]] = None,
        precision_bits: Optional[int] = None,
    ) -> List[int]:
        """Element-wise operation distributed across every macro.

        Long operand vectors are split into macro-sized chunks and dispatched
        round-robin across the banks' macros, which is how a real controller
        would exploit the memory-level parallelism: each macro processes its
        chunk with its own column periphery, so the whole memory advances
        ``parallel_words()`` results per (multi-)cycle.  Results come back in
        input order.
        """
        if b_values is not None and len(b_values) != len(a_values):
            raise ConfigurationError("operand vectors must have the same length")
        macros = [macro for bank in self.banks for macro in bank.macros]
        first = macros[0]
        if opcode is Opcode.MULT:
            lane_count = first.mult_slots_per_row(precision_bits)
        else:
            lane_count = first.words_per_row(precision_bits)
        results: List[int] = [0] * len(a_values)
        chunk_starts = list(range(0, len(a_values), lane_count))
        for chunk_index, start in enumerate(chunk_starts):
            macro = macros[chunk_index % len(macros)]
            stop = min(start + lane_count, len(a_values))
            chunk_a = list(a_values[start:stop])
            chunk_b = list(b_values[start:stop]) if b_values is not None else None
            chunk_result = macro.elementwise(
                opcode, chunk_a, chunk_b, precision_bits=precision_bits
            )
            results[start:stop] = chunk_result
        return results

    def statistics(self) -> MacroStatistics:
        """Merged statistics across all banks."""
        merged = MacroStatistics()
        for bank in self.banks:
            merged.merge(bank.statistics())
        return merged

    def reset_stats(self) -> None:
        """Reset statistics in every bank."""
        for bank in self.banks:
            bank.reset_stats()

    def geometry_summary(self) -> Tuple[int, int, int]:
        """(banks, macros per bank, bytes per macro)."""
        return len(self.banks), self.macros_per_bank, self.config.capacity_bytes
