"""The fleet runtime: sharded execution, single-process determinism.

The charter test is differential: a :class:`~repro.fleet.FleetCluster`
run over worker shards must produce the *same* ledger totals, deadline
-miss sets and prediction arrays as a single-process
:class:`~repro.cluster.router.ClusterRouter` over an identical fleet and
workload — the fidelity contract the whole shadow-charge design exists to
keep.  Around it: the NodeSpec recipes, the shared-memory tensor
transport, the order-invariant metrics merge, the sync-barrier ledger
audit, and the crash drills (worker death mid-batch must conserve every
admitted request).

Thread-transport fleets run the full message protocol in-process (fast,
coverage-visible); a bounded set of spawn-transport tests exercises real
processes, real shared memory and the hard-exit crash drill.
"""

import numpy as np
import pytest

from repro.cluster import ClusterNode, ClusterRouter
from repro.cluster.node import ExecutionMode, NodeSpec
from repro.cluster.router import SLAClass
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn
from repro.errors import ConfigurationError
from repro.fleet import (
    FleetCluster,
    FleetError,
    ShadowNode,
    TensorReader,
    TensorStore,
    WorkerConfig,
    shadows_from_specs,
)
from repro.fleet.messages import TensorRef
from repro.obs import MetricsRegistry
from repro.utils.validation import check_ledger_conservation

NUM_MACROS = 4


@pytest.fixture(scope="module")
def trained():
    dataset = make_pattern_image_dataset(samples=90, size=8, seed=13)
    model, _ = train_pattern_cnn(
        dataset, conv_channels=(1,), hidden_sizes=(4,), epochs=2, seed=13
    )
    return dataset, model


def make_nodes(count=4, mixed_vdd=True, max_batch_size=8):
    return [
        ClusterNode(
            f"node-{index}",
            vdd=1.0 if (index % 2 == 0 or not mixed_vdd) else 0.6,
            num_macros=NUM_MACROS,
            max_batch_size=max_batch_size,
            execution_mode=ExecutionMode.EXACT,
        )
        for index in range(count)
    ]


def submit_mixed(router, pool, requests=30, seed=11, arrival_gap=0.0):
    """The shared mixed-SLA workload both sides of a differential run get."""
    rng = np.random.default_rng(seed)
    slas = [SLAClass.LATENCY, SLAClass.BEST_EFFORT, SLAClass.THROUGHPUT]
    ids = []
    for index in range(requests):
        count = int(rng.integers(1, 5))
        start = int(rng.integers(0, pool.shape[0] - count))
        sla = slas[index % 3]
        ids.append(
            router.submit(
                "cnn",
                pool[start : start + count].copy(),
                sla=sla,
                deadline_s=0.05 if sla is SLAClass.LATENCY else None,
                arrival_s=index * arrival_gap,
            )
        )
    return ids


def assert_matches_oracle(fleet, oracle, pool, requests=30, seed=11):
    """Run the same workload on both, assert the full fidelity contract."""
    submit_mixed(oracle, pool, requests=requests, seed=seed)
    submit_mixed(fleet, pool, requests=requests, seed=seed)
    oracle_results = oracle.drain()
    fleet_results = fleet.drain()
    assert len(fleet_results) == len(oracle_results) == requests
    oracle_ledger, fleet_ledger = oracle.ledger(), fleet.ledger()
    assert fleet_ledger.total_cycles == oracle_ledger.total_cycles
    assert fleet_ledger.total_energy_j == oracle_ledger.total_energy_j
    assert {r.request_id for r in fleet_results if r.deadline_missed} == {
        r.request_id for r in oracle_results if r.deadline_missed
    }
    for ours, theirs in zip(fleet_results, oracle_results):
        assert ours.request_id == theirs.request_id
        assert np.array_equal(ours.predictions, theirs.predictions)


# ---------------------------------------------------------------------- #
# NodeSpec: the shard recipe
# ---------------------------------------------------------------------- #
class TestNodeSpec:
    def test_round_trip_builds_an_equivalent_node(self, trained):
        dataset, model = trained
        original = ClusterNode(
            "n0",
            vdd=0.8,
            num_macros=NUM_MACROS,
            max_batch_size=16,
            execution_mode=ExecutionMode.EXACT,
        )
        rebuilt = original.spec().build()
        assert isinstance(rebuilt, ClusterNode)
        assert rebuilt.node_id == "n0"
        assert rebuilt.vdd == original.vdd
        assert rebuilt.max_batch_size == original.max_batch_size
        for node in (original, rebuilt):
            node.register_model("m", model)
            node.execute("m", dataset.test_images[:3])
        assert (
            rebuilt.ledger().total_cycles == original.ledger().total_cycles
        )
        assert (
            rebuilt.ledger().total_energy_j == original.ledger().total_energy_j
        )

    def test_build_as_shadow_charges_identically(self, trained):
        dataset, model = trained
        spec = make_nodes(count=1)[0].spec()
        real, shadow = spec.build(), spec.build(node_cls=ShadowNode)
        assert isinstance(shadow, ShadowNode)
        for node in (real, shadow):
            node.register_model("m", model)
            node.execute("m", dataset.test_images[:3])
        assert shadow.ledger().total_cycles == real.ledger().total_cycles
        assert shadow.ledger().total_energy_j == real.ledger().total_energy_j

    def test_shadows_from_specs_builds_the_whole_fleet(self):
        specs = [node.spec() for node in make_nodes(count=3)]
        shadows = shadows_from_specs(specs)
        assert [s.node_id for s in shadows] == [s.node_id for s in specs]
        assert all(isinstance(s, ShadowNode) for s in shadows)


# ---------------------------------------------------------------------- #
# Shadow placeholders
# ---------------------------------------------------------------------- #
class TestShadowNode:
    def test_placeholder_is_a_loud_sentinel(self, trained):
        dataset, model = trained
        shadow = make_nodes(count=1)[0].spec().build(node_cls=ShadowNode)
        shadow.register_model("m", model)
        dispatch = shadow.execute("m", dataset.test_images[:3])
        assert np.all(dispatch.predictions == -1)
        pending = shadow.take_pending()
        assert pending is not None and shadow.take_pending() is None
        pending.targets[0][:] = 2
        assert np.all(dispatch.predictions == 2)  # same backing memory

    def test_group_targets_are_views_of_one_array(self, trained):
        dataset, model = trained
        shadow = make_nodes(count=1)[0].spec().build(node_cls=ShadowNode)
        shadow.register_model("m", model)
        parts = [
            (dataset.test_images[:2], "a"),
            (dataset.test_images[2:5], "b"),
        ]
        targets, dispatch = shadow.execute_group("m", parts)
        assert [t.shape[0] for t in targets] == [2, 3]
        targets[1][:] = 7
        assert np.all(dispatch.predictions[2:] == 7)

    def test_inactive_shadow_refuses_dispatch(self, trained):
        dataset, model = trained
        shadow = make_nodes(count=1)[0].spec().build(node_cls=ShadowNode)
        shadow.register_model("m", model)
        shadow.fail()
        with pytest.raises(ConfigurationError, match="failed"):
            shadow.execute("m", dataset.test_images[:2])


# ---------------------------------------------------------------------- #
# Shared-memory tensor transport
# ---------------------------------------------------------------------- #
class TestTensorTransport:
    def test_small_arrays_ride_inline(self):
        with TensorStore(inline_bytes=2048) as store:
            ref = store.put("d1", np.ones((4, 4)))
            assert ref.shm_name is None and ref.inline is not None
            assert store.inline_refs == 1
            fetched = TensorReader().fetch(ref)
            assert np.array_equal(fetched, np.ones((4, 4)))

    def test_large_arrays_cross_via_shared_memory(self):
        payload = np.arange(4096, dtype=np.float64).reshape(64, 64)
        with TensorStore(inline_bytes=64) as store:
            ref = store.put("d2", payload)
            assert ref.shm_name is not None
            reader = TensorReader()
            fetched = reader.fetch(ref)
            assert np.array_equal(fetched, payload)
            assert reader.misses == 1
            again = reader.fetch(ref)
            assert reader.hits == 1 and again is fetched

    def test_digest_reuse_pins_one_segment(self):
        payload = np.zeros((64, 64))
        with TensorStore(inline_bytes=64) as store:
            first = store.put("d3", payload)
            second = store.put("d3", payload)
            assert first is second
            assert store.segments_created == 1 and store.reuse_hits == 1

    def test_release_and_capacity_evict_unpinned_lru(self):
        with TensorStore(inline_bytes=0, capacity=2) as store:
            refs = [store.put(f"d{i}", np.full((32, 32), i)) for i in range(4)]
            assert len(store) == 4  # pinned entries never evict
            for ref in refs:
                store.release(ref)
            assert len(store) == 2  # down to capacity, LRU first
            assert np.all(store.array("d3") == 3)  # newest survives
            with pytest.raises(ConfigurationError, match="unknown tensor"):
                store.array("d0")

    def test_put_after_close_refuses(self):
        store = TensorStore()
        store.close()
        store.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            store.put("d", np.ones(2))

    def test_reader_cache_is_bounded(self):
        reader = TensorReader(capacity=2)
        for index in range(4):
            reader.fetch(
                TensorRef(
                    digest=f"d{index}",
                    shape=(2,),
                    dtype="float64",
                    inline=np.full(2, index),
                )
            )
        assert reader.misses == 4
        assert reader.summary()["entries"] == 2.0


# ---------------------------------------------------------------------- #
# Order-invariant snapshot merge
# ---------------------------------------------------------------------- #
class TestMergeSnapshots:
    @staticmethod
    def _worker_snapshot(rank, value):
        registry = MetricsRegistry()
        counter = registry.counter(
            "fleet_worker_requests_total", "requests", labelnames=("rank",)
        )
        counter.labels(rank=str(rank)).inc(value)
        registry.histogram("latency_s", "latency").labels().record(value)
        return registry.snapshot()

    def test_merge_is_order_invariant_for_counters_and_histograms(self):
        snaps = [self._worker_snapshot(rank, rank + 1.0) for rank in range(3)]

        def merged(order):
            registry = MetricsRegistry()
            registry.merge_snapshots(snaps[i] for i in order)
            return registry.snapshot()["metrics"]

        forward, backward = merged([0, 1, 2]), merged([2, 1, 0])
        for name in ("fleet_worker_requests_total", "latency_s"):
            fwd = {
                tuple(s["labels"].items()): s.get("value", s.get("count"))
                for s in forward[name]["samples"]
            }
            bwd = {
                tuple(s["labels"].items()): s.get("value", s.get("count"))
                for s in backward[name]["samples"]
            }
            assert fwd == bwd
        samples = forward["fleet_worker_requests_total"]["samples"]
        assert sum(s["value"] for s in samples) == 6.0


# ---------------------------------------------------------------------- #
# Differential fidelity: fleet vs single-process oracle
# ---------------------------------------------------------------------- #
@pytest.mark.timeout(120)
class TestFleetFidelity:
    def test_thread_fleet_matches_oracle(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="thread"
        ) as fleet:
            fleet.register_model("cnn", model)
            oracle = ClusterRouter(make_nodes())
            oracle.register_model("cnn", model)
            assert_matches_oracle(fleet, oracle, dataset.test_images)
            report = fleet.sync()
            assert report["live_workers"] == [0, 1]
            assert report["audited_nodes"] == 4
            assert sum(report["dispatch_groups"].values()) > 0
            check_ledger_conservation(
                fleet.ledger(),
                [shadow.ledger() for shadow in fleet._shadow_by_id.values()],
            )
            oracle.shutdown()

    def test_coalesced_thread_fleet_matches_oracle(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="thread", coalesce=True
        ) as fleet:
            fleet.register_model("cnn", model)
            oracle = ClusterRouter(make_nodes(), coalesce=True)
            oracle.register_model("cnn", model)
            assert_matches_oracle(fleet, oracle, dataset.test_images, seed=5)
            oracle.shutdown()

    def test_retune_forwards_and_stays_audited(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="thread"
        ) as fleet:
            fleet.register_model("cnn", model)
            submit_mixed(fleet, dataset.test_images, requests=9)
            fleet.drain()
            fleet._shadow_by_id["node-1"].retune(0.8)
            submit_mixed(fleet, dataset.test_images, requests=9, seed=3)
            fleet.drain()
            # The barrier audit cross-checks worker ledgers against the
            # shadows to equality; an unforwarded (or misordered) retune
            # would change the worker's re-programming charges and trip it.
            report = fleet.sync()
            assert report["audited_nodes"] == 4
            assert fleet.worker_ledgers()[1]["node-1"].total_cycles > 0

    def test_metrics_snapshot_merges_worker_families(self, trained):
        dataset, model = trained
        from repro.cluster.instrumentation import attach_cluster_observability

        registry = MetricsRegistry()
        with FleetCluster(
            make_nodes(), workers=2, transport="thread"
        ) as fleet:
            attach_cluster_observability(fleet, registry)
            fleet.register_model("cnn", model)
            submit_mixed(fleet, dataset.test_images, requests=12)
            fleet.drain()
            fleet.sync()
            snapshot = fleet.metrics_snapshot()
            names = set(snapshot["metrics"])
            assert "cluster_requests_total" in names
            assert "fleet_worker_requests_total" in names
            worker_total = sum(
                s["value"]
                for s in snapshot["metrics"]["fleet_worker_requests_total"][
                    "samples"
                ]
            )
            assert worker_total == 12.0
            # Repeated merges must not double-count the worker counters.
            again = fleet.metrics_snapshot()
            assert (
                sum(
                    s["value"]
                    for s in again["metrics"]["fleet_worker_requests_total"][
                        "samples"
                    ]
                )
                == worker_total
            )

    def test_summary_reports_fleet_runtime(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="thread"
        ) as fleet:
            fleet.register_model("cnn", model)
            submit_mixed(fleet, dataset.test_images, requests=6)
            fleet.drain()
            report = fleet.summary()
            assert report["fleet"]["workers"] == 2.0
            assert report["fleet"]["live_workers"] == 2.0
            assert report["fleet"]["worker_crashes"] == 0.0

    def test_result_awaits_predictions(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="thread", flush_every=64
        ) as fleet:
            fleet.register_model("cnn", model)
            request_id = fleet.submit(
                "cnn", dataset.test_images[:3], sla=SLAClass.BEST_EFFORT
            )
            while fleet.dispatch_next() is not None:
                pass
            result = fleet.result(request_id)
            assert np.all(np.asarray(result.predictions) >= 0)

    def test_replay_trace_reports_honest_wall_time(self, trained):
        dataset, model = trained
        from repro.cluster.workload import build_image_pool, poisson_trace

        counts = (2, 4)
        trace = poisson_trace(
            requests=24,
            rate_rps=600.0,
            model_ids=("cnn",),
            image_counts=counts,
            seed=4,
        )
        pool = build_image_pool({"cnn": dataset.test_images}, counts)
        with FleetCluster(
            make_nodes(max_batch_size=64), workers=2, transport="thread"
        ) as fleet:
            fleet.register_model("cnn", model)
            stats = fleet.replay_trace(trace, pool, drain_every=8)
            assert stats["completed"] == stats["requests"] == len(trace)
            assert stats["wall_s"] > 0 and stats["requests_per_s"] > 0


# ---------------------------------------------------------------------- #
# Configuration guards
# ---------------------------------------------------------------------- #
class TestFleetConfiguration:
    def test_more_workers_than_nodes_refused(self):
        with pytest.raises(ConfigurationError, match="workers"):
            FleetCluster(make_nodes(count=2), workers=3, transport="thread")

    def test_unknown_transport_refused(self):
        with pytest.raises(ConfigurationError, match="transport"):
            FleetCluster(make_nodes(), workers=2, transport="fork")

    def test_nodes_must_be_specs_or_cluster_nodes(self):
        with pytest.raises(ConfigurationError):
            FleetCluster(["not-a-node"], workers=1, transport="thread")

    def test_specs_accepted_directly(self, trained):
        specs = [node.spec() for node in make_nodes(count=2)]
        with FleetCluster(specs, workers=2, transport="thread") as fleet:
            assert sorted(fleet._shadow_by_id) == ["node-0", "node-1"]

    def test_unexpected_message_is_a_fleet_error(self, trained):
        with FleetCluster(
            make_nodes(count=2), workers=1, transport="thread"
        ) as fleet:
            with pytest.raises(FleetError, match="unexpected fleet message"):
                fleet._handle_message(fleet._handles[0], "bogus")
            # The handler above is a protocol guard, not a worker death.
            assert fleet._handles[0].alive

    def test_worker_config_is_picklable(self):
        import pickle

        config = WorkerConfig(
            rank=0, specs=tuple(n.spec() for n in make_nodes(count=1))
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.rank == 0 and clone.specs[0].node_id == "node-0"


# ---------------------------------------------------------------------- #
# Worker crash mid-batch: conservation under both recovery paths
# ---------------------------------------------------------------------- #
@pytest.mark.timeout(120)
class TestWorkerCrash:
    def test_thread_crash_mid_batch_conserves_requests(self, trained, tmp_path):
        dataset, model = trained
        # flush_every=1 + a tight in-flight window makes the coordinator
        # notice the death while backlog is still queued — so both
        # recovery paths run: local fills for unacked in-flight groups,
        # router backlog replay (replayed=True) for queued requests.
        with FleetCluster(
            make_nodes(mixed_vdd=False),
            workers=2,
            transport="thread",
            crash_after={1: 3},
            flush_every=1,
            max_inflight=2,
            log_dir=str(tmp_path),
        ) as fleet:
            fleet.register_model("cnn", model)
            ids = submit_mixed(fleet, dataset.test_images, requests=40, seed=5)
            results = fleet.drain()
            assert len(results) == len(ids)  # no request lost or duplicated
            assert sorted(r.request_id for r in results) == sorted(ids)
            assert fleet.worker_crashes == 1
            assert fleet.live_workers == [0]
            assert any(r.replayed for r in results)
            assert fleet.locally_recovered > 0
            for result in results:
                assert np.all(np.asarray(result.predictions) >= 0)
            report = fleet.sync()
            assert report["live_workers"] == [0]
            assert report["audited_nodes"] == 2  # survivors only
            log = (tmp_path / "fleet-worker-1.log").read_text()
            assert "crash drill" in log

    def test_all_workers_dead_strands_backlog_like_all_nodes_crashed(
        self, trained
    ):
        dataset, model = trained
        with FleetCluster(
            make_nodes(count=2, mixed_vdd=False),
            workers=2,
            transport="thread",
            crash_after={0: 0, 1: 0},
            flush_every=1,
            max_inflight=1,
        ) as fleet:
            fleet.register_model("cnn", model)
            ids = submit_mixed(fleet, dataset.test_images, requests=6, seed=2)
            results = fleet.drain()
            assert fleet.live_workers == []
            # Every dead worker fails its shadow nodes, so with nobody
            # left the un-dispatched backlog strands — exactly the
            # single-process router's all-nodes-crashed semantics.  What
            # *was* dispatched before the deaths is recovered locally
            # with real predictions; nothing is silently dropped.
            assert 0 < len(results) < len(ids)
            assert fleet.locally_recovered > 0
            assert fleet.queue_depth() == len(ids) - len(results)
            for result in results:
                assert np.all(np.asarray(result.predictions) >= 0)

    def test_crashed_fleet_predictions_match_oracle(self, trained):
        dataset, model = trained
        oracle_nodes = make_nodes(mixed_vdd=False)
        oracle = ClusterRouter(oracle_nodes)
        oracle.register_model("cnn", model)
        ids = submit_mixed(oracle, dataset.test_images, requests=20, seed=9)
        by_id = {r.request_id: r for r in oracle.drain()}
        with FleetCluster(
            make_nodes(mixed_vdd=False),
            workers=2,
            transport="thread",
            crash_after={1: 2},
            flush_every=1,
            max_inflight=2,
        ) as fleet:
            fleet.register_model("cnn", model)
            submit_mixed(fleet, dataset.test_images, requests=20, seed=9)
            results = fleet.drain()
            assert fleet.worker_crashes == 1
            # Timing (and so ledgers) legitimately differ once nodes fail
            # mid-run, but every prediction — locally recovered, replayed
            # or worker-served — must still be the model's exact output.
            for result in results:
                assert np.array_equal(
                    result.predictions, by_id[result.request_id].predictions
                )
        oracle.shutdown()


# ---------------------------------------------------------------------- #
# Spawn transport: real processes, real shared memory
# ---------------------------------------------------------------------- #
@pytest.mark.timeout(300)
class TestSpawnTransport:
    def test_spawn_fleet_matches_oracle(self, trained):
        dataset, model = trained
        with FleetCluster(
            make_nodes(), workers=2, transport="spawn"
        ) as fleet:
            fleet.register_model("cnn", model)
            oracle = ClusterRouter(make_nodes())
            oracle.register_model("cnn", model)
            assert_matches_oracle(
                fleet, oracle, dataset.test_images, requests=20
            )
            report = fleet.sync()
            assert report["live_workers"] == [0, 1]
            assert fleet.worker_crashes == 0
            oracle.shutdown()

    def test_spawn_worker_hard_crash_conserves_requests(self, trained, tmp_path):
        dataset, model = trained
        with FleetCluster(
            make_nodes(mixed_vdd=False),
            workers=2,
            transport="spawn",
            crash_after={1: 2},
            flush_every=1,
            max_inflight=2,
            log_dir=str(tmp_path),
        ) as fleet:
            fleet.register_model("cnn", model)
            ids = submit_mixed(fleet, dataset.test_images, requests=24, seed=5)
            results = fleet.drain()
            assert len(results) == len(ids)
            assert fleet.worker_crashes == 1
            assert fleet.live_workers == [0]
            for result in results:
                assert np.all(np.asarray(result.predictions) >= 0)
            assert "crash drill" in (
                tmp_path / "fleet-worker-1.log"
            ).read_text()
