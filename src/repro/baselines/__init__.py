"""Baseline architectures the paper compares against.

* :mod:`bitserial` — the 8T-transposable-cell bit-serial compute SRAM of
  reference [2] (Wang et al., JSSC 2019), used as the cycle-count baseline of
  Fig. 9 and as a comparison column of Table III.
* :mod:`wlud`      — a conventional 6T BL-computing macro that relies on
  word-line under-drive instead of the proposed short pulse + BL boosting
  (the "conventional" curves of Fig. 2 and Fig. 7a).
* :mod:`logicfa`   — a logic-gate ripple-carry full adder, the baseline of the
  Fig. 7(b) critical-path comparison.
* :mod:`processor` — a processor-centric execution model (SRAM read, bus
  traversal, ALU, write-back) quantifying the data-movement cost the paper's
  introduction argues against.
* :mod:`reference` — a pure-Python golden ALU used by the test-suite to check
  every in-memory result bit-exactly.
"""

from repro.baselines.bitserial import BitSerialConfig, BitSerialIMC
from repro.baselines.logicfa import LogicGateRippleAdder
from repro.baselines.processor import ProcessorCentricBaseline, ProcessorCostParameters
from repro.baselines.reference import ReferenceALU
from repro.baselines.wlud import WLUDMacroModel

__all__ = [
    "BitSerialConfig",
    "BitSerialIMC",
    "LogicGateRippleAdder",
    "ProcessorCentricBaseline",
    "ProcessorCostParameters",
    "ReferenceALU",
    "WLUDMacroModel",
]
