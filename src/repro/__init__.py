"""repro — reproduction of "Bit Parallel 6T SRAM In-memory Computing with
Reconfigurable Bit-Precision" (Lee et al., DAC 2020).

The package is organised into:

* :mod:`repro.core`      — the bit-parallel IMC macro, banked memory, opcode set
* :mod:`repro.circuits`  — behavioural circuit models (BL computing, boosting,
  read disturb, Monte-Carlo, delay/energy/frequency)
* :mod:`repro.tech`      — calibrated 28 nm technology profile and constants
* :mod:`repro.baselines` — conventional WLUD and bit-serial IMC baselines
* :mod:`repro.dnn`       — quantised-MLP inference on the IMC macro
* :mod:`repro.analysis`  — metrics, sweeps and the per-figure experiment drivers
* :mod:`repro.reliability` — variation-aware chip binning + fault injection

Quickstart::

    from repro import IMCMacro, Opcode

    macro = IMCMacro()                  # 128x128, 8-bit precision, 0.9 V
    print(macro.add(100, 55))           # 155, computed on the bit lines
    print(macro.multiply(173, 201))     # 34773, N+2 = 10 cycles
    macro.set_precision(4)              # reconfigure the carry chain
    print(macro.multiply(11, 13))       # 143
"""

from repro.core import (
    ChipDispatchResult,
    IMCBank,
    IMCChip,
    IMCMacro,
    IMCMemory,
    MacroConfig,
    MacroStatistics,
    Opcode,
    OperationResult,
    SUPPORTED_PRECISIONS,
    TiledMatmulEngine,
    VectorKernels,
    cycles_for,
)
from repro.circuits import (
    CycleDelayModel,
    FrequencyModel,
    MonteCarloEngine,
    OperationEnergyModel,
    ReadDisturbModel,
    WordlineScheme,
)
from repro.reliability import ChipBin, ChipBinner, FaultEvent, FaultKind, FaultPlan
from repro.tech import (
    CALIBRATED_28NM,
    MacroCalibration,
    OperatingPoint,
    ProcessCorner,
    TechnologyProfile,
)

__version__ = "1.0.0"

__all__ = [
    "IMCMacro",
    "IMCBank",
    "IMCChip",
    "ChipDispatchResult",
    "IMCMemory",
    "VectorKernels",
    "MacroConfig",
    "MacroStatistics",
    "Opcode",
    "OperationResult",
    "SUPPORTED_PRECISIONS",
    "TiledMatmulEngine",
    "cycles_for",
    "CycleDelayModel",
    "FrequencyModel",
    "MonteCarloEngine",
    "OperationEnergyModel",
    "ReadDisturbModel",
    "WordlineScheme",
    "CALIBRATED_28NM",
    "MacroCalibration",
    "OperatingPoint",
    "ProcessCorner",
    "TechnologyProfile",
    "ChipBin",
    "ChipBinner",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "__version__",
]
