"""Columnar discrete-event kernel for the cluster router.

:class:`EventKernel` replays the router's virtual-time serving loop —
admission, SLA placement, the lazy dispatch heap, fault injection, parked
backlog replay, coalescing — over *columnar* request ledgers instead of
per-request Python object churn.  ``ClusterRouter(kernel="columnar")``
delegates to it; the default object router stays the bit-exactness oracle
(the same pattern the per-lane macro references use).

The fidelity contract ("bit-identical") covers every externally observable
number: merged ledgers (cycles *and* float energy), per-request trace rows,
telemetry aggregates, placement decisions, fault logs, and request
conservation counters, in both EXACT and ANALYTIC execution modes, with
fault plans and coalescing.  Two mechanisms make that possible at >20x the
object router's request rate:

* **Deferred charge replay.**  In ANALYTIC mode a warm dispatch's engine
  charges are a fixed template per (model, slice size): the same
  :meth:`~repro.core.matmul.TiledMatmulEngine.charge_layers` rows in the
  same order.  The kernel buffers the per-node *sequence* of slice
  signatures and flushes it with ``np.add.accumulate`` folds — a strict
  sequential left fold, so every float accumulator receives the identical
  sequence of additions the object router performs, add for add.  Integer
  counters are batch-added (exact), LRU order is restored from last-touch
  order, and per-dispatch energies are recovered from the accumulator's
  slice boundaries exactly as ``ledger_since`` subtracts them.
* **Columnar telemetry.**  :class:`ColumnarTelemetry` stores one tuple per
  trace (energies filled at flush) and serves every aggregate with the
  same left-fold order ``sum()`` uses; ``retain_traces=False`` folds
  chunks into running aggregates and drops the rows, which is what keeps a
  10^8-request replay in flat memory.

Anything the fast path cannot replicate bit-exactly — cold programming,
EXACT mode, custom scheduler subclasses, execution failures — flushes the
deferred state and falls back to the very same node/scheduler calls the
object router makes, so the slow path *is* the oracle.

Direct node-level reads (``node.ledger()`` mid-run) may observe deferred
charges; any router-level read (``ledger()``, ``summary()``, telemetry
aggregates, ``drain()`` results) flushes first.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import repeat
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.node import ClusterNode, ExecutionMode, NodeState
from repro.cluster.scheduler import (
    ClusterRequest,
    NoActiveNodesError,
    PlacementDecision,
    SLAClass,
    SLAScheduler,
)
from repro.cluster.telemetry import RequestTrace
from repro.core import Opcode
from repro.errors import ConfigurationError
from repro.reliability.faults import FaultEvent, FaultKind
from repro.utils.validation import check_positive

#: ``sla_indices`` decoding used by workload traces (= workload.SLA_ORDER).
_SLA_VALUES = (
    SLAClass.LATENCY.value,
    SLAClass.THROUGHPUT.value,
    SLAClass.BEST_EFFORT.value,
)

__all__ = ["ColumnarTelemetry", "EventKernel"]


def _fold(start: float, parts: List[np.ndarray]) -> float:
    """Strict sequential left fold ``start + p[0] + p[1] + ...`` (bit-exact).

    ``np.add.accumulate`` on float64 applies the same rounding sequence a
    Python ``+=`` loop does, so the result equals the object router's
    accumulator value bit for bit.
    """
    lead = np.empty(1, dtype=np.float64)
    lead[0] = start
    return float(np.add.accumulate(np.concatenate([lead] + parts))[-1])


class ColumnarTelemetry:
    """Drop-in :class:`~repro.cluster.telemetry.ClusterTelemetry` replacement
    storing traces as columnar rows instead of dataclass objects.

    The windowed reactive signals (recent miss rate, model heat, recent SLA
    presence) are maintained online and never require a flush; whole-history
    aggregates flush the kernel's deferred energies first and then fold the
    columns in exactly the order the object implementation's ``sum()`` folds
    its trace list.  With ``retain_traces=False`` flushed rows are folded
    into running aggregates and dropped (flat memory); only ``summary()``,
    ``deadline_miss_rate``, ``request_count``, ``total_energy_j`` and the
    recent signals stay available in that mode.
    """

    #: RequestTrace field order, minus energy_j (deferred; parallel column).
    _ROW_FIELDS = 18

    #: Rows buffered in aggregate mode before they are folded into the
    #: running aggregates and dropped (the flat-memory flush cadence).
    _AGG_FLUSH_ROWS = 65536

    def __init__(self, window: int = 32, retain_traces: bool = True) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.retain_traces = retain_traces
        self._rows: List[tuple] = []
        self._energy: List[Optional[float]] = []
        self._recent: Deque[Tuple[str, str, bool, bool]] = deque(maxlen=window)
        self._recent_model_counts: Dict[str, int] = {}
        #: Lifetime count of deadline-carrying traces (the autoscaler's
        #: "fresh latency traffic" signal without slicing the trace list).
        self.deadline_trace_count = 0
        self._flush_hook: Optional[Callable[[], None]] = None
        #: Optional :class:`repro.cluster.instrumentation.ClusterInstrumentation`
        #: folded into at flush boundaries (vectorised; never per-row).
        self.instrumentation = None
        #: Rows already folded into the instrumentation registry.
        self._obs_folded = 0
        #: request_id → root span id for sampled requests (spans are
        #: emitted retroactively during the instrumentation fold).
        self._span_by_request: Dict[int, int] = {}
        #: Materialized RequestTrace cache (extends incrementally).
        self._trace_objs: List[RequestTrace] = []
        self._columns_stamp = -1
        self._columns: Dict[str, np.ndarray] = {}
        # Aggregate-mode running folds (exact sequential continuations).
        self._agg_count = 0
        self._agg_images = 0
        self._agg_energy = 0.0
        self._agg_latency = 0.0
        self._agg_affinity = 0
        self._agg_programmed = 0
        self._agg_analytic = 0
        self._agg_coalesced = 0
        self._agg_spot = 0
        self._agg_replayed = 0
        self._agg_sla_count: Dict[str, int] = {}
        self._agg_eligible: Dict[Optional[str], int] = {}
        self._agg_missed: Dict[Optional[str], int] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _note(self, model_id: str, sla: str, has_deadline: bool, missed: bool) -> None:
        """Maintain the sliding window exactly as the object telemetry does."""
        counts = self._recent_model_counts
        recent = self._recent
        if len(recent) == self.window:
            evicted = recent[0][0]
            remaining = counts[evicted] - 1
            if remaining:
                counts[evicted] = remaining
            else:
                del counts[evicted]
        recent.append((model_id, sla, has_deadline, missed))
        counts[model_id] = counts.get(model_id, 0) + 1
        if has_deadline:
            self.deadline_trace_count += 1

    def record_row(self, row: tuple, energy: Optional[float]) -> int:
        """Append one trace row; returns its index (for deferred energy).

        ``row`` is the :class:`RequestTrace` field tuple *without*
        ``energy_j``: (request_id, model_id, node_id, sla, images,
        arrival_s, start_s, finish_s, compute_s, deadline_s,
        deadline_missed, affinity_hit, programmed, feasible_at_admission,
        execution_mode, coalesced, spot_checked, replayed).
        """
        index = len(self._rows)
        self._rows.append(row)
        self._energy.append(energy)
        self._note(row[1], row[3], row[9] is not None, row[10])
        return index

    def record_rows_batch(self, rows: List[tuple]) -> int:
        """Append a chunk of trace rows (energies deferred); returns the
        index of the first appended row.

        The batch entry point of the kernel's turbo replay: one call per
        dispatch chunk instead of one per request.  The sliding window ends
        in the same state sequential :meth:`record_row` calls leave it in —
        when the chunk covers the whole window only the tail can survive,
        so the window is rebuilt from the tail directly.
        """
        base = len(self._rows)
        self._rows.extend(rows)
        self._energy.extend([None] * len(rows))
        if len(rows) >= self.window:
            recent = self._recent
            recent.clear()
            recent.extend(
                (r[1], r[3], r[9] is not None, r[10])
                for r in rows[len(rows) - self.window :]
            )
            counts: Dict[str, int] = {}
            for item in recent:
                counts[item[0]] = counts.get(item[0], 0) + 1
            self._recent_model_counts = counts
            self.deadline_trace_count += sum(
                1 for r in rows if r[9] is not None
            )
        else:
            for r in rows:
                self._note(r[1], r[3], r[9] is not None, r[10])
        return base

    def maybe_fold(self) -> None:
        """Fold-and-drop when the aggregate-mode row buffer grows large.

        Called at dispatch-chunk boundaries (never mid-dispatch: folding
        resolves the kernel's deferred energies first, which must not run
        while a dispatch is still appending its rows).  A no-op with
        retained traces or below the buffering threshold.
        """
        if not self.retain_traces and len(self._rows) >= self._AGG_FLUSH_ROWS:
            self._flush()

    def set_energy(self, index: int, energy: float) -> None:
        """Fill a deferred energy share (called by the kernel's flush)."""
        self._energy[index] = energy

    def set_energy_batch(
        self, indexes: Sequence[int], energies: Sequence[float]
    ) -> None:
        """Fill many deferred energy shares in one pass."""
        column = self._energy
        for index, energy in zip(indexes, energies):
            column[index] = energy

    def record(self, trace: RequestTrace) -> None:
        """Object-telemetry-compatible entry point (tests, manual use)."""
        self.record_row(
            (
                trace.request_id, trace.model_id, trace.node_id, trace.sla,
                trace.images, trace.arrival_s, trace.start_s, trace.finish_s,
                trace.compute_s, trace.deadline_s, trace.deadline_missed,
                trace.affinity_hit, trace.programmed,
                trace.feasible_at_admission, trace.execution_mode,
                trace.coalesced, trace.spot_checked, trace.replayed,
            ),
            trace.energy_j,
        )

    def attach_instrumentation(self, instrumentation) -> None:
        """Fold future flushes into a cluster instrumentation registry.

        Rows recorded before attachment are folded on the next flush too
        (the cursor starts at the current fold position, which is zero on
        a fresh telemetry).
        """
        self.instrumentation = instrumentation

    # ------------------------------------------------------------------ #
    # Flush / aggregate-mode folding
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Resolve deferred energies (and fold+drop rows in aggregate mode)."""
        if self._flush_hook is not None:
            self._flush_hook()
        if self.retain_traces or not self._rows:
            # Retained-trace mode: no aggregate fold runs, so the
            # observability fold (if attached) walks the unfolded tail on
            # its own.  Energies are resolved by the hook above, so the
            # fold sees final values.
            if self.instrumentation is not None and len(self._rows) > self._obs_folded:
                spans = self.instrumentation.fold_rows(
                    self._rows[self._obs_folded :],
                    self._energy[self._obs_folded :],
                )
                if spans:
                    self._span_by_request.update(spans)
                self._obs_folded = len(self._rows)
            return
        rows = self._rows
        cols = list(zip(*rows))
        energy = np.asarray(self._energy, dtype=np.float64)
        images = np.asarray(cols[4], dtype=np.int64)
        arrival = np.asarray(cols[5], dtype=np.float64)
        finish = np.asarray(cols[7], dtype=np.float64)
        latency = finish - arrival
        missed = np.asarray(cols[10], dtype=bool)
        sla_arr = np.asarray(cols[3], dtype=object)
        sla_masks = {sla: sla_arr == sla for sla in sorted(set(cols[3]))}
        coalesced_n = sum(1 for c in cols[15] if c > 1)
        replayed_n = int(np.count_nonzero(cols[17]))
        if self.instrumentation is not None:
            # One vectorised observability fold per flush, sharing the
            # transpose and column arrays the aggregate fold below needs
            # anyway — the sharing is what keeps the instrumented replay
            # inside the ≤5% overhead gate.  The fold cursor is always at
            # zero in aggregate mode (rows are dropped after every flush).
            spans = self.instrumentation.fold_columns(
                cols,
                energy=energy,
                images=images,
                arrival=arrival,
                finish=finish,
                latency=latency,
                missed=missed,
                sla_masks=sla_masks,
                coalesced_n=coalesced_n,
                replayed_n=replayed_n,
            )
            if spans:
                self._span_by_request.update(spans)
        self._agg_count += len(rows)
        self._agg_images += int(images.sum())
        self._agg_energy = _fold(self._agg_energy, [energy])
        self._agg_latency = _fold(self._agg_latency, [latency])
        self._agg_affinity += int(np.count_nonzero(cols[11]))
        self._agg_programmed += int(np.count_nonzero(cols[12]))
        self._agg_analytic += sum(1 for m in cols[14] if m == "analytic")
        self._agg_coalesced += coalesced_n
        self._agg_spot += int(np.count_nonzero(cols[16]))
        self._agg_replayed += replayed_n
        has_deadline = np.asarray([d is not None for d in cols[9]], dtype=bool)
        for sla, mask in sla_masks.items():
            self._agg_sla_count[sla] = self._agg_sla_count.get(sla, 0) + int(
                mask.sum()
            )
            eligible = mask & has_deadline
            if eligible.any():
                self._agg_eligible[sla] = self._agg_eligible.get(sla, 0) + int(
                    eligible.sum()
                )
                self._agg_missed[sla] = self._agg_missed.get(sla, 0) + int(
                    (eligible & missed).sum()
                )
        self._agg_eligible[None] = self._agg_eligible.get(None, 0) + int(
            has_deadline.sum()
        )
        self._agg_missed[None] = self._agg_missed.get(None, 0) + int(
            (has_deadline & missed).sum()
        )
        self._rows = []
        self._energy = []
        self._trace_objs = []
        self._obs_folded = 0
        self._columns_stamp = -1

    def _need_rows(self, what: str) -> None:
        if not self.retain_traces:
            raise ConfigurationError(
                f"{what} needs retained traces; this telemetry was built "
                "with retain_traces=False (aggregates only)"
            )

    def _cols(self) -> Dict[str, np.ndarray]:
        """Columnar views of the retained rows (cached per append stamp)."""
        if self._columns_stamp != len(self._rows):
            rows = self._rows
            cols = list(zip(*rows)) if rows else [[] for _ in range(self._ROW_FIELDS)]
            self._columns = {
                "sla": np.asarray(cols[3], dtype=object),
                "model": np.asarray(cols[1], dtype=object),
                "images": np.asarray(cols[4], dtype=np.int64),
                "arrival": np.asarray(cols[5], dtype=np.float64),
                "finish": np.asarray(cols[7], dtype=np.float64),
                "has_deadline": np.asarray(
                    [d is not None for d in cols[9]], dtype=bool
                ),
                "missed": np.asarray(cols[10], dtype=bool),
                "affinity": np.asarray(cols[11], dtype=bool),
            }
            self._columns_stamp = len(self._rows)
        return self._columns

    def _energy_col(self) -> np.ndarray:
        return np.asarray(self._energy, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Reactive signals (online; no flush needed)
    # ------------------------------------------------------------------ #
    def recent_deadline_miss_rate(self, sla: Optional[str] = None) -> float:
        eligible = [
            t for t in self._recent if t[2] and (sla is None or t[1] == sla)
        ]
        if not eligible:
            return 0.0
        return sum(t[3] for t in eligible) / len(eligible)

    def recent_model_dispatches(self, model_id: str) -> int:
        return self._recent_model_counts.get(model_id, 0)

    def recent_has_sla(self, sla: str) -> bool:
        return any(t[1] == sla for t in self._recent)

    # ------------------------------------------------------------------ #
    # Whole-history aggregates
    # ------------------------------------------------------------------ #
    @property
    def trace_count(self) -> int:
        """Lifetime number of recorded traces (cheap; no flush)."""
        return self._agg_count + len(self._rows)

    @property
    def traces(self) -> List[RequestTrace]:
        """Materialized trace objects (flushes deferred energies first)."""
        self._need_rows("traces")
        self._flush()
        built = len(self._trace_objs)
        if built < len(self._rows):
            rows = self._rows
            energy = self._energy
            span_ids = self._span_by_request
            for i in range(built, len(rows)):
                r = rows[i]
                self._trace_objs.append(
                    RequestTrace(
                        r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7], r[8],
                        energy[i], r[9], r[10], r[11], r[12], r[13], r[14],
                        r[15], r[16], r[17], span_ids.get(r[0]),
                    )
                )
        return self._trace_objs

    def traces_for(
        self, sla: Optional[str] = None, model_id: Optional[str] = None
    ) -> List[RequestTrace]:
        return [
            t
            for t in self.traces
            if (sla is None or t.sla == sla)
            and (model_id is None or t.model_id == model_id)
        ]

    def request_count(self, sla: Optional[str] = None) -> int:
        """Lifetime trace count, optionally restricted to one SLA class."""
        if sla is None:
            return self.trace_count
        self._flush()
        cols = self._cols()
        folded = self._agg_sla_count.get(sla, 0)
        if len(self._rows):
            folded += int(np.count_nonzero(cols["sla"] == sla))
        return folded

    def deadline_miss_rate(self, sla: Optional[str] = None) -> float:
        self._flush()
        eligible = self._agg_eligible.get(sla, 0) if sla is not None else (
            self._agg_eligible.get(None, 0)
        )
        missed = self._agg_missed.get(sla, 0) if sla is not None else (
            self._agg_missed.get(None, 0)
        )
        if self._rows:
            cols = self._cols()
            mask = cols["has_deadline"]
            if sla is not None:
                mask = mask & (cols["sla"] == sla)
            eligible += int(np.count_nonzero(mask))
            missed += int(np.count_nonzero(mask & cols["missed"]))
        if not eligible:
            return 0.0
        return missed / eligible

    def total_energy_j(self) -> float:
        """Lifetime energy fold over the trace log (== sum of energies)."""
        self._flush()
        if not self._rows:
            return self._agg_energy if self._agg_count else 0.0
        return _fold(self._agg_energy, [self._energy_col()])

    def energy_per_image_j(self, sla: Optional[str] = None) -> float:
        self._need_rows("energy_per_image_j")
        self._flush()
        cols = self._cols()
        if sla is None:
            images = int(cols["images"].sum()) if len(self._rows) else 0
            energy = self._energy_col()
        else:
            mask = cols["sla"] == sla
            images = int(cols["images"][mask].sum()) if len(self._rows) else 0
            energy = self._energy_col()[mask]
        if not images:
            return 0.0
        return _fold(0.0, [energy]) / images

    def _latencies(self, sla: Optional[str]) -> np.ndarray:
        cols = self._cols()
        latency = cols["finish"] - cols["arrival"]
        if sla is not None:
            latency = latency[cols["sla"] == sla]
        return latency

    def latency_quantiles_s(
        self,
        quantiles=(0.5, 0.9, 0.99, 0.999),
        sla: Optional[str] = None,
    ) -> Dict[float, float]:
        self._need_rows("latency_quantiles_s")
        self._flush()
        latencies = np.sort(self._latencies(sla))
        if not len(latencies):
            return {q: 0.0 for q in quantiles}
        last = len(latencies) - 1
        return {
            q: float(latencies[min(last, int(q * len(latencies)))])
            for q in quantiles
        }

    def mean_latency_s(self, sla: Optional[str] = None) -> float:
        self._flush()
        if sla is None and not self.retain_traces:
            count = self.trace_count
            return self._agg_latency / count if count else 0.0
        self._need_rows("mean_latency_s(sla=...)")
        latencies = self._latencies(sla)
        if not len(latencies):
            return 0.0
        return _fold(0.0, [latencies]) / len(latencies)

    def summary(self) -> Dict[str, float]:
        self._flush()
        cols = self._cols()
        n = len(self._rows)
        count = self._agg_count + n
        images = self._agg_images + (int(cols["images"].sum()) if n else 0)
        energy = self.total_energy_j() if count else 0.0
        affinity = self._agg_affinity + (
            int(np.count_nonzero(cols["affinity"])) if n else 0
        )
        rows = self._rows
        programmed = self._agg_programmed + sum(1 for r in rows if r[12])
        analytic = self._agg_analytic + sum(
            1 for r in rows if r[14] == "analytic"
        )
        coalesced = self._agg_coalesced + sum(1 for r in rows if r[15] > 1)
        spot = self._agg_spot + sum(1 for r in rows if r[16])
        replayed = self._agg_replayed + sum(1 for r in rows if r[17])
        if self.retain_traces:
            mean_latency = (
                _fold(0.0, [self._latencies(None)]) / count if count else 0.0
            )
        else:
            mean_latency = self._agg_latency / count if count else 0.0
        return {
            "requests": float(count),
            "images": float(images),
            "energy_j": energy,
            "mean_latency_s": mean_latency,
            "deadline_miss_rate": self.deadline_miss_rate(),
            "affinity_hit_rate": (affinity / count if count else 0.0),
            "programmed_dispatches": float(programmed),
            "analytic_requests": float(analytic),
            "coalesced_requests": float(coalesced),
            "spot_checked_requests": float(spot),
            "replayed_requests": float(replayed),
        }


# ---------------------------------------------------------------------- #
# Deferred charge replay (the analytic fast path's ledger machinery)
# ---------------------------------------------------------------------- #
class _SliceSig:
    """Charge template of one ``charge_layers`` call: (model, slice size).

    Holds exactly the values the engine's per-row loop would add, laid out
    for vectorized sequential folds at flush time.  Built once per
    (node, model, geometry, slice size) from the *resident* cache entries,
    and discarded whenever the fleet version bumps (retune, programming).
    """

    __slots__ = (
        "e9", "n_rows", "per_macro", "macro_order", "critical", "mac_count",
        "n_layers", "layer_ids",
    )

    def __init__(self, node: ClusterNode, model_id: str, shape_tail: tuple,
                 size: int) -> None:
        engine = node.engine
        specs = node._layer_charge_specs(model_id, (size,) + shape_tail)
        rows_all: List[tuple] = []
        mac_count = 0
        layer_ids: List[str] = []
        for factor, _codes, layer_id in specs:
            batch = factor * size
            entry = engine.cache.peek(layer_id)
            rows_all.extend(engine._charge_rows_for(entry, batch))
            inner, outer = entry.shape
            mac_count += batch * inner * outer
            layer_ids.append(layer_id)
        self.e9 = np.array([r[9] for r in rows_all], dtype=np.float64)
        self.n_rows = len(rows_all)
        # Per-macro template, keyed in *first-touch* order (dict insertion
        # order), so flush can create stats records in the order the
        # object path's defaultdict would.
        per_macro: Dict[int, list] = {}
        for r in rows_all:
            d = per_macro.get(r[0])
            if d is None:
                # [mult_e list, add_e list, mult_inv, words, mult_cyc,
                #  add_cyc, access, cycsum]
                d = [[], [], 0, 0, 0, 0, 0, 0]
                per_macro[r[0]] = d
            d[0].append(r[4])
            d[1].append(r[6])
            d[2] += r[1]
            d[3] += r[2]
            d[4] += r[3]
            d[5] += r[5]
            d[6] += r[7]
            d[7] += r[8]
        self.per_macro = {
            m: (
                np.array(d[0], dtype=np.float64),
                np.array(d[1], dtype=np.float64),
                d[2], d[3], d[4], d[5], d[6], d[7],
            )
            for m, d in per_macro.items()
        }
        self.macro_order = list(per_macro)
        self.critical = max(
            (d[7] for d in self.per_macro.values()), default=0
        )
        self.mac_count = mac_count
        self.n_layers = len(specs)
        self.layer_ids = layer_ids


class _DispatchSig:
    """Slice sequence + cached compute time of one (model, total images)."""

    __slots__ = ("slices", "batches", "critical_total", "_compute", "_cycle")

    def __init__(self, slices: List[_SliceSig], cycle_time: float) -> None:
        self.slices = slices
        self.batches = len(slices)
        self.critical_total = sum(s.critical for s in slices)
        self._cycle = cycle_time
        self._compute: Dict[float, float] = {}

    def compute_s(self, degrade: float) -> float:
        """The exact ``compute += critical * cycle * degrade`` fold."""
        cached = self._compute.get(degrade)
        if cached is None:
            cached = 0.0
            cycle = self._cycle
            for s in self.slices:
                cached += s.critical * cycle * degrade
            self._compute[degrade] = cached
        return cached


class _ChargeBuffer:
    """Per-node deferred charge state: the slice-event sequence."""

    __slots__ = (
        "engine", "dispatches", "row_indexes", "ordinals", "fractions",
        "any_fraction", "macros_seen",
    )

    def __init__(self, engine) -> None:
        self.engine = engine
        #: One entry per buffered dispatch: its ``_SliceSig`` pattern list
        #: (the dsig's own list object — distinct patterns are few, so the
        #: flush dedupes them by identity and replays vectorized).
        self.dispatches: List[List[_SliceSig]] = []
        #: Deferred telemetry rows, as parallel columns:
        #: row index / dispatch ordinal / coalesced fraction (or None).
        self.row_indexes: List[int] = []
        self.ordinals: List[int] = []
        self.fractions: List[Optional[float]] = []
        self.any_fraction = False
        #: Macros whose MULT/ADD records were already created on this chip.
        self.macros_seen: Set[int] = set()

    def reset(self) -> None:
        self.dispatches = []
        self.row_indexes = []
        self.ordinals = []
        self.fractions = []
        self.any_fraction = False


def _flush_buffer(node: ClusterNode, buf: _ChargeBuffer, telemetry) -> None:
    """Apply a node's buffered charge sequence to its real ledgers.

    The buffer holds one slice-*pattern* reference per dispatch and the
    distinct patterns are few (one per warm (model, batch) pair), so the
    slice event sequence is never materialized: every float accumulator
    receives its additions through sequential ``np.add.accumulate`` folds
    over pattern segments gathered in dispatch order — the identical
    increment sequence, and therefore the identical rounding sequence, the
    object path's per-row ``+=`` loops apply — while integer counters are
    batch-added (exact) and LRU order is restored from the last-touch
    order of the event sequence.
    """
    dispatches = buf.dispatches
    if not dispatches:
        return
    engine = buf.engine
    if node.engine is not engine:  # pragma: no cover - guarded by hooks
        raise ConfigurationError(
            f"node {node.node_id!r} was retuned with deferred charges "
            "pending; retune through the router/autoscaler hooks"
        )
    # --- distinct patterns + per-dispatch pattern ids ------------------- #
    pattern_index: Dict[int, int] = {}
    patterns: List[list] = []
    pids: List[int] = []
    papp = pids.append
    for pattern in dispatches:
        i = pattern_index.get(id(pattern))
        if i is None:
            i = len(patterns)
            pattern_index[id(pattern)] = i
            patterns.append(pattern)
        papp(i)
    ndisp = len(pids)
    npat = len(patterns)
    pid_arr = np.asarray(pids, dtype=np.intp)
    pattern_counts = np.bincount(pid_arr, minlength=npat)
    _, first_disp = np.unique(pid_arr, return_index=True)
    _, rev = np.unique(pid_arr[::-1], return_index=True)
    last_disp = ndisp - 1 - rev

    def gather(flat: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """Concatenate per-pattern ``flat`` segments in dispatch order."""
        base = np.concatenate(([0], np.cumsum(lens)[:-1]))
        counts = lens[pid_arr]
        total = int(counts.sum())
        ends = np.cumsum(counts)
        return flat[
            np.repeat(base[pid_arr] - (ends - counts), counts)
            + np.arange(total)
        ]

    # --- global energy accumulator + per-slice boundary deltas ---------- #
    empty_f = np.empty(0, dtype=np.float64)
    pat_e9 = [
        np.concatenate([s.e9 for s in p]) if p else empty_f
        for p in patterns
    ]
    e9_lens = np.array([len(v) for v in pat_e9], dtype=np.intp)
    e9_flat = np.concatenate(pat_e9) if npat > 1 else pat_e9[0]
    lead = np.empty(1, dtype=np.float64)
    lead[0] = engine._energy_acc
    full = np.add.accumulate(
        np.concatenate((lead, gather(e9_flat, e9_lens)))
    )
    engine._energy_acc = float(full[-1])
    pat_nrows = [
        np.array([s.n_rows for s in p], dtype=np.intp) for p in patterns
    ]
    nrows_lens = np.array([len(v) for v in pat_nrows], dtype=np.intp)
    nrows_flat = np.concatenate(pat_nrows) if npat > 1 else pat_nrows[0]
    slice_nrows = gather(nrows_flat, nrows_lens)
    slices_per_disp = nrows_lens[pid_arr]
    bounds = np.cumsum(slice_nrows)
    acc_at = full[bounds]
    prev = np.concatenate((full[:1], acc_at[:-1]))
    slice_deltas = acc_at - prev
    # --- per-record energy folds + record creation order ---------------- #
    macros = engine._macros
    mult_op = Opcode.MULT
    add_op = Opcode.ADD
    seen = buf.macros_seen
    macro_mult: Dict[int, list] = {}
    macro_add: Dict[int, list] = {}
    first_key: Dict[int, tuple] = {}
    for i, p in enumerate(patterns):
        fd = int(first_disp[i])
        # macro -> (mult arrays, add arrays), first-touch order & slice
        # order within this pattern.
        local: Dict[int, tuple] = {}
        for s in p:
            pm = s.per_macro
            for m in s.macro_order:
                d = pm[m]
                lists = local.get(m)
                if lists is None:
                    local[m] = ([d[0]], [d[1]])
                else:
                    lists[0].append(d[0])
                    lists[1].append(d[1])
        for pos, (m, lists) in enumerate(local.items()):
            key = (fd, pos)
            cur = first_key.get(m)
            if cur is None:
                first_key[m] = key
                macro_mult[m] = [empty_f] * npat
                macro_add[m] = [empty_f] * npat
            elif key < cur:
                first_key[m] = key
            macro_mult[m][i] = (
                np.concatenate(lists[0]) if len(lists[0]) > 1
                else lists[0][0]
            )
            macro_add[m][i] = (
                np.concatenate(lists[1]) if len(lists[1]) > 1
                else lists[1][0]
            )
    # First-ever touches create the MULT then ADD records exactly where
    # the object path's first row would have (global first-touch order).
    for _key, m in sorted(
        (key, m) for m, key in first_key.items() if m not in seen
    ):
        seen.add(m)
        stats = macros[m].stats
        stats.records[mult_op]
        stats.records[add_op]
    for m, mult_parts in macro_mult.items():
        stats = macros[m].stats
        lens = np.array([len(v) for v in mult_parts], dtype=np.intp)
        flat = np.concatenate(mult_parts) if npat > 1 else mult_parts[0]
        record = stats.records[mult_op]
        record.energy_j = _fold(record.energy_j, [gather(flat, lens)])
        add_parts = macro_add[m]
        lens = np.array([len(v) for v in add_parts], dtype=np.intp)
        flat = np.concatenate(add_parts) if npat > 1 else add_parts[0]
        record = stats.records[add_op]
        record.energy_j = _fold(record.energy_j, [gather(flat, lens)])
    # --- integer counters (order-free: batch by signature occurrence) --- #
    sig_counts: Dict[int, List] = {}
    for i, p in enumerate(patterns):
        c = int(pattern_counts[i])
        for s in p:
            item = sig_counts.get(id(s))
            if item is None:
                sig_counts[id(s)] = [s, c]
            else:
                item[1] += c
    acc = engine._macro_cycle_acc
    counters = engine.counters
    cache = engine.cache
    entries = cache._entries
    for s, count in sig_counts.values():
        for m, d in s.per_macro.items():
            stats = macros[m].stats
            record = stats.records[mult_op]
            record.invocations += d[2] * count
            record.words += d[3] * count
            record.cycles += d[4] * count
            record = stats.records[add_op]
            record.invocations += d[3] * count
            record.words += d[3] * count
            record.cycles += d[5] * count
            macros[m].array.access_count += d[6] * count
            acc[m] += d[7] * count
        counters.mac_count += s.mac_count * count
        counters.matmul_calls += s.n_layers * count
        cache.hits += s.n_layers * count
        for layer_id in s.layer_ids:
            entries[layer_id].hits += count
    for m in first_key:
        macros[m].stats.array_accesses = macros[m].array.access_count
    # --- LRU order: untouched entries keep their order, touched entries
    # move to the end in last-touch order (== replaying every lookup).
    # The global tick order is dispatch-major / in-pattern-minor, so a
    # layer's last touch is the max (last dispatch of a containing
    # pattern, position within that pattern) pair. ---------------------- #
    last_key: Dict[str, tuple] = {}
    for i, p in enumerate(patterns):
        ld = int(last_disp[i])
        pos = 0
        for s in p:
            for layer_id in s.layer_ids:
                key = (ld, pos)
                cur = last_key.get(layer_id)
                if cur is None or key > cur:
                    last_key[layer_id] = key
                pos += 1
    for layer_id, _ in sorted(last_key.items(), key=lambda kv: kv[1]):
        entries.move_to_end(layer_id)
    # --- per-dispatch energies -> deferred telemetry rows --------------- #
    # Per dispatch the object path folds its slice deltas left to right
    # from 0.0; replicate element-wise, one vector op per slice position.
    denergy = np.zeros(ndisp, dtype=np.float64)
    starts_s = np.cumsum(slices_per_disp) - slices_per_disp
    for step in range(int(slices_per_disp.max(initial=0))):
        mask = slices_per_disp > step
        denergy[mask] = denergy[mask] + slice_deltas[starts_s[mask] + step]
    row_indexes = buf.row_indexes
    if row_indexes:
        shares = denergy[np.asarray(buf.ordinals, dtype=np.intp)]
        if buf.any_fraction:
            shares_list = shares.tolist()
            for k, fraction in enumerate(buf.fractions):
                if fraction is not None:
                    shares_list[k] = shares_list[k] * fraction
            shares = np.asarray(shares_list, dtype=np.float64)
        else:
            shares_list = shares.tolist()
        set_batch = getattr(telemetry, "set_energy_batch", None)
        if set_batch is not None:
            set_batch(row_indexes, shares_list)
        else:  # pragma: no cover - object-telemetry compatibility
            for row_index, share in zip(row_indexes, shares_list):
                telemetry.set_energy(row_index, share)
        node_tel = node.telemetry
        node_tel.energy_j = _fold(node_tel.energy_j, [shares])
    buf.reset()


# ---------------------------------------------------------------------- #
# Queue entry layout (plain tuples: object churn is what we are removing)
# ---------------------------------------------------------------------- #
#: (request_id, model_id, images, sla, arrival_s, deadline_s, input_digest,
#:  image_count, reserved span, feasible_at_admission)
_E_RID, _E_MODEL, _E_IMAGES, _E_SLA, _E_ARRIVAL, _E_DEADLINE = 0, 1, 2, 3, 4, 5
_E_DIGEST, _E_COUNT, _E_SPAN, _E_FEASIBLE = 6, 7, 8, 9

#: Decision layout: (node_id, sla, feasible, affinity_hit, replicated,
#: est_start_s, est_finish_s, est_latency_s, est_energy_per_image_j,
#: candidates) — materialized into PlacementDecision on demand.


class _NodeCache:
    """Per-node derived state, validated on access against the live node.

    ``engine``/``ptiles`` detect any (re-)programming or retune — evictions
    only happen inside inserts, so ``programmed_tiles`` versions the whole
    weight-cache content; ``degrade`` keys the estimate cache the same way
    the node's own estimate memo does.
    """

    __slots__ = (
        "engine", "ptiles", "degrade", "hazard", "cycle_time",
        "estimates", "fast_ok", "ssigs", "dsigs", "turbo",
    )


class EventKernel:
    """Columnar replacement of the object router's virtual-time loop.

    Holds the same admission / dispatch-heap / fault state machine as
    :class:`~repro.cluster.router.ClusterRouter` (which delegates to it when
    built with ``kernel="columnar"``), but keeps requests as plain tuples,
    placements as tuples, telemetry as columnar rows, and warm analytic
    charges as deferred slice signatures — see the module docstring for the
    fidelity contract.
    """

    def __init__(self, router, retain_results: bool = True) -> None:
        self.router = router
        self.nodes = router.nodes
        self._by_id = router._by_id
        self.scheduler = router.scheduler
        self.telemetry = router.telemetry
        self.coalesce = router.coalesce
        #: False drops per-request results (drain returns []); counters and
        #: telemetry stay exact.  The 10^8-request flat-memory mode.
        self.retain_results = retain_results
        #: Subclassed schedulers get the generic (oracle) choose path.
        self._fast_sched = type(self.scheduler) is SLAScheduler
        self._fault_events: Tuple[FaultEvent, ...] = router._fault_events
        self._fault_cursor = 0
        self.fault_log = router.fault_log  # shared list, single log
        self.clock = 0.0
        self._queues: Dict[str, Deque[tuple]] = {
            node.node_id: deque() for node in self.nodes
        }
        self._completed: Dict[str, float] = {
            node.node_id: 0.0 for node in self.nodes
        }
        self._heap: List[Tuple[float, str]] = []
        self._queued = 0
        self._pending_by_model: Dict[str, Dict[str, int]] = {}
        self._seen_state: Dict[str, NodeState] = {
            node.node_id: node.state for node in self.nodes
        }
        self._stranded: Set[str] = set()
        self._replayed: Set[int] = set()
        self.replayed_placements = 0
        self._next_rid = 0
        self._decisions: Dict[int, tuple] = {}
        self._failed: Dict[int, BaseException] = {}
        self._results: Dict[int, object] = {}
        self._pending_results: Dict[int, tuple] = {}
        self._completed_count = 0
        self._ncache: Dict[str, _NodeCache] = {}
        self._buffers: Dict[str, _ChargeBuffer] = {}
        from repro.cluster.router import ClusterResult  # deferred: cycle

        self._result_cls = ClusterResult
        self.telemetry._flush_hook = self.flush_all
        for node in self.nodes:
            node._pre_mutate_hooks.append(
                lambda node_id=node.node_id: self.flush_node(node_id)
            )

    # ------------------------------------------------------------------ #
    # Deferred-state maintenance
    # ------------------------------------------------------------------ #
    def flush_node(self, node_id: str) -> None:
        """Apply one node's buffered charge sequence to its real ledgers."""
        buf = self._buffers.get(node_id)
        if buf is not None and buf.dispatches:
            _flush_buffer(self._by_id[node_id], buf, self.telemetry)

    def flush_all(self) -> None:
        """Apply every node's buffered charges (router-level reads)."""
        for node in self.nodes:
            self.flush_node(node.node_id)

    def _node_cache(self, node: ClusterNode) -> _NodeCache:
        nc = self._ncache.get(node.node_id)
        engine = node.engine
        ptiles = engine.counters.programmed_tiles
        if nc is None or nc.engine is not engine or nc.ptiles != ptiles:
            if nc is None:
                nc = _NodeCache()
                nc.hazard = node.hazard
                self._ncache[node.node_id] = nc
            nc.engine = engine
            nc.ptiles = ptiles
            nc.degrade = node.degrade_factor
            nc.cycle_time = engine.chip.cycle_time_s()
            nc.estimates = {}
            nc.fast_ok = {}
            nc.ssigs = {}
            nc.dsigs = {}
            nc.turbo = {}
        elif nc.degrade != node.degrade_factor:
            nc.degrade = node.degrade_factor
            nc.estimates = {}
            nc.turbo = {}
        return nc

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def _apply_due_faults(self) -> None:
        events = self._fault_events
        while (
            self._fault_cursor < len(events)
            and events[self._fault_cursor].at_s <= self.clock
        ):
            event = events[self._fault_cursor]
            self._fault_cursor += 1
            self._apply_fault(event)

    def _apply_fault(self, event: FaultEvent) -> None:
        node = self._by_id[event.node_id]
        if event.kind is FaultKind.CRASH:
            if node.state is not NodeState.FAILED:
                node.fail()
            self._seen_state[event.node_id] = NodeState.FAILED
            if self._queues[event.node_id]:
                self._replace_parked_backlog(event.node_id)
        elif event.kind is FaultKind.RECOVER:
            node.recover()
            if self._seen_state[event.node_id] is not NodeState.ACTIVE:
                self._seen_state[event.node_id] = NodeState.ACTIVE
                self._push_head_candidate(event.node_id)
                self._retry_stranded()
        elif event.kind is FaultKind.STALL:
            self._completed[event.node_id] = (
                max(self._completed[event.node_id], event.at_s) + event.duration_s
            )
            self._rebuild_reservation(event.node_id)
        elif event.kind is FaultKind.DEGRADE:
            node.degrade(event.factor)
        elif event.kind is FaultKind.RESTORE:
            node.restore()
        self.fault_log.append(event)

    def _advance_to_next_fault(self) -> bool:
        if self._fault_cursor >= len(self._fault_events):
            return False
        self.clock = max(self.clock, self._fault_events[self._fault_cursor].at_s)
        return True

    # ------------------------------------------------------------------ #
    # Queue bookkeeping
    # ------------------------------------------------------------------ #
    def _enqueue(self, node_id: str, entry: tuple) -> None:
        queue = self._queues[node_id]
        queue.append(entry)
        self._queued += 1
        counts = self._pending_by_model.setdefault(entry[_E_MODEL], {})
        counts[node_id] = counts.get(node_id, 0) + 1
        if len(queue) == 1 and self._by_id[node_id].state is NodeState.ACTIVE:
            heapq.heappush(
                self._heap,
                (max(self._completed[node_id], entry[_E_ARRIVAL]), node_id),
            )

    def _dequeue_head(self, node_id: str) -> tuple:
        entry = self._queues[node_id].popleft()
        self._queued -= 1
        counts = self._pending_by_model[entry[_E_MODEL]]
        remaining = counts[node_id] - 1
        if remaining:
            counts[node_id] = remaining
        else:
            del counts[node_id]
            if not counts:
                del self._pending_by_model[entry[_E_MODEL]]
        return entry

    def _push_head_candidate(self, node_id: str) -> None:
        queue = self._queues[node_id]
        if queue:
            heapq.heappush(
                self._heap,
                (max(self._completed[node_id], queue[0][_E_ARRIVAL]), node_id),
            )

    def _pending_nodes(self, model_id: str) -> frozenset:
        counts = self._pending_by_model.get(model_id)
        if not counts:
            return frozenset()
        return frozenset(counts)

    def queue_depth(self, node_id: Optional[str] = None) -> int:
        if node_id is not None:
            return len(self._queues[node_id])
        return self._queued

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def _choose_fast(self, model_id, images, sla, arrival, deadline) -> tuple:
        """Inlined :meth:`SLAScheduler.choose` over cached estimate bundles.

        Value- and order-identical to the scheduler: same candidate order
        (fleet order, active only), same ranking keys, same first-minimum
        tie-breaks, same pool restrictions.
        """
        scheduler = self.scheduler
        scored = []
        for node in self.nodes:
            if node.state is not NodeState.ACTIVE:
                continue
            nc = self._node_cache(node)
            key = (model_id, images.shape)
            est = nc.estimates.get(key)
            if est is None:
                est = node.estimate_request(model_id, images)
                nc.estimates[key] = est
            scored.append(
                (node, est, max(node.available_s, arrival) + est.latency_s,
                 nc.hazard)
            )
        if not scored:
            raise NoActiveNodesError(
                "no active nodes: wake a parked node before submitting"
            )
        pending = self._pending_by_model.get(model_id)
        hw = scheduler.hazard_weight

        if sla is SLAClass.LATENCY:
            best = best_key = None
            any_feasible = False
            for e in scored:
                lat = e[2] - arrival
                feasible = lat <= deadline
                if feasible and not any_feasible:
                    any_feasible = True
                    best = best_key = None
                if any_feasible and not feasible:
                    continue
                k = (lat * (1.0 + hw * e[3]), e[1].energy_j, e[0].node_id)
                if best_key is None or k < best_key:
                    best, best_key = e, k
            node, est, finish, _ = best
            is_feasible = any_feasible
            has_resident = any(
                e[1].resident or (pending and e[0].node_id in pending)
                for e in scored
            )
        else:
            resident = [
                e for e in scored
                if e[1].resident or (pending and e[0].node_id in pending)
            ]
            hot = (
                self.telemetry.recent_model_dispatches(model_id)
                >= scheduler.hot_threshold
            )
            if not resident:
                pool = scored
            else:
                spreading = (
                    hot
                    and len(resident) < scheduler.max_replicas
                    and len(resident) < len(scored)
                )
                pool = (
                    [e for e in scored if not e[1].resident]
                    if spreading
                    else resident
                )
            if scheduler.coalesce_affinity and pending:
                mergeable = [e for e in pool if e[0].node_id in pending]
                if mergeable:
                    pool = mergeable
            best = best_key = None
            if sla is SLAClass.THROUGHPUT:
                for e in pool:
                    k = (
                        e[1].energy_per_image_j * (1.0 + hw * e[3]),
                        e[2],
                        e[0].node_id,
                    )
                    if best_key is None or k < best_key:
                        best, best_key = e, k
            else:  # BEST_EFFORT
                for e in pool:
                    k = (
                        (max(e[0].available_s, arrival) - arrival)
                        * (1.0 + hw * e[3]),
                        e[3],
                        e[0].node_id,
                    )
                    if best_key is None or k < best_key:
                        best, best_key = e, k
            node, est, finish, _ = best
            is_feasible = True
            has_resident = bool(resident)
        return (
            node.node_id,
            sla,
            is_feasible,
            est.resident,
            bool(has_resident) and not est.resident,
            max(node.available_s, arrival),
            finish,
            est.latency_s,
            est.energy_per_image_j,
            len(scored),
        )

    def _choose_generic(
        self, rid, model_id, images, sla, arrival, deadline, digest
    ) -> tuple:
        """Oracle path for subclassed schedulers: real ClusterRequest + choose."""
        request = ClusterRequest(
            request_id=rid,
            model_id=model_id,
            images=images,
            sla=sla,
            arrival_s=arrival,
            deadline_s=deadline,
            input_digest=digest,
        )
        d = self.scheduler.choose(
            request, self.nodes, self.telemetry,
            pending=self._pending_nodes(model_id),
        )
        return (
            d.node_id, d.sla, d.feasible, d.affinity_hit, d.replicated,
            d.est_start_s, d.est_finish_s, d.est_latency_s,
            d.est_energy_per_image_j, d.candidates,
        )

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model_id: str,
        images: np.ndarray,
        sla: SLAClass = SLAClass.BEST_EFFORT,
        deadline_s: Optional[float] = None,
        arrival_s: Optional[float] = None,
        input_digest: Optional[str] = None,
    ) -> int:
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[0] == 0:
            raise ConfigurationError(
                "expected a non-empty (batch, channels, height, width) array"
            )
        if sla is SLAClass.LATENCY:
            if deadline_s is None or deadline_s <= 0:
                raise ConfigurationError(
                    "latency-class requests need a positive deadline_s"
                )
        arrival = self.clock if arrival_s is None else float(arrival_s)
        if arrival < 0:
            raise ConfigurationError("arrival_s must be non-negative")
        if arrival > self.clock:
            self.clock = arrival
        self._apply_due_faults()
        rid = self._next_rid
        self._next_rid += 1
        try:
            if self._fast_sched:
                decision = self._choose_fast(
                    model_id, images, sla, arrival, deadline_s
                )
            else:
                decision = self._choose_generic(
                    rid, model_id, images, sla, arrival, deadline_s, input_digest
                )
        except NoActiveNodesError:
            if NodeState.FAILED not in [node.state for node in self.nodes]:
                raise
            self._strand(rid, model_id, images, sla, arrival, deadline_s,
                         input_digest)
            return rid
        node = self._by_id[decision[0]]
        node.available_s = decision[6]
        entry = (
            rid, model_id, images, sla, arrival, deadline_s, input_digest,
            int(images.shape[0]), decision[6] - decision[5], decision[2],
        )
        self._enqueue(node.node_id, entry)
        if self.retain_results:
            self._decisions[rid] = decision
        return rid

    def _strand(self, rid, model_id, images, sla, arrival, deadline, digest):
        node = min(self.nodes, key=lambda n: n.node_id)
        decision = (
            node.node_id, sla, False, False, False, arrival, arrival,
            0.0, 0.0, 0,
        )
        entry = (
            rid, model_id, images, sla, arrival, deadline, digest,
            int(images.shape[0]), 0.0, False,
        )
        self._enqueue(node.node_id, entry)
        if self.retain_results:
            self._decisions[rid] = decision
        self._stranded.add(node.node_id)

    # ------------------------------------------------------------------ #
    # Lifecycle transitions (park/wake/crash replay)
    # ------------------------------------------------------------------ #
    def _rebuild_reservation(self, node_id: str) -> None:
        available = self._completed[node_id]
        for entry in self._queues[node_id]:
            start = max(available, entry[_E_ARRIVAL])
            available = start + entry[_E_SPAN]
        self._by_id[node_id].available_s = available

    def _sync_states(self) -> None:
        woke = False
        for node in self.nodes:
            node_id = node.node_id
            state = node.state
            if state is self._seen_state[node_id]:
                continue
            self._seen_state[node_id] = state
            obs = getattr(self.router, "_obs", None)
            if obs is not None:
                obs.node_transition(node_id, state.name.lower())
            if state is NodeState.ACTIVE:
                woke = True
                self._push_head_candidate(node_id)
            elif self._queues[node_id]:
                self._replace_parked_backlog(node_id)
        if woke:
            self._retry_stranded()

    def _retry_stranded(self) -> None:
        for node_id in sorted(self._stranded):
            if self._by_id[node_id].state is NodeState.ACTIVE:
                self._stranded.discard(node_id)
            elif self._queues[node_id]:
                self._replace_parked_backlog(node_id)
            else:
                self._stranded.discard(node_id)

    def _replace_parked_backlog(self, node_id: str) -> None:
        node = self._by_id[node_id]
        stranded: List[tuple] = []
        while self._queues[node_id]:
            stranded.append(self._dequeue_head(node_id))
        node.available_s = self._completed[node_id]
        for index, entry in enumerate(stranded):
            try:
                if self._fast_sched:
                    decision = self._choose_fast(
                        entry[_E_MODEL], entry[_E_IMAGES], entry[_E_SLA],
                        entry[_E_ARRIVAL], entry[_E_DEADLINE],
                    )
                else:
                    decision = self._choose_generic(
                        entry[_E_RID], entry[_E_MODEL], entry[_E_IMAGES],
                        entry[_E_SLA], entry[_E_ARRIVAL], entry[_E_DEADLINE],
                        entry[_E_DIGEST],
                    )
            except NoActiveNodesError:
                for item in stranded[index:]:
                    self._enqueue(node_id, item)
                self._rebuild_reservation(node_id)
                self._stranded.add(node_id)
                return
            target = self._by_id[decision[0]]
            target.available_s = decision[6]
            self._enqueue(
                target.node_id,
                entry[:_E_SPAN] + (decision[6] - decision[5], decision[2]),
            )
            if self.retain_results:
                self._decisions[entry[_E_RID]] = decision
            self._replayed.add(entry[_E_RID])
            self.replayed_placements += 1
        self._stranded.discard(node_id)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _select_head(self) -> Optional[Tuple[str, float]]:
        heap = self._heap
        while heap:
            start, node_id = heapq.heappop(heap)
            if self._by_id[node_id].state is not NodeState.ACTIVE:
                continue
            queue = self._queues[node_id]
            if not queue:
                continue
            actual = max(self._completed[node_id], queue[0][_E_ARRIVAL])
            if actual != start:
                heapq.heappush(heap, (actual, node_id))
                continue
            return node_id, start
        return None

    def _gather_group(self, node: ClusterNode, start: float) -> List[tuple]:
        node_id = node.node_id
        group = [self._dequeue_head(node_id)]
        if not self.coalesce:
            return group
        head = group[0]
        budget = node.max_batch_size - head[_E_COUNT]
        queue = self._queues[node_id]
        head_tail = head[_E_IMAGES].shape[1:]
        while queue:
            candidate = queue[0]
            if (
                candidate[_E_MODEL] != head[_E_MODEL]
                or candidate[_E_ARRIVAL] > start
                or candidate[_E_COUNT] > budget
                or candidate[_E_IMAGES].shape[1:] != head_tail
            ):
                break
            budget -= candidate[_E_COUNT]
            group.append(self._dequeue_head(node_id))
        return group

    def _fast_ok(self, node: ClusterNode, nc: _NodeCache, model_id: str) -> bool:
        ok = nc.fast_ok.get(model_id)
        if ok is None:
            ok = node.holds_model(model_id)
            nc.fast_ok[model_id] = ok
        return ok

    def _build_dsig(
        self, node: ClusterNode, nc: _NodeCache, model_id: str,
        shape_tail: tuple, total: int,
    ) -> _DispatchSig:
        step = node.max_batch_size
        slices: List[_SliceSig] = []
        start = 0
        while start < total:
            size = min(step, total - start)
            skey = (model_id, shape_tail, size)
            ssig = nc.ssigs.get(skey)
            if ssig is None:
                ssig = _SliceSig(node, model_id, shape_tail, size)
                nc.ssigs[skey] = ssig
            slices.append(ssig)
            start += size
        return _DispatchSig(slices, nc.cycle_time)

    def _dispatch_group(self) -> List[int]:
        """Run the next dispatch; returns the completed request ids."""
        while True:
            self._apply_due_faults()
            self._sync_states()
            selected = self._select_head()
            if selected is not None:
                break
            if self._queued and self._advance_to_next_fault():
                continue
            return []
        node_id, start = selected
        node = self._by_id[node_id]
        group = self._gather_group(node, start)
        if node.execution_mode is ExecutionMode.ANALYTIC:
            nc = self._node_cache(node)
            if self._fast_ok(node, nc, group[0][_E_MODEL]):
                return self._dispatch_fast(node, nc, group, start)
        return self._dispatch_slow(node, group, start)

    def _dispatch_fast(
        self, node: ClusterNode, nc: _NodeCache, group: List[tuple],
        start: float,
    ) -> List[int]:
        """Warm analytic dispatch: template charges, deferred; memo forward."""
        node_id = node.node_id
        model_id = group[0][_E_MODEL]
        single = len(group) == 1
        if single:
            total = group[0][_E_COUNT]
        else:
            total = 0
            for e in group:
                total += e[_E_COUNT]
        dkey = (model_id, group[0][_E_IMAGES].shape[1:], total)
        dsig = nc.dsigs.get(dkey)
        if dsig is None:
            dsig = self._build_dsig(node, nc, model_id, dkey[1], total)
            nc.dsigs[dkey] = dsig
        buf = self._buffers.get(node_id)
        if buf is None:
            buf = _ChargeBuffer(node.engine)
            self._buffers[node_id] = buf
        elif not buf.dispatches and buf.engine is not node.engine:
            buf.engine = node.engine
            buf.macros_seen.clear()
        # Charges are buffered *before* the forward (the object path charges
        # before predicting), so a failing spot check leaves them applied.
        ordinal = len(buf.dispatches)
        buf.dispatches.append(dsig.slices)
        compute_s = dsig.compute_s(node.degrade_factor)
        try:
            if single:
                entry = group[0]
                images = entry[_E_IMAGES]
                digest = entry[_E_DIGEST]
                key = (
                    (model_id, digest)
                    if digest is not None
                    else (model_id, node._content_digest(images))
                )
                predictions, spot_checked = node._memo_predict(
                    model_id, key, lambda: images
                )
            else:
                key = (
                    model_id,
                    "group",
                    tuple(
                        e[_E_DIGEST]
                        if e[_E_DIGEST] is not None
                        else node._content_digest(e[_E_IMAGES])
                        for e in group
                    ),
                )
                grouped, spot_checked = node._memo_predict(
                    model_id, key,
                    lambda: np.concatenate([e[_E_IMAGES] for e in group]),
                )
        except Exception as error:
            for e in group:
                self._failed[e[_E_RID]] = error
            self._rebuild_reservation(node_id)
            self._push_head_candidate(node_id)
            raise
        finish = start + compute_s
        self._completed[node_id] = finish
        if finish > self.clock:
            self.clock = finish
        self._rebuild_reservation(node_id)
        self._push_head_candidate(node_id)

        coalesced = len(group)
        telemetry = self.telemetry
        ntel = node.telemetry
        retain = self.retain_results
        replayed_set = self._replayed
        if not single:
            buf.any_fraction = True
        row_app = buf.row_indexes.append
        ord_app = buf.ordinals.append
        frac_app = buf.fractions.append
        rids: List[int] = []
        offset = 0
        for e in group:
            rid = e[_E_RID]
            count = e[_E_COUNT]
            if single:
                fraction = None
                compute_share = compute_s
                request_predictions = predictions
            else:
                fraction = count / total
                compute_share = compute_s * fraction
                request_predictions = grouped[offset : offset + count]
                offset += count
            arrival = e[_E_ARRIVAL]
            deadline = e[_E_DEADLINE]
            latency = finish - arrival
            missed = deadline is not None and latency > deadline
            index = telemetry.record_row(
                (
                    rid, model_id, node_id, e[_E_SLA].value, count, arrival,
                    start, finish, compute_share, deadline, missed, True,
                    False, e[_E_FEASIBLE], "analytic", coalesced,
                    spot_checked, rid in replayed_set,
                ),
                None,
            )
            row_app(index)
            ord_app(ordinal)
            frac_app(fraction)
            # Inlined NodeTelemetry.record (energy deferred to the flush).
            ntel.dispatches += 1
            ntel.images += count
            ntel.busy_s += compute_share
            if missed:
                ntel.deadline_misses += 1
            ntel.affinity_hits += 1
            sample = compute_share / count
            if ntel.dispatches == 1:
                ntel.ewma_image_latency_s = sample
            else:
                ntel.ewma_image_latency_s += ntel.ewma_alpha * (
                    sample - ntel.ewma_image_latency_s
                )
            if retain:
                self._pending_results[rid] = (index, e[_E_SLA], request_predictions)
            rids.append(rid)
        self._completed_count += coalesced
        return rids

    def _dispatch_slow(
        self, node: ClusterNode, group: List[tuple], start: float
    ) -> List[int]:
        """Oracle dispatch: flush the node's deferred charges (so its ledger
        folds stay in chronological order), then run the real node calls."""
        node_id = node.node_id
        self.flush_node(node_id)
        model_id = group[0][_E_MODEL]
        try:
            if len(group) == 1:
                entry = group[0]
                dispatch = node.execute(
                    model_id, entry[_E_IMAGES], input_digest=entry[_E_DIGEST]
                )
                predictions = [dispatch.predictions]
            else:
                predictions, dispatch = node.execute_group(
                    model_id,
                    [(e[_E_IMAGES], e[_E_DIGEST]) for e in group],
                )
        except Exception as error:
            for e in group:
                self._failed[e[_E_RID]] = error
            self._rebuild_reservation(node_id)
            self._push_head_candidate(node_id)
            raise
        finish = start + dispatch.compute_s
        self._completed[node_id] = finish
        if finish > self.clock:
            self.clock = finish
        self._rebuild_reservation(node_id)
        self._push_head_candidate(node_id)

        total = 0
        for e in group:
            total += e[_E_COUNT]
        coalesced = len(group)
        telemetry = self.telemetry
        ntel = node.telemetry
        retain = self.retain_results
        rids: List[int] = []
        for e, request_predictions in zip(group, predictions):
            rid = e[_E_RID]
            count = e[_E_COUNT]
            if coalesced == 1:
                compute_share = dispatch.compute_s
                energy_share = dispatch.energy_j
            else:
                fraction = count / total
                compute_share = dispatch.compute_s * fraction
                energy_share = dispatch.energy_j * fraction
            arrival = e[_E_ARRIVAL]
            deadline = e[_E_DEADLINE]
            latency = finish - arrival
            missed = deadline is not None and latency > deadline
            index = telemetry.record_row(
                (
                    rid, model_id, node_id, e[_E_SLA].value, count, arrival,
                    start, finish, compute_share, deadline, missed,
                    dispatch.affinity_hit, dispatch.programmed,
                    e[_E_FEASIBLE], dispatch.execution_mode, coalesced,
                    dispatch.spot_checked, rid in self._replayed,
                ),
                energy_share,
            )
            ntel.dispatches += 1
            ntel.images += count
            ntel.energy_j += energy_share
            ntel.busy_s += compute_share
            if missed:
                ntel.deadline_misses += 1
            if dispatch.affinity_hit:
                ntel.affinity_hits += 1
            if dispatch.programmed:
                ntel.programmed_dispatches += 1
            sample = compute_share / count
            if ntel.dispatches == 1:
                ntel.ewma_image_latency_s = sample
            else:
                ntel.ewma_image_latency_s += ntel.ewma_alpha * (
                    sample - ntel.ewma_image_latency_s
                )
            if retain:
                self._pending_results[rid] = (index, e[_E_SLA], request_predictions)
            rids.append(rid)
        self._completed_count += coalesced
        return rids

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _materialize(self, rid: int):
        result = self._results.get(rid)
        if result is not None:
            return result
        pending = self._pending_results.pop(rid, None)
        if pending is None:
            return None
        index, sla, predictions = pending
        trace = self.telemetry.traces[index]
        result = self._result_cls(trace=trace, sla=sla, predictions=predictions)
        self._results[rid] = result
        return result

    def dispatch_next(self):
        if not self.retain_results:
            raise ConfigurationError(
                "dispatch_next() needs per-request results; this router was "
                "built with retain_results=False (use drain() and the "
                "telemetry aggregates)"
            )
        rids = self._dispatch_group()
        if not rids:
            return None
        return self._materialize(rids[0])

    def drain(self) -> List[object]:
        completed: List[int] = []
        retain = self.retain_results
        while True:
            rids = self._dispatch_group()
            if not rids:
                break
            if retain:
                completed.extend(rids)
        if not retain:
            return []
        self.flush_all()
        return [self._materialize(rid) for rid in completed]

    # ------------------------------------------------------------------ #
    # Batch trace replay (the turbo path)
    # ------------------------------------------------------------------ #
    def replay_trace(
        self, trace, image_pool, drain_every: int = 64, autoscaler=None
    ) -> Dict[str, float]:
        """Stream a workload trace through the kernel in arrival order.

        Observable behaviour is identical to
        :func:`repro.cluster.workload.replay` over this kernel — same
        round-robin pool slots, same admission order, same drain cadence,
        same autoscaler observation points — but each ``drain_every`` chunk
        whose steady-state preconditions hold (stock scheduler, no
        coalescing, ``retain_results=False``, every chunk model warm and
        resident on every active node, all pool digests memoised, no fault
        due inside the chunk's horizon, no autoscaler) runs a specialised
        batch admission+dispatch loop: array-backed reservation and
        completion chains, one telemetry append and one memo/ledger
        write-back per chunk instead of per request.  Chunks that fail a
        precondition fall back to the per-request submit/drain loop, which
        *is* the oracle path, so mixing chunks preserves bit-exactness.
        """
        import time

        check_positive("drain_every", drain_every)
        from repro.cluster.workload import SLA_ORDER

        arr = trace.arrivals_s.tolist()
        cnt = trace.image_counts.tolist()
        mi = trace.model_indices.tolist()
        si = trace.sla_indices.tolist()
        deadlines = trace.deadlines_s
        dl = [
            None if nan else value
            for value, nan in zip(
                deadlines.tolist(), np.isnan(deadlines).tolist()
            )
        ]
        model_ids = trace.model_ids
        slot_cursor: Dict[Tuple[str, int], int] = {}
        requests = len(arr)
        completed_before = self._completed_count
        turbo_ok = autoscaler is None
        start_wall = time.perf_counter()
        pos = 0
        while pos < requests:
            end = pos + drain_every
            if end > requests:
                end = requests
            ctx = (
                self._turbo_context(arr, cnt, mi, pos, end, model_ids,
                                    image_pool, slot_cursor)
                if turbo_ok
                else None
            )
            if ctx is not None:
                self._turbo_chunk(ctx, arr, si, dl, pos, end, slot_cursor)
            else:
                for i in range(pos, end):
                    model_id = model_ids[mi[i]]
                    ck = (model_id, cnt[i])
                    slots = image_pool[ck]
                    cursor = slot_cursor.get(ck, 0)
                    digest, images = slots[cursor]
                    slot_cursor[ck] = (cursor + 1) % len(slots)
                    self.submit(
                        model_id,
                        images,
                        sla=SLA_ORDER[si[i]],
                        deadline_s=dl[i],
                        arrival_s=arr[i],
                        input_digest=digest,
                    )
                if end - pos == drain_every:
                    # Observe *before* draining, exactly like replay().
                    if autoscaler is not None:
                        autoscaler.observe()
                    self.drain()
                    telemetry = self.telemetry
                    if type(telemetry) is ColumnarTelemetry:
                        telemetry.maybe_fold()
            pos = end
        if autoscaler is not None:
            autoscaler.observe()
        self.drain()
        wall_s = time.perf_counter() - start_wall
        completed = self._completed_count - completed_before
        images_total = float(trace.total_images)
        return {
            "requests": float(requests),
            "completed": float(completed),
            "images": images_total,
            "wall_s": wall_s,
            "requests_per_s": requests / wall_s if wall_s > 0 else 0.0,
            "images_per_s": images_total / wall_s if wall_s > 0 else 0.0,
        }

    def _turbo_node_entry(self, node, nc, model_id, count, slots):
        """Admission/dispatch constants of one (node, model, count), or
        ``False`` when that combination cannot take the turbo path (not
        resident, not warm, or pool slots the generic path must validate).
        Cached on the node cache: any retune/programming rebuilds it."""
        shape = slots[0][1].shape
        for digest, images in slots:
            if (
                digest is None
                or images.ndim != 4
                or images.shape != shape
                or images.dtype != np.float64
            ):
                return False
        if shape[0] != count or count == 0:
            return False
        if not self._fast_ok(node, nc, model_id):
            return False
        ekey = (model_id, shape)
        est = nc.estimates.get(ekey)
        if est is None:
            est = node.estimate_request(model_id, slots[0][1])
            nc.estimates[ekey] = est
        if not est.resident:
            return False
        dkey = (model_id, shape[1:], count)
        dsig = nc.dsigs.get(dkey)
        if dsig is None:
            dsig = self._build_dsig(node, nc, model_id, dkey[1], count)
            nc.dsigs[dkey] = dsig
        return (
            est.latency_s,
            est.energy_j,
            est.energy_per_image_j,
            dsig.compute_s(node.degrade_factor),
            dsig.slices,
            dsig.batches,
        )

    def _turbo_context(
        self, arr, cnt, mi, pos, end, model_ids, image_pool, slot_cursor
    ):
        """Validate one chunk's turbo preconditions; returns the prepared
        per-chunk context, or ``None`` to take the oracle path."""
        if (
            self.retain_results
            or not self._fast_sched
            or self.coalesce
            or self.scheduler.coalesce_affinity
            or type(self.telemetry) is not ColumnarTelemetry
        ):
            return None
        if self._stranded or self._queued or arr[pos] < 0:
            return None
        self._sync_states()
        if self._queued:
            return None
        active = [n for n in self.nodes if n.state is NodeState.ACTIVE]
        if not active:
            return None
        ncs = []
        for node in active:
            if node.execution_mode is not ExecutionMode.ANALYTIC:
                return None
            ncs.append(self._node_cache(node))
        hw = self.scheduler.hazard_weight
        risk = [1.0 + hw * nc.hazard for nc in ncs]
        hazard = [nc.hazard for nc in ncs]
        node_ids = [n.node_id for n in active]
        combos: Dict[tuple, list] = {}
        for i in range(pos, end):
            combos.setdefault((mi[i], cnt[i]), None)
        max_step = 0.0
        key_table: List[tuple] = []
        for mindex, count in combos:
            model_id = model_ids[mindex]
            ck = (model_id, count)
            slots = image_pool.get(ck)
            if slots is None:
                return None
            lat, energy, tkey0 = [], [], []
            compute, slices, batches = [], [], []
            for j, node in enumerate(active):
                nc = ncs[j]
                ent = nc.turbo.get(ck)
                if ent is None:
                    ent = self._turbo_node_entry(node, nc, model_id, count,
                                                 slots)
                    nc.turbo[ck] = ent
                if ent is False:
                    return None
                lat.append(ent[0])
                energy.append(ent[1])
                tkey0.append(ent[2] * risk[j])
                compute.append(ent[3])
                slices.append(ent[4])
                batches.append(ent[5])
                if ent[0] > max_step:
                    max_step = ent[0]
                if ent[3] > max_step:
                    max_step = ent[3]
            keys = [(model_id, digest) for digest, _ in slots]
            for node in active:
                entries = node.forward_memo._entries
                for key in keys:
                    if key not in entries:
                        return None
            # A strictly unique minimum of the primary throughput key picks
            # the same node regardless of finish-time tie-breaks.
            low = min(tkey0)
            static_t = -1
            if sum(1 for v in tkey0 if v == low) == 1:
                static_t = tkey0.index(low)
            key_base = len(key_table)
            key_table.extend(keys)
            combos[(mindex, count)] = [
                model_id, ck, lat, energy, tkey0, static_t, compute,
                slices, batches, keys, slots, len(slots),
                slot_cursor.get(ck, 0), key_base, count,
            ]
        if self._fault_cursor < len(self._fault_events):
            # Conservative horizon: the chunk's virtual time cannot pass
            # base + chunk_len * max_step, so a fault strictly beyond it
            # can never become due inside the chunk (on either path).
            base = arr[end - 1]
            if self.clock > base:
                base = self.clock
            for value in self._completed.values():
                if value > base:
                    base = value
            bound = base + (end - pos) * max_step
            if self._fault_events[self._fault_cursor].at_s <= bound:
                return None
        # One combo reference per request: an int-keyed lookup when the
        # chunk is single-model (the common replay shape), the full
        # (model, count) key otherwise.
        if len({key[0] for key in combos}) == 1:
            by_count = {key[1]: value for key, value in combos.items()}
            creq = [by_count[c] for c in cnt[pos:end]]
        else:
            creq = [combos[(m, c)] for m, c in zip(mi[pos:end], cnt[pos:end])]
        return (active, node_ids, combos, creq, risk, hazard, key_table)

    def _turbo_chunk(self, ctx, arr, si, dl, pos, end, slot_cursor):
        """One chunk of batch admission + per-node dispatch passes.

        Replicates `_choose_fast` -> `_enqueue` -> `_select_head` ->
        `_dispatch_fast` value- and order-identically for the steady state
        the context validated.  Admission walks the chunk once with the
        same ranking keys, float op order and first-minimum tie-breaks as
        `_choose_fast`.  Dispatch then runs one tight FIFO pass per node —
        each node's start/finish chain depends only on its own queue, not
        on the cross-node interleave — and recovers the heap's exact
        merged order, min ``(max(completed, arrival), node_id)``, with a
        stable lexsort over the per-node start times.  Telemetry rows,
        charge-buffer events, memo counters/LRU order and node aggregates
        are written back once per chunk.
        """
        active, node_ids, combos, creq, risk, hazard, key_table = ctx
        nn = len(active)
        avail = [node.available_s for node in active]
        completed = self._completed
        comp = [completed[nid] for nid in node_ids]
        pend: List[list] = [[] for _ in range(nn)]
        appends = [p.append for p in pend]
        rid = self._next_rid
        bk0 = bk1 = bk2 = bfin = None
        # --- admission: _choose_fast over the chunk's table constants --- #
        for a, s, d, combo in zip(arr[pos:end], si[pos:end], dl[pos:end],
                                  creq):
            if s == 1:  # THROUGHPUT
                sj = combo[5]
                if sj >= 0:
                    bj = sj
                    av = avail[bj]
                    bfin = (av if av > a else a) + combo[2][bj]
                else:
                    lat = combo[2]
                    tkey0 = combo[4]
                    bj = -1
                    for j in range(nn):
                        k0 = tkey0[j]
                        av = avail[j]
                        fin_j = (av if av > a else a) + lat[j]
                        if bj < 0 or k0 < bk0:
                            take = True
                        elif k0 == bk0:
                            take = fin_j < bk1 or (
                                fin_j == bk1 and node_ids[j] < bk2
                            )
                        else:
                            take = False
                        if take:
                            bj, bk0, bk1, bk2 = j, k0, fin_j, node_ids[j]
                            bfin = fin_j
                feas = True
            elif s == 0:  # LATENCY
                if d is None or d <= 0:
                    raise ConfigurationError(
                        "latency-class requests need a positive deadline_s"
                    )
                lat = combo[2]
                any_f = False
                bj = -1
                for j in range(nn):
                    av = avail[j]
                    fin_j = (av if av > a else a) + lat[j]
                    lat_j = fin_j - a
                    feasible = lat_j <= d
                    if feasible and not any_f:
                        any_f = True
                        bj = -1
                    if any_f and not feasible:
                        continue
                    k0 = lat_j * risk[j]
                    if bj < 0 or k0 < bk0:
                        take = True
                    elif k0 == bk0:
                        e_j = combo[3][j]
                        take = e_j < bk1 or (
                            e_j == bk1 and node_ids[j] < bk2
                        )
                    else:
                        take = False
                    if take:
                        bj, bk0, bk1, bk2 = j, k0, combo[3][j], node_ids[j]
                        bfin = fin_j
                feas = any_f
            else:  # BEST_EFFORT
                lat = combo[2]
                bj = -1
                for j in range(nn):
                    av = avail[j]
                    st = av if av > a else a
                    k0 = (st - a) * risk[j]
                    if bj < 0 or k0 < bk0:
                        take = True
                    elif k0 == bk0:
                        h_j = hazard[j]
                        take = h_j < bk1 or (
                            h_j == bk1 and node_ids[j] < bk2
                        )
                    else:
                        take = False
                    if take:
                        bj, bk0, bk1, bk2 = j, k0, hazard[j], node_ids[j]
                        bfin = st + lat[j]
                feas = True
            avail[bj] = bfin
            cur = combo[12]
            combo[12] = 0 if cur + 1 == combo[11] else cur + 1
            appends[bj]((rid, a, d, feas, s, cur, combo))
            rid += 1
        for combo in combos.values():
            slot_cursor[combo[1]] = combo[12]
        # --- dispatch: one FIFO pass per node --------------------------- #
        telemetry = self.telemetry
        buffers = self._buffers
        n = end - pos
        sla_values = _SLA_VALUES
        mxfin = self.clock
        rank = sorted(range(nn), key=node_ids.__getitem__)
        order_of = [0] * nn
        for r, j in enumerate(rank):
            order_of[j] = r
        st_arr = np.empty(n)
        rk_arr = np.empty(n, dtype=np.intp)
        rows_cat: List[tuple] = []
        ids_cat: List[int] = []
        offsets = [0] * nn
        ord0s = [0] * nn
        filled = 0
        for j in range(nn):
            pj = pend[j]
            offsets[j] = filled
            if not pj:
                continue  # untouched node: leave its reservation alone
            node = active[j]
            buf = buffers.get(node.node_id)
            if buf is None:
                buf = _ChargeBuffer(node.engine)
                buffers[node.node_id] = buf
            elif not buf.dispatches and buf.engine is not node.engine:
                buf.engine = node.engine
                buf.macros_seen.clear()
            ord0s[j] = len(buf.dispatches)
            dapp = buf.dispatches.append
            ntel = node.telemetry
            comp_j = comp[j]
            busy_j = ntel.busy_s
            ewma_j = ntel.ewma_image_latency_s
            alpha_j = ntel.ewma_alpha
            first = ntel.dispatches == 0
            imgs_j = 0
            miss_j = 0
            sce_j = node.spot_check_every
            hs_j = node._memo_hits_since_check
            spots_j = 0
            memo = node.forward_memo
            nid = node_ids[j]
            sts_j: List[float] = []
            sapp = sts_j.append
            rapp = rows_cat.append
            iapp = ids_cat.append
            for e_rid, a, d, feas, s, slot, combo in pj:
                st = comp_j if comp_j > a else a
                compute_s = combo[6][j]
                fin = st + compute_s
                comp_j = fin
                dapp(combo[7][j])
                iapp(combo[13] + slot)
                spot = False
                if sce_j:
                    hs_j += 1
                    if hs_j >= sce_j:
                        hs_j = 0
                        spots_j += 1
                        key = combo[9][slot]
                        fresh = node._plain_forward(
                            combo[0], combo[10][slot][1]
                        )
                        if not np.array_equal(fresh, memo._entries[key]):
                            raise ConfigurationError(
                                f"analytic spot check failed on node "
                                f"{node.node_id!r} for model {combo[0]!r}: "
                                "memoised predictions diverge from a fresh "
                                "forward (input digests must uniquely "
                                "identify request images)"
                            )
                        spot = True
                count = combo[14]
                missed = d is not None and (fin - a) > d
                if missed:
                    miss_j += 1
                rapp((
                    e_rid, combo[0], nid, sla_values[s], count, a, st,
                    fin, compute_s, d, missed, True, False, feas,
                    "analytic", 1, spot, False,
                ))
                sapp(st)
                imgs_j += count
                busy_j += compute_s
                sample = compute_s / count
                if first:
                    ewma_j = sample
                    first = False
                else:
                    ewma_j = ewma_j + alpha_j * (sample - ewma_j)
            k = len(pj)
            st_arr[filled:filled + k] = sts_j
            rk_arr[filled:filled + k] = order_of[j]
            filled += k
            comp[j] = comp_j
            if comp_j > mxfin:
                mxfin = comp_j
            node.available_s = comp_j
            completed[nid] = comp_j
            ntel.dispatches += k
            ntel.images += imgs_j
            ntel.busy_s = busy_j
            ntel.deadline_misses += miss_j
            ntel.affinity_hits += k
            ntel.ewma_image_latency_s = ewma_j
            node._memo_hits_since_check = hs_j
            node.spot_checks += spots_j
        # --- merged order + chunk-boundary write-backs ------------------ #
        # Stable sort by (start, node rank) == the heap's pick order:
        # per-node starts are nondecreasing, so this *is* the k-way merge.
        order = np.lexsort((rk_arr, st_arr))
        rows = [rows_cat[k] for k in order.tolist()]
        base = telemetry.record_rows_batch(rows)
        inv = np.empty(n, dtype=np.intp)
        inv[order] = np.arange(n, dtype=np.intp)
        for j in range(nn):
            pj = pend[j]
            if not pj:
                continue
            ofs = offsets[j]
            k = len(pj)
            buf2 = buffers[node_ids[j]]
            buf2.row_indexes.extend((inv[ofs:ofs + k] + base).tolist())
            buf2.ordinals.extend(range(ord0s[j], ord0s[j] + k))
            buf2.fractions.extend(repeat(None, k))
        # Memo hit counters and LRU order: one pass per distinct memo,
        # touching each *key* once (in last-touch order) instead of once
        # per dispatch.
        groups: Dict[int, list] = {}
        for j in range(nn):
            if pend[j]:
                groups.setdefault(
                    id(active[j].forward_memo), []
                ).append(j)
        ids_arr = np.asarray(ids_cat, dtype=np.intp)
        for members in groups.values():
            memo = active[members[0]].forward_memo
            memo.hits += sum(len(pend[j]) for j in members)
            last = np.full(len(key_table), -1, dtype=np.intp)
            if len(members) == 1:
                j = members[0]
                ofs = offsets[j]
                sl = slice(ofs, ofs + len(pend[j]))
                # Within one node positions are already ascending, so the
                # final assignment per key id is its last touch.
                last[ids_arr[sl]] = inv[sl]
            else:
                ids_g = np.concatenate(
                    [ids_arr[offsets[j]:offsets[j] + len(pend[j])]
                     for j in members]
                )
                pos_g = np.concatenate(
                    [inv[offsets[j]:offsets[j] + len(pend[j])]
                     for j in members]
                )
                srt = np.argsort(pos_g, kind="stable")
                last[ids_g[srt]] = pos_g[srt]
            touched = np.nonzero(last >= 0)[0]
            move = memo._entries.move_to_end
            ordered = touched[np.argsort(last[touched], kind="stable")]
            for kid in ordered.tolist():
                move(key_table[kid])
        last_arrival = arr[end - 1]
        self.clock = mxfin if mxfin > last_arrival else last_arrival
        self._completed_count += n
        self._next_rid = rid
        telemetry.maybe_fold()

    def result(self, request_id: int):
        if request_id in self._failed:
            raise self._failed[request_id]
        if not self.retain_results:
            raise ConfigurationError(
                "results are not retained (retain_results=False)"
            )
        result = self._materialize(request_id)
        if result is None:
            raise ConfigurationError(
                f"request {request_id} is not complete; call drain()"
            )
        return result

    def decision(self, request_id: int) -> PlacementDecision:
        if not self.retain_results:
            raise ConfigurationError(
                "decision() needs per-request placements; this router was "
                "built with retain_results=False (use the telemetry "
                "aggregates)"
            )
        d = self._decisions.get(request_id)
        if d is None:
            raise ConfigurationError(f"unknown request {request_id}")
        return PlacementDecision(
            request_id=request_id,
            node_id=d[0],
            sla=d[1],
            feasible=d[2],
            affinity_hit=d[3],
            replicated=d[4],
            est_start_s=d[5],
            est_finish_s=d[6],
            est_latency_s=d[7],
            est_energy_per_image_j=d[8],
            candidates=d[9],
        )

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    @property
    def completed_requests(self) -> int:
        return self._completed_count

    @property
    def failed_requests(self) -> int:
        return len(self._failed)

    @property
    def replayed_requests(self) -> int:
        return len(self._replayed)

    def shutdown(self) -> None:
        self.flush_all()
        for node in self.nodes:
            node.shutdown()
