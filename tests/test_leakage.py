"""Unit tests for the static-power (leakage) model."""

import pytest

from repro.circuits.energy import OperationEnergyModel
from repro.circuits.leakage import LeakageModel, LeakageParameters
from repro.errors import ConfigurationError
from repro.tech import OperatingPoint, ProcessCorner


@pytest.fixture()
def model():
    return LeakageModel()


class TestLeakagePower:
    def test_magnitude_is_plausible(self, model):
        power = model.leakage_power(OperatingPoint(vdd=0.9))
        # A 16 Kb 28 nm array leaks on the order of microwatts to tens of
        # microwatts.
        assert 1e-6 < power < 1e-4

    def test_increases_with_supply(self, model):
        low = model.leakage_power(OperatingPoint(vdd=0.6))
        high = model.leakage_power(OperatingPoint(vdd=1.1))
        assert high > 2 * low

    def test_increases_with_temperature(self, model):
        cold = model.leakage_power(OperatingPoint(temperature_c=25.0))
        hot = model.leakage_power(OperatingPoint(temperature_c=85.0))
        assert hot > 5 * cold

    def test_fast_corner_leaks_more(self, model):
        ss = model.leakage_power(OperatingPoint(corner=ProcessCorner.SS))
        ff = model.leakage_power(OperatingPoint(corner=ProcessCorner.FF))
        assert ff > ss

    def test_scales_with_array_size(self):
        small = LeakageModel(rows=64, cols=64)
        large = LeakageModel(rows=128, cols=128)
        point = OperatingPoint()
        assert large.leakage_power(point) > 3 * small.leakage_power(point)

    def test_peripheral_share_is_small(self, model):
        share = model.peripheral_share(OperatingPoint())
        assert 0.0 < share < 0.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LeakageParameters(cell_leakage_a=0.0)


class TestEfficiencyWithLeakage:
    def test_leakage_reduces_tops_per_watt(self, model, calibration):
        energy_model = OperationEnergyModel(calibration)
        point = OperatingPoint(vdd=0.6)
        dynamic = energy_model.add_energy(8, vdd=0.6).total_j
        dynamic_only = 1.0 / (dynamic * 1e12)
        with_leakage = model.effective_tops_per_watt(
            dynamic_energy_j=dynamic,
            operation_cycles=1,
            cycle_time_s=2.6e-9,
            point=point,
            parallel_operations=4,
        )
        assert with_leakage < dynamic_only
        # Leakage is a correction, not the dominant term, for a busy macro.
        assert with_leakage > 0.5 * dynamic_only

    def test_parallelism_amortises_leakage(self, model):
        point = OperatingPoint(vdd=0.6)
        serial = model.energy_per_operation_with_leakage(
            100e-15, 1, 2.6e-9, point, parallel_operations=1
        )
        parallel = model.energy_per_operation_with_leakage(
            100e-15, 1, 2.6e-9, point, parallel_operations=4
        )
        assert parallel < serial

    def test_longer_operations_pay_more_leakage(self, model):
        point = OperatingPoint(vdd=0.6)
        one_cycle = model.energy_per_operation_with_leakage(100e-15, 1, 2.6e-9, point)
        ten_cycles = model.energy_per_operation_with_leakage(100e-15, 10, 2.6e-9, point)
        assert ten_cycles > one_cycle

    def test_argument_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.energy_per_operation_with_leakage(1e-15, 0, 1e-9, OperatingPoint())
