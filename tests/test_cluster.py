"""Tests for the DVFS-aware cluster runtime (repro.cluster).

Everything runs in modeled virtual time, so scheduling behaviour is
deterministic and can be pinned down to equality: placements, deadline
outcomes, affinity hits, replication, autoscaler actions, and the
cluster-ledger conservation law.
"""

import numpy as np
import pytest

from repro.analysis.experiments import cluster_scheduling_study
from repro.cluster import (
    ClusterNode,
    ClusterRouter,
    NodeState,
    ReactiveAutoscaler,
    SLAClass,
    SLAScheduler,
    model_weight_codes,
)
from repro.dnn import make_pattern_image_dataset, train_pattern_cnn
from repro.errors import ConfigurationError
from repro.utils.validation import check_ledger_conservation

NUM_MACROS = 16


@pytest.fixture(scope="module")
def trained():
    dataset = make_pattern_image_dataset(samples=90, size=8)
    model_a, _ = train_pattern_cnn(dataset, epochs=6, seed=0)
    model_b, _ = train_pattern_cnn(dataset, epochs=6, seed=1)
    return dataset, model_a, model_b


def _node(node_id, vdd, **kwargs):
    kwargs.setdefault("num_macros", NUM_MACROS)
    return ClusterNode(node_id, vdd=vdd, **kwargs)


def _router(models, vdds, **kwargs):
    nodes = [_node(f"n{i}-{vdd:.1f}v", vdd) for i, vdd in enumerate(vdds)]
    router = ClusterRouter(nodes, **kwargs)
    for model_id, model in models.items():
        router.register_model(model_id, model)
    return router


class TestClusterNode:
    def test_operating_point_sets_frequency_and_energy(self, trained):
        _, model_a, _ = trained
        fast = _node("fast", 1.0)
        eco = _node("eco", 0.6)
        assert fast.max_frequency_hz > 5 * eco.max_frequency_hz
        assert fast.cycle_time_s < eco.cycle_time_s
        for node in (fast, eco):
            node.register_model("m", model_a)
        images = np.zeros((2, 1, 8, 8))
        est_fast = fast.estimate_request("m", images)
        est_eco = eco.estimate_request("m", images)
        # Identical work, different physics.
        assert est_fast.critical_path_cycles == est_eco.critical_path_cycles
        assert est_fast.latency_s < est_eco.latency_s
        assert est_fast.energy_j > est_eco.energy_j

    def test_model_weight_codes_covers_cnn_and_mlp(self, trained):
        _, model_a, _ = trained
        codes = model_weight_codes(model_a)
        assert len(codes) == len(model_a.conv_layers) + len(model_a.head.layers)
        assert model_weight_codes(model_a.head)  # bare MLP works too
        with pytest.raises(ConfigurationError):
            model_weight_codes(object())

    def test_registration_and_residency_lifecycle(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.9)
        node.register_model("m", model_a)
        with pytest.raises(ConfigurationError):
            node.register_model("m", model_a)  # duplicate
        with pytest.raises(ConfigurationError):
            node.estimate_request("ghost", dataset.test_images[:1])
        assert not node.holds_model("m")
        dispatch = node.execute("m", dataset.test_images[:2])
        assert dispatch.programmed and not dispatch.affinity_hit
        assert node.holds_model("m")
        again = node.execute("m", dataset.test_images[:2])
        assert again.affinity_hit and not again.programmed

    def test_register_refuses_models_the_geometry_cannot_hold(self, trained):
        _, model_a, _ = trained
        # The stock CNN's 144-row dense head cannot become resident on the
        # default 8-macro cache; silently accepting it would re-charge
        # programming on every dispatch and disable affinity forever.
        small = ClusterNode("small", vdd=0.9, num_macros=8)
        with pytest.raises(ConfigurationError, match="allow_transient"):
            small.register_model("m", model_a)
        small.register_model("m", model_a, allow_transient=True)
        assert "m" in small.model_ids

    def test_register_checks_aggregate_residency_not_just_per_layer(self):
        # Two layers that fit individually (100 rows each vs a 125-row
        # single-macro cache) but can never be resident together: every
        # forward pass would evict the other layer.
        rng = np.random.default_rng(0)

        class StubLayer:
            def __init__(self):
                class Q:
                    codes = rng.integers(-9, 10, size=(100, 2))

                self.quantized_weights = Q()

        class StubMLP:
            layers = [StubLayer(), StubLayer()]

            def with_backend(self, matmul):
                return self

        node = ClusterNode("tiny", vdd=0.9, num_macros=1)
        with pytest.raises(ConfigurationError, match="allow_transient"):
            node.register_model("m", StubMLP())
        node.register_model("m", StubMLP(), allow_transient=True)

    def test_execute_is_bit_exact_vs_reference(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.6)
        node.register_model("m", model_a)
        images = dataset.test_images[:5]
        dispatch = node.execute("m", images)
        assert np.array_equal(dispatch.predictions, model_a.predict(images))

    def test_engine_matches_per_lane_oracle_on_node(self, trained):
        # The acceptance oracle: a cluster node's engine agrees with the
        # full per-lane on-array reference path.
        node = _node("n", 0.6, num_macros=2)
        rng = np.random.default_rng(11)
        acts = rng.integers(-9, 10, size=(3, 40))
        weights = rng.integers(-9, 10, size=(40, 6))
        fast = node.engine.matmul(acts, weights, layer_id="probe")
        oracle = node.engine.matmul_reference(acts, weights, layer_id="probe")
        assert np.array_equal(fast, oracle)

    def test_warm_estimate_brackets_measured_compute(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.9)
        node.register_model("m", model_a)
        images = dataset.test_images[:3]
        node.execute("m", images)  # warm the cache
        estimate = node.estimate_request("m", images)
        assert estimate.resident and estimate.program_cycles == 0
        dispatch = node.execute("m", images)
        # The estimate treats layers as sequential barriers; the measured
        # batch critical path allows cross-layer overlap on the macros, so
        # the estimate is a tight conservative bound.
        assert dispatch.compute_s <= estimate.latency_s <= 1.5 * dispatch.compute_s
        # Energy has no overlap subtlety: planning equals measurement.
        assert estimate.energy_j == pytest.approx(dispatch.energy_j, rel=1e-9)

    def test_parked_node_refuses_dispatch(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.9)
        node.register_model("m", model_a)
        node.park()
        assert node.state is NodeState.PARKED
        with pytest.raises(ConfigurationError):
            node.execute("m", dataset.test_images[:1])
        node.wake()
        node.execute("m", dataset.test_images[:1])

    def test_retune_rebuilds_chip_and_preserves_ledger(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.6)
        node.register_model("m", model_a)
        node.execute("m", dataset.test_images[:2])
        cycles_before = node.ledger().total_cycles
        assert node.holds_model("m")
        node.retune(1.0)
        assert node.vdd == 1.0
        assert node.chip.operating_point.vdd == 1.0
        # The rail change invalidated the arrays: weights must re-program.
        assert not node.holds_model("m")
        # ...but history is not lost.
        assert node.ledger().total_cycles == cycles_before
        dispatch = node.execute("m", dataset.test_images[:2])
        assert dispatch.programmed
        assert node.ledger().total_cycles > cycles_before

    def test_retune_stops_old_server_workers(self, trained):
        _, model_a, _ = trained
        node = _node("n", 0.6)
        node.register_model("m", model_a)
        old_server = node.server_for("m")
        old_server.start()
        node.retune(1.0)
        # The retired engine's worker must not linger for the process
        # lifetime; the rebuilt server is a fresh object.
        assert old_server._worker is None
        assert node.server_for("m") is not old_server
        node.shutdown()

    def test_retune_to_same_vdd_is_a_no_op(self, trained):
        dataset, model_a, _ = trained
        node = _node("n", 0.9)
        node.register_model("m", model_a)
        node.execute("m", dataset.test_images[:1])
        chip = node.chip
        node.retune(0.9)
        assert node.chip is chip  # nothing rebuilt, cache intact

    def test_explicit_precision_wins_over_passed_config(self):
        from repro.core import MacroConfig

        node = ClusterNode("n", precision_bits=4, config=MacroConfig())
        assert node.chip.precision_bits == 4
        assert ClusterNode("m").chip.precision_bits == 8  # default unchanged

    def test_context_manager_shutdown_is_idempotent(self, trained):
        _, model_a, _ = trained
        with _node("n", 0.9) as node:
            node.register_model("m", model_a)
        node.shutdown()  # safe to repeat after __exit__


class TestScheduling:
    def test_latency_class_routes_to_fast_node(self, trained):
        dataset, model_a, model_b = trained
        router = _router({"a": model_a}, vdds=(0.6, 1.0))
        deadline = 5 * router.nodes[1].estimate_request("a", dataset.test_images[:2]).latency_s
        request = router.submit(
            "a", dataset.test_images[:2], sla=SLAClass.LATENCY, deadline_s=deadline
        )
        decision = router.decision(request)
        assert decision.node_id == router.nodes[1].node_id  # the 1.0 V node
        assert decision.feasible
        result = router.drain()[0]
        assert not result.deadline_missed

    def test_throughput_class_routes_to_efficient_node(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6, 1.0))
        request = router.submit(
            "a", dataset.test_images[:4], sla=SLAClass.THROUGHPUT
        )
        assert router.decision(request).node_id == router.nodes[0].node_id

    def test_latency_class_requires_deadline(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9,))
        with pytest.raises(ConfigurationError):
            router.submit("a", dataset.test_images[:1], sla=SLAClass.LATENCY)

    def test_infeasible_deadline_is_flagged_and_missed(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6,))
        fast_lat = router.nodes[0].estimate_request("a", dataset.test_images[:2]).latency_s
        request = router.submit(
            "a",
            dataset.test_images[:2],
            sla=SLAClass.LATENCY,
            deadline_s=fast_lat / 100.0,
        )
        decision = router.decision(request)
        assert not decision.feasible
        result = router.drain()[0]
        assert result.deadline_missed
        assert router.telemetry.deadline_miss_rate() == 1.0

    def test_affinity_routes_warm_traffic_to_resident_node(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6, 0.6))
        first = router.submit("a", dataset.test_images[:3], sla=SLAClass.THROUGHPUT)
        router.drain()
        resident_node = router.result(first).node_id
        # The model is now resident on exactly one node; cold-capable pool
        # restriction must keep sending its traffic there.
        for _ in range(3):
            request = router.submit(
                "a", dataset.test_images[:3], sla=SLAClass.THROUGHPUT
            )
            router.drain()
            result = router.result(request)
            assert result.node_id == resident_node
            assert result.affinity_hit and not result.programmed

    def test_hot_model_replicates_to_second_node(self, trained):
        dataset, model_a, _ = trained
        router = _router(
            {"a": model_a},
            vdds=(0.6, 1.0),
            scheduler=SLAScheduler(hot_threshold=2),
        )
        for _ in range(4):
            router.submit("a", dataset.test_images[:3], sla=SLAClass.THROUGHPUT)
            router.drain()
        holders = [node for node in router.nodes if node.holds_model("a")]
        assert len(holders) == 2  # replicated once the model ran hot
        replicated = [
            router.decision(trace.request_id).replicated
            for trace in router.telemetry.traces
        ]
        assert any(replicated)

    def test_best_effort_replication_respects_max_replicas(self, trained):
        dataset, model_a, _ = trained
        router = _router(
            {"a": model_a},
            vdds=(0.9, 0.9, 0.9),
            scheduler=SLAScheduler(hot_threshold=1, max_replicas=2),
        )
        for _ in range(6):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
            router.drain()
        holders = [node for node in router.nodes if node.holds_model("a")]
        # Hot best-effort traffic spreads to the replica cap and no further.
        assert len(holders) == 2

    def test_burst_admission_cannot_overshoot_the_replica_cap(self, trained):
        dataset, model_a, _ = trained
        router = _router(
            {"a": model_a},
            vdds=(0.9, 0.9, 0.9),
            scheduler=SLAScheduler(hot_threshold=1, max_replicas=2),
        )
        # Warm one node and make the model hot.
        seed = router.submit("a", dataset.test_images[:2], sla=SLAClass.THROUGHPUT)
        router.drain()
        holder = router.result(seed).node_id
        # A burst admitted before any dispatch: the queued placement on the
        # new replica must count toward the cap, or the second request
        # replicates onto a third node.
        for _ in range(3):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.THROUGHPUT)
        router.drain()
        holders = [node.node_id for node in router.nodes if node.holds_model("a")]
        assert holder in holders
        assert len(holders) == 2

    def test_best_effort_cold_burst_converges_then_hot_spreads(self, trained):
        dataset, model_a, _ = trained
        router = _router(
            {"a": model_a},
            vdds=(0.9, 0.9),
            scheduler=SLAScheduler(hot_threshold=1, max_replicas=2),
        )
        requests = [
            router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
            for _ in range(4)
        ]
        # A cold burst queues behind the first programming (pending
        # placements count as affinity) — one programming charge total.
        placements = {router.decision(r).node_id for r in requests}
        assert len(placements) == 1
        results = router.drain()
        assert sum(r.programmed for r in results) == 1
        # The model is hot now: the next burst spreads to the replica cap.
        for _ in range(2):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
        router.drain()
        holders = [node for node in router.nodes if node.holds_model("a")]
        assert len(holders) == 2

    def test_all_nodes_parked_refuses_admission(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9,))
        router.nodes[0].park()
        with pytest.raises(ConfigurationError):
            router.submit("a", dataset.test_images[:1])


class TestRouterAccounting:
    def test_results_bit_exact_and_accounted(self, trained):
        dataset, model_a, model_b = trained
        router = _router({"a": model_a, "b": model_b}, vdds=(1.0, 0.6))
        images = dataset.test_images[:4]
        ids = {
            "a": router.submit("a", images, sla=SLAClass.THROUGHPUT),
            "b": router.submit("b", images, sla=SLAClass.BEST_EFFORT),
        }
        results = router.drain()
        assert len(results) == 2
        for model_id, request_id in ids.items():
            model = {"a": model_a, "b": model_b}[model_id]
            result = router.result(request_id)
            assert np.array_equal(result.predictions, model.predict(images))
            assert result.energy_j > 0
            assert result.compute_s > 0
            assert result.finish_s >= result.start_s >= result.arrival_s

    def test_cluster_ledger_equals_sum_of_node_ledgers(self, trained):
        dataset, model_a, model_b = trained
        router = _router({"a": model_a, "b": model_b}, vdds=(1.0, 0.6, 0.6))
        for start in range(0, 12, 3):
            router.submit(
                "a" if start % 2 else "b",
                dataset.test_images[start : start + 3],
                sla=SLAClass.THROUGHPUT if start % 2 else SLAClass.BEST_EFFORT,
            )
        router.drain()
        # Retune one node so the conservation law also covers retired chips.
        router.nodes[2].retune(1.0)
        router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
        router.drain()
        check_ledger_conservation(
            router.ledger(), [node.ledger() for node in router.nodes]
        )

    def test_virtual_time_is_monotonic_and_fifo_per_node(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9,))
        for _ in range(3):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
        results = router.drain()
        starts = [r.start_s for r in results]
        finishes = [r.finish_s for r in results]
        assert starts == sorted(starts)
        assert all(f2 >= f1 for f1, f2 in zip(finishes, finishes[1:]))
        # Back-to-back arrivals queue behind each other on the single node.
        assert results[1].queue_delay_s > 0

    def test_queue_depth_and_summary(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9,))
        router.submit("a", dataset.test_images[:1])
        assert router.queue_depth() == 1
        router.drain()
        assert router.queue_depth() == 0
        summary = router.summary()
        assert summary["cluster"]["requests"] == 1.0
        assert set(summary["nodes"]) == {router.nodes[0].node_id}

    def test_context_manager_and_unknown_lookups(self, trained):
        dataset, model_a, _ = trained
        with _router({"a": model_a}, vdds=(0.9,)) as router:
            with pytest.raises(ConfigurationError):
                router.node("ghost")
            with pytest.raises(ConfigurationError):
                router.result(123)
            with pytest.raises(ConfigurationError):
                router.submit("a", np.zeros((0, 1, 8, 8)))
        router.shutdown()  # idempotent after __exit__

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterRouter([_node("dup", 0.9), _node("dup", 0.6)])

    def test_dispatch_failure_is_stored_and_reraised(self, trained):
        dataset, model_a, _ = trained

        class ExplodingCNN:
            """Looks like a CNN to registration; fails at prediction."""

            def __init__(self, cnn):
                self.conv_layers = cnn.conv_layers
                self.head = cnn.head

            def with_backend(self, matmul):
                return self

            def predict(self, images):
                raise RuntimeError("boom")

        router = _router({"bad": ExplodingCNN(model_a)}, vdds=(0.9,))
        request = router.submit("bad", dataset.test_images[:2])
        with pytest.raises(RuntimeError, match="boom"):
            router.drain()
        # The failure sticks to the request instead of it silently
        # vanishing from the queue with result() forever "not complete",
        # and the failed request's virtual-clock reservation is released.
        with pytest.raises(RuntimeError, match="boom"):
            router.result(request)
        assert router.nodes[0].available_s == 0.0

    def test_parking_a_node_requeues_its_backlog(self, trained):
        dataset, model_a, _ = trained
        router = _router(
            {"a": model_a},
            vdds=(0.9, 0.9),
            scheduler=SLAScheduler(hot_threshold=1),  # no affinity pinning
        )
        requests = [
            router.submit("a", dataset.test_images[:2]) for _ in range(4)
        ]
        parked = router.nodes[0]
        parked.park()
        # Nothing fails: the parked node's backlog is re-placed on the
        # other node and everything completes.
        results = router.drain()
        assert {r.request_id for r in results} == set(requests)
        assert all(r.node_id == router.nodes[1].node_id for r in results)
        # With the whole fleet parked, work waits instead of failing.
        router.nodes[1].park()
        waiting = router.submit  # admission requires an active node
        with pytest.raises(ConfigurationError):
            waiting("a", dataset.test_images[:2])
        parked.wake()
        queued = router.submit("a", dataset.test_images[:2])
        parked.park()
        assert router.drain() == []  # all parked: queued, not poisoned
        assert router.queue_depth() == 1
        parked.wake()
        router.drain()
        assert router.result(queued).predictions.shape == (2,)


class TestAutoscaler:
    def test_wakes_parked_node_on_queue_pressure(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9, 0.6))
        eco = router.nodes[1]
        eco.park()
        scaler = ReactiveAutoscaler(router, wake_queue_depth=1)
        for _ in range(3):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
        actions = scaler.observe()
        assert [a.action for a in actions] == ["wake"]
        assert actions[0].node_id == eco.node_id  # backlog -> efficient node
        assert eco.state is NodeState.ACTIVE
        router.drain()

    def test_wakes_for_any_backlog_when_fleet_fully_parked(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9, 0.6))
        request = router.submit("a", dataset.test_images[:2])
        for node in router.nodes:
            node.park()
        # One queued request is below the per-node wake threshold, but with
        # zero active nodes nothing else can ever drain it.
        scaler = ReactiveAutoscaler(router, wake_queue_depth=3)
        actions = scaler.observe()
        assert [a.action for a in actions] == ["wake"]
        router.drain()
        assert router.result(request).predictions.shape == (2,)

    def test_wakes_fastest_node_on_deadline_misses(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6, 1.0))
        fast = router.nodes[1]
        fast.park()
        eco_latency = router.nodes[0].estimate_request(
            "a", dataset.test_images[:2]
        ).latency_s
        router.submit(
            "a",
            dataset.test_images[:2],
            sla=SLAClass.LATENCY,
            deadline_s=eco_latency / 10.0,
        )
        router.drain()  # the eco node misses the deadline
        scaler = ReactiveAutoscaler(router, wake_queue_depth=100)
        actions = scaler.observe()
        assert [a.action for a in actions] == ["wake"]
        assert actions[0].node_id == fast.node_id  # misses -> fastest silicon
        assert "miss" in actions[0].reason

    def test_parks_idle_nodes_down_to_min_active(self, trained):
        _, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(1.0, 0.6))
        scaler = ReactiveAutoscaler(router, min_active=1, park_after_idle=2)
        parked = []
        for _ in range(5):
            parked.extend(a for a in scaler.observe() if a.action == "park")
        assert [a.node_id for a in parked] == [router.nodes[0].node_id]
        assert router.nodes[0].state is NodeState.PARKED  # fast one parks
        assert router.nodes[1].state is NodeState.ACTIVE  # floor holds

    def test_retunes_up_when_missing_with_no_parked_capacity(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6,))
        node = router.nodes[0]
        eco_latency = node.estimate_request("a", dataset.test_images[:2]).latency_s
        router.submit(
            "a",
            dataset.test_images[:2],
            sla=SLAClass.LATENCY,
            deadline_s=eco_latency / 10.0,
        )
        router.drain()
        cycles_before = node.ledger().total_cycles
        scaler = ReactiveAutoscaler(
            router, voltage_rungs=(0.6, 1.0), park_after_idle=100
        )
        actions = scaler.observe()
        assert [a.action for a in actions] == ["retune_up"]
        assert node.vdd == 1.0
        assert node.ledger().total_cycles == cycles_before  # history kept

    def test_retunes_down_when_fleet_is_quiet(self, trained):
        _, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(1.0,))
        scaler = ReactiveAutoscaler(
            router, min_active=1, park_after_idle=2, voltage_rungs=(0.6, 1.0)
        )
        actions = []
        for _ in range(4):
            actions.extend(scaler.observe())
        assert [a.action for a in actions] == ["retune_down"]
        assert router.nodes[0].vdd == 0.6

    def test_miss_pressure_decays_without_traffic(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(1.0, 0.6))
        fast_latency = router.nodes[0].estimate_request(
            "a", dataset.test_images[:2]
        ).latency_s
        router.submit(
            "a",
            dataset.test_images[:2],
            sla=SLAClass.LATENCY,
            deadline_s=fast_latency / 100.0,  # a guaranteed miss
        )
        router.drain()
        scaler = ReactiveAutoscaler(
            router, min_active=1, park_after_idle=2, voltage_rungs=(0.6, 1.0)
        )
        # The window only moves with traffic, so a lone stale miss must not
        # hold the idle fleet awake at full voltage forever: once no new
        # traffic arrives, pressure decays and idle nodes park normally.
        for _ in range(6):
            scaler.observe()
        active = [n for n in router.nodes if n.state is NodeState.ACTIVE]
        assert len(active) == 1

    def test_throughput_traffic_does_not_sustain_stale_miss_pressure(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.6, 1.0))
        fast = router.nodes[1]
        fast.park()
        eco_latency = router.nodes[0].estimate_request(
            "a", dataset.test_images[:2]
        ).latency_s
        router.submit(
            "a",
            dataset.test_images[:2],
            sla=SLAClass.LATENCY,
            deadline_s=eco_latency / 10.0,
        )
        router.drain()  # one stale miss
        scaler = ReactiveAutoscaler(router, wake_queue_depth=100, park_after_idle=100)
        assert [a.action for a in scaler.observe()] == ["wake"]  # fresh miss
        fast.park()
        # Pure throughput traffic keeps the trace window moving but carries
        # no deadlines: the stale miss must not keep re-waking the fleet.
        for _ in range(3):
            router.submit("a", dataset.test_images[:2], sla=SLAClass.THROUGHPUT)
            router.drain()
            assert scaler.observe() == []

    def test_no_action_under_normal_load(self, trained):
        dataset, model_a, _ = trained
        router = _router({"a": model_a}, vdds=(0.9, 0.6))
        scaler = ReactiveAutoscaler(router, park_after_idle=100)
        router.submit("a", dataset.test_images[:2], sla=SLAClass.BEST_EFFORT)
        assert scaler.observe() == []
        router.drain()
        assert scaler.observe() == []


class TestClusterSchedulingStudy:
    """The acceptance criteria of the cluster PR, pinned on a small study."""

    @pytest.fixture(scope="class")
    def study(self):
        return cluster_scheduling_study(
            fleets={
                "dvfs_mixed": (1.0, 0.6),
                "homogeneous_high": (1.0, 1.0),
                "homogeneous_low": (0.6, 0.6),
            },
            samples=90,
            epochs=6,
            waves=4,
        )

    def test_mixed_fleet_has_zero_misses_and_full_feasibility(self, study):
        mixed = study["dvfs_mixed"]
        assert mixed.latency_miss_rate == 0.0
        assert mixed.latency_feasible_rate == 1.0

    def test_mixed_beats_high_fleet_on_throughput_energy(self, study):
        assert (
            study["dvfs_mixed"].throughput_energy_per_image_j
            < study["homogeneous_high"].throughput_energy_per_image_j
        )

    def test_mixed_beats_low_fleet_on_deadline_misses(self, study):
        assert (
            study["dvfs_mixed"].latency_miss_rate
            < study["homogeneous_low"].latency_miss_rate
        )
        assert study["homogeneous_low"].latency_miss_rate > 0.5

    def test_every_fleet_is_bit_exact_and_ledger_conserved(self, study):
        for point in study.values():
            assert point.bit_exact
            assert point.ledger_conserved
            assert point.requests == point.latency_requests + (
                point.requests - point.latency_requests
            )

    def test_study_is_deterministic(self, study):
        again = cluster_scheduling_study(
            fleets={"dvfs_mixed": (1.0, 0.6)}, samples=90, epochs=6, waves=4
        )["dvfs_mixed"]
        reference = study["dvfs_mixed"]
        assert again.latency_mean_s == reference.latency_mean_s
        assert again.total_energy_j == reference.total_energy_j
        assert again.programmed_dispatches == reference.programmed_dispatches
