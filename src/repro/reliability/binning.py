"""Variation-aware chip binning: from Monte-Carlo draws to speed/energy bins.

The paper's central reliability result is that *local device variation sets
the safe operating frequency*: the Fig. 2 Monte-Carlo spread of bit-line /
sense-amp delays means a chip cannot be clocked at its nominal-corner delay
but at the tail of its own variation population.  The cluster runtime used
to treat every chip as a nominal-corner clone; this module turns each chip
into an individually *binned* device, the way real silicon is speed-binned
at test:

* every chip draws a **chip-wide (global) threshold offset** — where the die
  landed on the process distribution — plus the usual per-access local
  mismatch population, through
  :meth:`repro.circuits.montecarlo.MonteCarloEngine.sample_delays_with_offset`;
* the chip's **safe cycle budget** is the p99.9 of its own delay population
  (clock faster than your tail and reads start failing), so its speed
  derate is ``p999 / nominal`` relative to the no-variation delay;
* the derate and a global-offset-driven energy factor are folded back into
  the calibrated constants via
  :meth:`repro.tech.calibration.MacroCalibration.with_variation`, so
  ``f_max``, joules-per-MAC and every downstream estimate fall out of the
  *ordinary* delay/energy models on the derated constants — binning is a
  calibration transform, not a parallel bookkeeping path;
* a **failure hazard** summarises how much of the population still lives
  beyond the binned budget's guard band — the long-tailed die that binned
  slow is also the one most likely to fail in the field, and the scheduler
  reweights placement by exactly this number.

Everything is seeded: ``ChipBinner(seed=s).bin_chip(i)`` is a pure function
of ``(s, i)``, so heterogeneous fleets are reproducible down to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.energy import OperationEnergyModel
from repro.circuits.frequency import FrequencyModel
from repro.circuits.montecarlo import MonteCarloEngine
from repro.circuits.wordline import WordlineScheme
from repro.core.config import MacroConfig
from repro.tech.calibration import MacroCalibration, default_macro_calibration
from repro.tech.technology import OperatingPoint, ProcessCorner, TechnologyProfile
from repro.utils.validation import check_positive

__all__ = ["ChipBin", "ChipBinner", "SPEED_GRADE_CUTOFFS"]


#: Speed-grade cutoffs on the overall cycle-time derate (nominal f_max over
#: binned f_max).  Calibrated against the population of the default binner
#: configuration: the global Vth draw spreads the derate over roughly
#: 0.90-1.11, so a die that derates under 0.99 clocked *faster* than the
#: nominal corner ("fast"), the bulk sits below 1.05, and the long-tail
#: dice past that bin "slow".
SPEED_GRADE_CUTOFFS: Tuple[Tuple[str, float], ...] = (
    ("fast", 0.99),
    ("typical", 1.05),
    ("slow", float("inf")),
)


@dataclass(frozen=True)
class ChipBin:
    """One chip's measured corner: speed, energy and reliability in a card.

    ``speed_factor`` / ``energy_factor`` are the calibration derates
    (:meth:`MacroCalibration.with_variation`); ``f_max_hz`` and
    ``joules_per_mac`` are the headline numbers they imply at the nominal
    supply; ``failure_hazard`` is a unitless [0, 1) weight the scheduler and
    fault planners treat as "how likely is this die to misbehave".
    """

    chip_id: str
    seed: int
    speed_grade: str
    #: Overall cycle-time derate: nominal f_max over this chip's f_max.
    speed_factor: float
    #: BL-path derate: chip p99.9 delay over the no-variation delay.
    bl_speed_scale: float
    #: Per-bit switching-energy multiplier from the global Vth offset.
    energy_factor: float
    #: Chip-wide threshold offset (volts) the die drew on the process
    #: distribution (positive = slow die).
    global_vth_offset_v: float
    #: Safe clock at the nominal supply implied by the derated calibration.
    f_max_hz: float
    #: 8-bit MULT+ADD energy per MAC at the nominal supply, derated.
    joules_per_mac: float
    #: Fraction of the delay population beyond the binned guard band.
    failure_hazard: float
    #: p99.9 of the chip's sampled BL-computing delay population (seconds).
    p999_delay_s: float
    #: No-variation BL-computing delay of the same model/point (seconds).
    nominal_delay_s: float

    def derated_calibration(self, calibration: MacroCalibration) -> MacroCalibration:
        """Fold this bin's derates into a calibration bundle."""
        return calibration.with_variation(
            bl_speed_scale=self.bl_speed_scale,
            energy_scale=self.energy_factor,
            vth_shift_v=self.global_vth_offset_v,
        )

    def apply_to_config(self, config: MacroConfig) -> MacroConfig:
        """A macro/chip configuration derated to this bin's corner."""
        return config.with_calibration(self.derated_calibration(config.calibration))

    def summary(self) -> dict:
        """Flat description for fleet reports."""
        return {
            "chip_id": self.chip_id,
            "speed_grade": self.speed_grade,
            "speed_factor": self.speed_factor,
            "energy_factor": self.energy_factor,
            "f_max_hz": self.f_max_hz,
            "joules_per_mac": self.joules_per_mac,
            "failure_hazard": self.failure_hazard,
        }

    def metric_summary(self) -> Dict[str, float]:
        """The bin card as numeric gauges for metric exposition.

        Published per node by the cluster's scrape-time collector as
        ``node_bin_<field>`` gauges (``docs/OBSERVABILITY.md``), so a
        scrape of a binned fleet shows which silicon grade each node's
        latency and energy series came from.
        """
        return {
            "speed_factor": float(self.speed_factor),
            "energy_factor": float(self.energy_factor),
            "f_max_hz": float(self.f_max_hz),
            "failure_hazard": float(self.failure_hazard),
        }


class ChipBinner:
    """Deterministic per-chip binning from seeded Monte-Carlo populations.

    ``sigma_global_scale`` sets the chip-to-chip spread as a fraction of the
    local-mismatch sigma (global process variation is tighter than minimum-
    size local mismatch); ``energy_sensitivity`` converts the global Vth
    offset into a per-bit energy multiplier (``exp(-offset / sensitivity)``
    — a fast low-Vth die burns more switching energy); ``hazard_guardband``
    places the failure guard band relative to the *nominal* delay, so the
    hazard measures how much of the die's population a nominal-margin
    design would misread.
    """

    def __init__(
        self,
        technology: Optional[TechnologyProfile] = None,
        calibration: Optional[MacroCalibration] = None,
        samples: int = 2048,
        seed: int = 2020,
        vdd: Optional[float] = None,
        scheme: WordlineScheme = WordlineScheme.SHORT_PULSE_BOOST,
        sigma_global_scale: float = 0.5,
        energy_sensitivity_v: float = 0.25,
        hazard_guardband: float = 1.06,
    ) -> None:
        from repro.tech.calibration import CALIBRATED_28NM

        check_positive("samples", samples)
        check_positive("sigma_global_scale", sigma_global_scale)
        check_positive("energy_sensitivity_v", energy_sensitivity_v)
        check_positive("hazard_guardband", hazard_guardband)
        self.technology = technology if technology is not None else CALIBRATED_28NM
        self.calibration = (
            calibration if calibration is not None else default_macro_calibration()
        )
        self.samples = samples
        self.seed = seed
        self.vdd = vdd if vdd is not None else self.technology.vdd_nominal
        self.scheme = scheme
        self.sigma_global = self.technology.sigma_vth_mismatch * sigma_global_scale
        self.energy_sensitivity_v = energy_sensitivity_v
        self.hazard_guardband = hazard_guardband
        point = OperatingPoint(vdd=self.vdd)
        #: No-variation BL-computing delay every chip's tail is measured
        #: against (shared by the whole fleet).
        probe = MonteCarloEngine(
            technology=self.technology, calibration=self.calibration, seed=0
        )
        self.nominal_delay_s = float(probe.model.compute_delay(point, scheme=self.scheme))
        #: Nominal-chip clock the per-chip derates are graded against.  NN
        #: corner: the bin expresses *within-die* variation on top of the
        #: typical process, which is also the corner every IMCChip built
        #: from the bin runs at — so a chip's cycle time is exactly
        #: ``nominal / f_max`` times the nominal chip's.
        self.nominal_f_max_hz = (
            FrequencyModel(technology=self.technology, calibration=self.calibration)
            .max_frequency(self.vdd, corner=ProcessCorner.NN)
            .max_frequency_hz
        )

    # ------------------------------------------------------------------ #
    # Per-chip binning
    # ------------------------------------------------------------------ #
    def _chip_seed(self, index: int) -> int:
        # SeedSequence-spawned streams keep chips statistically independent
        # while staying a pure function of (fleet seed, chip index).
        return int(np.random.SeedSequence((self.seed, index)).generate_state(1)[0])

    def bin_chip(self, index: int, chip_id: Optional[str] = None) -> ChipBin:
        """Bin one chip; a pure function of ``(binner seed, index)``."""
        if index < 0:
            raise ValueError("chip index must be non-negative")
        chip_seed = self._chip_seed(index)
        rng = np.random.default_rng(chip_seed)
        global_vth = float(rng.normal(0.0, self.sigma_global))
        engine = MonteCarloEngine(
            technology=self.technology, calibration=self.calibration, seed=chip_seed + 1
        )
        point = OperatingPoint(vdd=self.vdd)
        delays = engine.sample_delays_with_offset(
            self.scheme, self.samples, global_vth, point
        )
        p999 = float(np.percentile(delays, 99.9))
        bl_speed_scale = max(p999 / self.nominal_delay_s, 1.0)
        energy_factor = float(np.exp(-global_vth / self.energy_sensitivity_v))
        hazard = float(
            np.mean(delays > self.hazard_guardband * self.nominal_delay_s)
        )

        derated = self.calibration.with_variation(
            bl_speed_scale=bl_speed_scale,
            energy_scale=energy_factor,
            vth_shift_v=global_vth,
        )
        frequency = FrequencyModel(technology=self.technology, calibration=derated)
        f_max = frequency.max_frequency(
            self.vdd, corner=ProcessCorner.NN
        ).max_frequency_hz
        speed_factor = self.nominal_f_max_hz / f_max
        energy_model = OperationEnergyModel(derated)
        joules_per_mac = (
            energy_model.mult_energy(8, vdd=self.vdd, bl_separator=True).total_j
            + energy_model.add_energy(8, vdd=self.vdd).total_j
        )

        grade = next(
            name for name, cutoff in SPEED_GRADE_CUTOFFS if speed_factor < cutoff
        )
        return ChipBin(
            chip_id=chip_id if chip_id is not None else f"chip-{index}",
            seed=chip_seed,
            speed_grade=grade,
            speed_factor=speed_factor,
            bl_speed_scale=bl_speed_scale,
            energy_factor=energy_factor,
            global_vth_offset_v=global_vth,
            f_max_hz=f_max,
            joules_per_mac=joules_per_mac,
            failure_hazard=hazard,
            p999_delay_s=p999,
            nominal_delay_s=self.nominal_delay_s,
        )

    def bin_fleet(self, count: int) -> Tuple[ChipBin, ...]:
        """Bin ``count`` chips (indices 0..count-1)."""
        check_positive("count", count)
        return tuple(self.bin_chip(index) for index in range(count))
