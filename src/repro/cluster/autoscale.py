"""Reactive autoscaling: wake/park nodes and retune operating points.

The autoscaler closes the loop between telemetry and fleet shape.  It is
deliberately *reactive* and rule-based — every decision is a pure function
of the router's current queue depth and the telemetry window, so the same
workload always produces the same scaling trajectory (pinned by tests):

* **wake** — when the backlog per active node exceeds ``wake_queue_depth``,
  or the latency class is missing deadlines, a parked node returns to
  rotation (the fastest parked node under miss pressure, the most
  energy-efficient one under pure backlog pressure);
* **park** — a node whose queue is empty and that served nothing for
  ``park_after_idle`` consecutive observations is taken out of rotation
  (highest-VDD first: idle fast silicon is the expensive kind), never below
  ``min_active``;
* **retune up** — miss pressure with nothing left to wake moves the slowest
  active node one rung up the voltage ladder (DVFS as the escalation after
  horizontal scaling is exhausted);
* **retune down** — a quiet fleet (no backlog, no recent latency traffic)
  moves the fastest active node one rung down to the efficient end.

Retuning rebuilds the node's chip, so its weight cache empties and the next
dispatch pays re-programming — the autoscaler only retunes nodes whose
queues are empty, which keeps that cost off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.node import NodeState
from repro.cluster.router import ClusterRouter
from repro.cluster.scheduler import SLAClass
from repro.errors import ConfigurationError

__all__ = ["ScalingAction", "ReactiveAutoscaler"]


@dataclass(frozen=True)
class ScalingAction:
    """One actuation the autoscaler performed."""

    step: int
    action: str  # "wake" | "park" | "retune_up" | "retune_down"
    node_id: str
    vdd: float
    reason: str


def _reason_category(reason: str) -> str:
    """Collapse a free-text action reason to a bounded label value.

    The full reason strings carry run-specific numbers ("queue depth 7
    over 2 active nodes"), which would explode metric label cardinality;
    the category keeps the *why* scrapeable.
    """
    for prefix, category in (
        ("failure pressure", "failure_pressure"),
        ("deadline miss rate", "deadline_miss"),
        ("queue depth", "queue_depth"),
        ("idle for", "idle"),
        ("fleet quiet", "fleet_quiet"),
    ):
        if reason.startswith(prefix):
            return category
    return "other"


class ReactiveAutoscaler:
    """Queue-depth / deadline-miss driven fleet controller."""

    def __init__(
        self,
        router: ClusterRouter,
        min_active: int = 1,
        wake_queue_depth: int = 3,
        park_after_idle: int = 3,
        miss_rate_threshold: float = 0.0,
        voltage_rungs: Sequence[float] = (0.6, 0.8, 1.0),
    ) -> None:
        if min_active < 1:
            raise ConfigurationError("min_active must be at least 1")
        if wake_queue_depth < 1:
            raise ConfigurationError("wake_queue_depth must be at least 1")
        if park_after_idle < 1:
            raise ConfigurationError("park_after_idle must be at least 1")
        if not voltage_rungs:
            raise ConfigurationError("voltage_rungs must be non-empty")
        self.router = router
        self.min_active = min_active
        self.wake_queue_depth = wake_queue_depth
        self.park_after_idle = park_after_idle
        self.miss_rate_threshold = miss_rate_threshold
        self.voltage_rungs = tuple(sorted(voltage_rungs))
        self.step = 0
        self.actions: List[ScalingAction] = []
        self._idle_steps: Dict[str, int] = {node.node_id: 0 for node in router.nodes}
        self._dispatches_seen: Dict[str, int] = {
            node.node_id: node.telemetry.dispatches for node in router.nodes
        }
        #: Traces seen as of the previous observation; starts at zero so the
        #: first observe() treats pre-attachment history as fresh traffic.
        #: Counter-based (not a trace-list slice) so the probe works over
        #: the columnar telemetry too, which may not retain trace rows.
        self._traces_seen = 0
        self._deadline_traces_seen = 0
        #: Actions already folded into a bound metrics registry.
        self._actions_folded = 0
        self._actions_metric = None

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def bind_metrics(self, registry) -> None:
        """Expose scaling decisions through a :class:`repro.obs` registry.

        Registers ``autoscaler_actions_total{action, reason}`` plus a
        ``autoscaler_steps_total`` counter, folded lazily at scrape time
        from the action log — the control loop itself stays untouched.
        """
        self._actions_metric = registry.counter(
            "autoscaler_actions_total",
            "Scaling actuations taken, by action and reason category.",
            labelnames=("action", "reason"),
        )
        self._steps_metric = registry.counter(
            "autoscaler_steps_total",
            "Autoscaler control iterations observed.",
        )
        registry.register_collector(lambda _registry: self._fold_actions())

    def _fold_actions(self) -> None:
        pending = self.actions[self._actions_folded :]
        for action in pending:
            self._actions_metric.labels(
                action=action.action, reason=_reason_category(action.reason)
            ).inc()
        self._actions_folded = len(self.actions)
        delta = self.step - self._steps_metric.value
        if delta > 0:
            self._steps_metric.inc(delta)

    # ------------------------------------------------------------------ #
    # Rung arithmetic
    # ------------------------------------------------------------------ #
    def _rung_above(self, vdd: float) -> Optional[float]:
        for rung in self.voltage_rungs:
            if rung > vdd + 1e-9:
                return rung
        return None

    def _rung_below(self, vdd: float) -> Optional[float]:
        for rung in reversed(self.voltage_rungs):
            if rung < vdd - 1e-9:
                return rung
        return None

    # ------------------------------------------------------------------ #
    # The control step
    # ------------------------------------------------------------------ #
    def observe(self) -> List[ScalingAction]:
        """One control iteration; returns the actions it took (often none)."""
        self.step += 1
        actions: List[ScalingAction] = []
        router = self.router
        active = [n for n in router.nodes if n.state is NodeState.ACTIVE]
        parked = [n for n in router.nodes if n.state is NodeState.PARKED]
        failed = [n for n in router.nodes if n.state is NodeState.FAILED]
        depth = router.queue_depth()
        miss_rate = router.telemetry.recent_deadline_miss_rate(
            sla=SLAClass.LATENCY.value
        )
        # The window only moves when requests are dispatched, so an old miss
        # would otherwise read as pressure forever — on an idle fleet, or
        # (worse) on one serving pure throughput traffic that keeps the
        # window alive.  Miss pressure therefore requires *deadline-class*
        # traffic since the last observation: without it the fleet may
        # decay (park / retune down) normally.
        trace_count = router.telemetry.trace_count
        deadline_count = router.telemetry.deadline_trace_count
        latency_traffic = deadline_count > self._deadline_traces_seen
        self._traces_seen = trace_count
        self._deadline_traces_seen = deadline_count
        miss_pressure = latency_traffic and miss_rate > self.miss_rate_threshold

        # Update idle tracking before acting: a node is idle this step when
        # nothing new was dispatched on it and nothing is queued for it.
        for node in router.nodes:
            seen = self._dispatches_seen[node.node_id]
            now = node.telemetry.dispatches
            self._dispatches_seen[node.node_id] = now
            queued = router.queue_depth(node.node_id)
            if node.state is NodeState.ACTIVE and now == seen and not queued:
                self._idle_steps[node.node_id] += 1
            else:
                self._idle_steps[node.node_id] = 0

        # 0. Failure pressure: dead capacity with work on the books wakes a
        # spare immediately — a crash is not a demand signal that should
        # have to climb over the queue-depth threshold.  The fastest parked
        # node replaces the failed one (the replayed requests already lost
        # time; do not hand them to slow silicon too).
        if failed and parked and (depth > 0 or miss_pressure):
            # max_frequency_hz folds in both the rail and the die's bin
            # derate, so "fastest" holds on uniform-vdd binned fleets too.
            node = max(parked, key=lambda n: (n.max_frequency_hz, n.node_id))
            node.wake()
            self._idle_steps[node.node_id] = 0
            actions.append(
                ScalingAction(
                    self.step,
                    "wake",
                    node.node_id,
                    node.vdd,
                    f"failure pressure: {len(failed)} node(s) failed",
                )
            )
            active.append(node)
            parked.remove(node)

        # 1. Wake under pressure.  With zero active nodes any backlog at
        # all must wake something — nothing else can ever drain it.
        if parked and (miss_pressure or depth > self.wake_queue_depth * len(active)):
            if miss_pressure:
                # Deadlines are bleeding: bring back the fastest silicon
                # (frequency, not vdd — bins derate dice at the same rail).
                node = max(parked, key=lambda n: (n.max_frequency_hz, n.node_id))
                reason = f"deadline miss rate {miss_rate:.2f}"
            else:
                # Pure backlog: the efficient node absorbs it cheapest.
                node = min(parked, key=lambda n: (n.vdd, n.node_id))
                reason = f"queue depth {depth} over {len(active)} active nodes"
            node.wake()
            self._idle_steps[node.node_id] = 0
            actions.append(
                ScalingAction(self.step, "wake", node.node_id, node.vdd, reason)
            )
            active.append(node)
            parked.remove(node)

        # 2. Retune up when miss pressure persists with nothing left to wake.
        elif miss_pressure and not parked:
            candidates = [
                n
                for n in active
                if not router.queue_depth(n.node_id)
                and self._rung_above(n.vdd) is not None
            ]
            if candidates:
                node = min(candidates, key=lambda n: (n.vdd, n.node_id))
                target = self._rung_above(node.vdd)
                node.retune(target)
                actions.append(
                    ScalingAction(
                        self.step,
                        "retune_up",
                        node.node_id,
                        target,
                        f"deadline miss rate {miss_rate:.2f}, no parked capacity",
                    )
                )

        # 3. Park long-idle nodes (never below min_active).
        if not miss_pressure and depth == 0:
            idle = [
                n
                for n in active
                if self._idle_steps[n.node_id] >= self.park_after_idle
            ]
            idle.sort(key=lambda n: (-n.vdd, n.node_id))
            for node in idle:
                if len(active) <= self.min_active:
                    break
                node.park()
                active.remove(node)
                self._idle_steps[node.node_id] = 0
                actions.append(
                    ScalingAction(
                        self.step,
                        "park",
                        node.node_id,
                        node.vdd,
                        f"idle for {self.park_after_idle} observations",
                    )
                )

            # 4. Retune down when the fleet is quiet and nothing latency-
            # critical ran recently: shift remaining capacity to the
            # efficient end of the ladder.
            if not router.telemetry.recent_has_sla(SLAClass.LATENCY.value):
                candidates = [
                    n
                    for n in active
                    if self._idle_steps[n.node_id] >= self.park_after_idle
                    and self._rung_below(n.vdd) is not None
                ]
                if candidates:
                    node = max(candidates, key=lambda n: (n.vdd, n.node_id))
                    target = self._rung_below(node.vdd)
                    node.retune(target)
                    self._idle_steps[node.node_id] = 0
                    actions.append(
                        ScalingAction(
                            self.step,
                            "retune_down",
                            node.node_id,
                            target,
                            "fleet quiet, no recent latency traffic",
                        )
                    )

        self.actions.extend(actions)
        return actions
