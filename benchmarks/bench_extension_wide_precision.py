"""Extension — 16-bit and 32-bit precision modes.

The paper demonstrates 2/4/8-bit reconfiguration and notes that "16-bit and
32-bit precision can also be implemented in the same method".  This benchmark
exercises exactly that extension on the functional macro: cycle counts follow
the same N+2 rule, the carry chain still produces bit-exact results, and the
energy model extrapolates the Table II scaling.
"""

import random

from repro.analysis.report import format_table
from repro.core import IMCMacro, MacroConfig, Opcode, cycles_for


PRECISIONS = (8, 16, 32)


def _run():
    rng = random.Random(2020)
    rows = []
    for bits in PRECISIONS:
        config = MacroConfig(cols=256, precision_bits=bits)
        macro = IMCMacro(config)
        a = rng.randrange(0, 1 << bits)
        b = rng.randrange(0, 1 << bits)
        macro.reset_stats()
        product = macro.multiply(a, b)
        correct = product == a * b
        mult_cycles = macro.stats.cycles_for(Opcode.MULT)
        macro.reset_stats()
        total = macro.add(a, b)
        correct = correct and total == (a + b) % (1 << bits)
        add_energy = macro.stats.energy_for(Opcode.ADD) * 1e15
        rows.append(
            [
                bits,
                macro.words_per_row(),
                1,
                cycles_for(Opcode.ADD, bits),
                mult_cycles,
                cycles_for(Opcode.MULT, bits),
                add_energy,
                "yes" if correct else "NO",
            ]
        )
    return rows


def _render(rows) -> str:
    return format_table(
        [
            "precision",
            "words/access (256 BL)",
            "ADD cycles",
            "Table-I ADD",
            "MULT cycles",
            "Table-I MULT",
            "ADD energy [fJ]",
            "bit-exact",
        ],
        rows,
        title="Extension — wide-precision modes (same carry-chain construction)",
    )


def test_wide_precision_modes(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter("Extension — 16/32-bit precision modes", _render(rows))
    for row in rows:
        assert row[-1] == "yes"
        assert row[4] == row[5]  # measured MULT cycles match N + 2
