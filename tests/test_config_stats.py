"""Unit tests for MacroConfig and MacroStatistics."""

import pytest

from repro.circuits.wordline import WordlineScheme
from repro.core.config import MacroConfig
from repro.core.operations import Opcode
from repro.core.stats import MacroStatistics, OperationRecord
from repro.errors import ConfigurationError
from repro.tech import OperatingPoint


class TestMacroConfig:
    def test_defaults_match_paper_macro(self):
        config = MacroConfig()
        assert config.rows == 128
        assert config.cols == 128
        assert config.dummy_rows == 3
        assert config.interleave == 4
        assert config.precision_bits == 8
        assert config.wordline_scheme is WordlineScheme.SHORT_PULSE_BOOST
        assert config.bl_separator is True

    def test_capacity(self):
        config = MacroConfig()
        assert config.capacity_bits == 128 * 128
        assert config.capacity_bytes == 2048

    def test_active_columns_and_words(self):
        config = MacroConfig()
        assert config.active_columns == 32
        assert config.words_per_row() == 4
        assert config.words_per_row(4) == 8
        assert config.mult_slots_per_row() == 2

    def test_with_precision_copy(self):
        config = MacroConfig()
        other = config.with_precision(4)
        assert other.precision_bits == 4
        assert config.precision_bits == 8

    def test_with_operating_point_copy(self):
        config = MacroConfig()
        other = config.with_operating_point(OperatingPoint(vdd=0.6))
        assert other.operating_point.vdd == pytest.approx(0.6)

    def test_with_bl_separator_and_scheme(self):
        config = MacroConfig()
        assert config.with_bl_separator(False).bl_separator is False
        assert (
            config.with_wordline_scheme(WordlineScheme.WLUD).wordline_scheme
            is WordlineScheme.WLUD
        )

    def test_with_geometry(self):
        config = MacroConfig().with_geometry(rows=64, cols=256)
        assert config.rows == 64
        assert config.cols == 256

    def test_invalid_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroConfig(precision_bits=5)

    def test_too_few_dummy_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroConfig(dummy_rows=2)

    def test_out_of_range_supply_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroConfig(operating_point=OperatingPoint(vdd=1.3))

    def test_columns_must_tile_interleave(self):
        with pytest.raises(ConfigurationError):
            MacroConfig(cols=130)


class TestOperationRecord:
    def test_accumulation(self):
        record = OperationRecord()
        record.add(words=4, cycles=1, energy_j=1e-12)
        record.add(words=2, cycles=2, energy_j=2e-12)
        assert record.invocations == 2
        assert record.words == 6
        assert record.cycles == 3
        assert record.energy_j == pytest.approx(3e-12)

    def test_merge(self):
        first = OperationRecord()
        first.add(1, 1, 1e-12)
        second = OperationRecord()
        second.add(2, 3, 2e-12)
        first.merge(second)
        assert first.words == 3
        assert first.cycles == 4


class TestMacroStatistics:
    def test_record_and_aggregates(self):
        stats = MacroStatistics()
        stats.record(Opcode.ADD, words=4, cycles=1, energy_j=4e-13)
        stats.record(Opcode.MULT, words=2, cycles=10, energy_j=7e-12)
        assert stats.total_cycles == 11
        assert stats.total_operations == 6
        assert stats.total_invocations == 2
        assert stats.total_energy_j == pytest.approx(7.4e-12)

    def test_per_opcode_accessors(self):
        stats = MacroStatistics()
        stats.record(Opcode.ADD, 4, 1, 4e-13)
        assert stats.cycles_for(Opcode.ADD) == 1
        assert stats.words_for(Opcode.ADD) == 4
        assert stats.energy_for(Opcode.ADD) == pytest.approx(4e-13)
        assert stats.cycles_for(Opcode.MULT) == 0

    def test_merge(self):
        first = MacroStatistics()
        first.record(Opcode.ADD, 1, 1, 1e-13)
        second = MacroStatistics()
        second.record(Opcode.ADD, 1, 1, 1e-13)
        second.record(Opcode.SUB, 1, 2, 2e-13)
        first.merge(second)
        assert first.total_cycles == 4
        assert first.records[Opcode.ADD].invocations == 2

    def test_reset(self):
        stats = MacroStatistics()
        stats.record(Opcode.ADD, 1, 1, 1e-13)
        stats.array_accesses = 5
        stats.reset()
        assert stats.total_cycles == 0
        assert stats.array_accesses == 0

    def test_derived_metrics(self):
        stats = MacroStatistics()
        stats.record(Opcode.ADD, words=10, cycles=5, energy_j=1e-12)
        assert stats.cycles_per_operation() == pytest.approx(0.5)
        assert stats.energy_per_operation_j() == pytest.approx(1e-13)
        assert stats.execution_time_s(1e-9) == pytest.approx(5e-9)

    def test_empty_statistics_metrics(self):
        stats = MacroStatistics()
        assert stats.cycles_per_operation() == 0.0
        assert stats.energy_per_operation_j() == 0.0

    def test_summary_keys(self):
        stats = MacroStatistics()
        stats.record(Opcode.ADD, 1, 1, 1e-13)
        summary = stats.summary()
        for key in ("invocations", "operations", "cycles", "energy_j", "cycles_per_op"):
            assert key in summary
