"""Bit-serial in-memory computing baseline (reference [2] of the paper).

Wang et al.'s "Compute SRAM" (JSSC 2019) uses 8T transposable bit cells and
computes **bit-serially**: operands are stored with their bits spread across
word lines of the same column, every column carries one independent element,
and an N-bit operation iterates over the bit positions one cycle at a time.
The paper uses it as the cycle-count baseline of Fig. 9 and the comparison
column of Table III.

Two aspects matter for the reproduction:

* the **cycle counts** — addition of N-bit words takes N + 1 cycles, a
  subtraction N + 3 (extra invert/carry-seed passes), and a multiplication is
  quadratic (the paper's related-work section quotes N^2 cycles); and
* the **parallelism model** — the number of simultaneously computing lanes
  equals the number of columns of the baseline design, which does **not**
  grow when the evaluation sweeps the bit-line count, because the baseline's
  local-group peripherals are fixed at design time (this is the
  "local limited access" drawback Table III attributes to the prior work).

The functional part is implemented honestly: the element-wise operations
really are computed one bit position at a time with a carry latch per lane,
so the cycle counts reported by :meth:`BitSerialIMC.elementwise` are counted,
not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.operations import Opcode
from repro.errors import ConfigurationError, OperandError
from repro.utils.bitops import mask
from repro.utils.validation import check_positive

__all__ = ["BitSerialConfig", "BitSerialResult", "BitSerialIMC"]


@dataclass(frozen=True)
class BitSerialConfig:
    """Configuration of the bit-serial baseline macro.

    Attributes
    ----------
    columns:
        Physical bit lines of the baseline design.
    lane_limit:
        Maximum number of simultaneously computing lanes; fixed by the
        baseline's column-peripheral design (256 columns in [2], of which the
        paper's Fig. 9 comparison exercises one 128-lane local group).
    lane_scaling:
        How the usable lane count responds when the surrounding memory offers
        more bit lines than the reference design:

        * ``"fixed"`` (default) — the lane count is simply
          ``min(columns, lane_limit)``; this is the honest model of a single
          fixed baseline macro and is used everywhere except Fig. 9.
        * ``"local_group"`` — the lane count grows with the *square root* of
          the bit-line count: a bit-serial compute SRAM scales by adding
          local groups in two dimensions (more groups and taller groups), so
          only part of the added bit lines turn into extra compute lanes.
          This is the documented assumption behind the Fig. 9 reproduction;
          see DESIGN.md / EXPERIMENTS.md.
    lanes_at_reference / reference_columns:
        Anchor of the ``"local_group"`` scaling law: the number of usable
        lanes when ``reference_columns`` bit lines are available.
    max_frequency_hz:
        Peak clock of the baseline (475 MHz at 1.1 V per Table III).
    add_energy_per_bit_j / mult_energy_per_bit_cycle_j:
        Energy coefficients calibrated against the baseline's published
        5.27 / 0.56 TOPS/W (ADD / MULT at 0.6 V).
    """

    columns: int = 256
    lane_limit: int = 128
    lane_scaling: str = "fixed"
    lanes_at_reference: int = 20
    reference_columns: int = 128
    max_frequency_hz: float = 475e6
    reference_vdd: float = 0.9
    add_energy_per_bit_j: float = 53.0e-15
    mult_energy_per_bit_cycle_j: float = 5.85e-15

    def __post_init__(self) -> None:
        check_positive("columns", self.columns)
        check_positive("lane_limit", self.lane_limit)
        check_positive("lanes_at_reference", self.lanes_at_reference)
        check_positive("reference_columns", self.reference_columns)
        check_positive("max_frequency_hz", self.max_frequency_hz)
        if self.lane_scaling not in ("fixed", "local_group"):
            raise ConfigurationError(
                f"lane_scaling must be 'fixed' or 'local_group', got {self.lane_scaling!r}"
            )


@dataclass(frozen=True)
class BitSerialResult:
    """Outcome of one element-wise bit-serial operation."""

    opcode: Opcode
    precision_bits: int
    lanes: int
    cycles: int
    values: Tuple[int, ...]

    @property
    def cycles_per_element(self) -> float:
        """Cycles divided by the number of produced elements."""
        return self.cycles / len(self.values) if self.values else 0.0


class BitSerialIMC:
    """Functional + cycle model of the bit-serial baseline."""

    def __init__(self, config: Optional[BitSerialConfig] = None) -> None:
        self.config = config if config is not None else BitSerialConfig()
        self.total_cycles = 0
        self.total_elements = 0

    # ------------------------------------------------------------------ #
    # Cycle formulas (used for accounting and by the Fig. 9 experiment)
    # ------------------------------------------------------------------ #
    @staticmethod
    def cycles_for(opcode: Opcode, precision_bits: int) -> int:
        """Cycles of one vector operation over all lanes.

        * logic: N cycles (one pass over the bit positions),
        * ADD: N + 1, SUB: N + 3,
        * MULT: N^2 + 3N - 2 (shift-and-add with bit-serial partial-product
          accumulation, the quadratic cost the paper's Section 2.2 quotes).
        """
        check_positive("precision_bits", precision_bits)
        n = precision_bits
        if opcode in (Opcode.AND, Opcode.NAND, Opcode.OR, Opcode.NOR, Opcode.XOR,
                      Opcode.XNOR, Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT):
            return n
        if opcode is Opcode.ADD or opcode is Opcode.ADD_SHIFT:
            return n + 1
        if opcode is Opcode.SUB:
            return n + 3
        if opcode is Opcode.MULT:
            return n * n + 3 * n - 2
        raise ConfigurationError(f"unsupported opcode {opcode!r}")

    def effective_lanes(self, available_columns: Optional[int] = None) -> int:
        """How many lanes compute simultaneously.

        With ``lane_scaling = "fixed"`` the lane count saturates at the
        design's ``lane_limit`` even when the surrounding memory offers more
        bit lines.  With ``lane_scaling = "local_group"`` the lane count
        grows with the square root of the available bit lines (2-D local-group
        scaling), anchored at ``lanes_at_reference`` lanes for
        ``reference_columns`` bit lines.
        """
        columns = self.config.columns if available_columns is None else available_columns
        check_positive("available_columns", columns)
        if self.config.lane_scaling == "local_group":
            lanes = self.config.lanes_at_reference * np.sqrt(
                columns / self.config.reference_columns
            )
            return max(1, min(int(round(lanes)), columns))
        return min(columns, self.config.lane_limit)

    # ------------------------------------------------------------------ #
    # Functional bit-serial execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_operands(values: Sequence[int], precision_bits: int) -> np.ndarray:
        array = np.asarray(list(values), dtype=np.int64)
        if array.size and (array.min() < 0 or array.max() > mask(precision_bits)):
            raise OperandError(
                f"operands must be unsigned {precision_bits}-bit values"
            )
        return array

    def elementwise(
        self,
        opcode: Opcode,
        a_values: Sequence[int],
        b_values: Optional[Sequence[int]] = None,
        precision_bits: int = 8,
    ) -> BitSerialResult:
        """Run an element-wise operation bit-serially across the lanes.

        The computation really proceeds bit position by bit position with a
        carry latch per lane; the returned cycle count is the number of bit
        iterations actually executed (times the number of lane batches when
        the operand vector exceeds the lane limit).
        """
        a = self._check_operands(a_values, precision_bits)
        b = (
            self._check_operands(b_values, precision_bits)
            if b_values is not None
            else None
        )
        if b is not None and a.shape != b.shape:
            raise OperandError("operand vectors must have the same length")

        lanes = self.effective_lanes()
        batches = max(1, int(np.ceil(a.size / lanes))) if a.size else 1
        values: List[int] = []
        for start in range(0, max(a.size, 1), lanes):
            chunk_a = a[start : start + lanes]
            chunk_b = b[start : start + lanes] if b is not None else None
            values.extend(self._execute_batch(opcode, chunk_a, chunk_b, precision_bits))

        cycles = self.cycles_for(opcode, precision_bits) * batches
        self.total_cycles += cycles
        self.total_elements += a.size
        return BitSerialResult(
            opcode=opcode,
            precision_bits=precision_bits,
            lanes=lanes,
            cycles=cycles,
            values=tuple(values),
        )

    def _execute_batch(
        self,
        opcode: Opcode,
        a: np.ndarray,
        b: Optional[np.ndarray],
        precision_bits: int,
    ) -> List[int]:
        """One lane batch, computed column-parallel with numpy.

        Every lane is one column of the baseline; the bit-position iteration
        (the *serial* part of "bit-serial") remains an explicit loop, but
        each iteration now processes all lanes of the batch at once instead
        of looping lane by lane in Python.
        """
        n = precision_bits
        modulus = 1 << n
        a = a.astype(np.int64)
        if opcode in (Opcode.NOT, Opcode.COPY, Opcode.SHIFT_LEFT):
            if opcode is Opcode.NOT:
                return ((~a) % modulus).tolist()
            if opcode is Opcode.COPY:
                return a.tolist()
            return ((a << 1) % modulus).tolist()
        if b is None:
            raise OperandError(f"{opcode.name} needs two operand vectors")
        b = b.astype(np.int64)
        if opcode in (Opcode.AND, Opcode.NAND, Opcode.OR, Opcode.NOR, Opcode.XOR, Opcode.XNOR):
            return self._bitwise_batch(opcode, a, b, n)
        if opcode in (Opcode.ADD, Opcode.ADD_SHIFT, Opcode.SUB):
            return self._serial_add_batch(opcode, a, b, n)
        if opcode is Opcode.MULT:
            return self._serial_mult_batch(a, b, n)
        raise ConfigurationError(f"unsupported opcode {opcode!r}")

    @staticmethod
    def _bitwise_batch(
        opcode: Opcode, a: np.ndarray, b: np.ndarray, n: int
    ) -> List[int]:
        out = np.zeros_like(a)
        for position in range(n):  # one cycle per bit position, all lanes
            bit_a = (a >> position) & 1
            bit_b = (b >> position) & 1
            if opcode is Opcode.AND:
                bit = bit_a & bit_b
            elif opcode is Opcode.NAND:
                bit = 1 - (bit_a & bit_b)
            elif opcode is Opcode.OR:
                bit = bit_a | bit_b
            elif opcode is Opcode.NOR:
                bit = 1 - (bit_a | bit_b)
            elif opcode is Opcode.XOR:
                bit = bit_a ^ bit_b
            else:
                bit = 1 - (bit_a ^ bit_b)
            out |= bit << position
        return (out % (1 << n)).tolist()

    @staticmethod
    def _serial_add_batch(
        opcode: Opcode, a: np.ndarray, b: np.ndarray, n: int
    ) -> List[int]:
        modulus = 1 << n
        if opcode is Opcode.SUB:
            b = (~b) & (modulus - 1)
            carry = np.ones_like(a)
        else:
            carry = np.zeros_like(a)
        out = np.zeros_like(a)
        for position in range(n):  # one cycle per bit position, all lanes
            bit_a = (a >> position) & 1
            bit_b = (b >> position) & 1
            total = bit_a + bit_b + carry
            out |= (total & 1) << position
            carry = total >> 1
        if opcode is Opcode.ADD_SHIFT:
            out = (out << 1) % modulus
        return (out % modulus).tolist()

    @staticmethod
    def _serial_mult_batch(a: np.ndarray, b: np.ndarray, n: int) -> List[int]:
        if 2 * n > 62:
            # The full 2N-bit product does not fit int64; accumulate the
            # partial products with exact Python integers instead.
            results = []
            for x, y in zip(a.tolist(), b.tolist()):
                accumulator = 0
                for position in range(n):
                    if (y >> position) & 1:
                        accumulator += x << position
                results.append(accumulator)
            return results
        accumulator = np.zeros_like(a)
        for position in range(n):  # N partial products, each N bit-cycles
            take = (b >> position) & 1
            accumulator += take * (a << position)
        return accumulator.tolist()

    # ------------------------------------------------------------------ #
    # Performance / energy model (Table III)
    # ------------------------------------------------------------------ #
    def cycles_per_operation(
        self,
        opcode: Opcode,
        precision_bits: int,
        available_columns: Optional[int] = None,
    ) -> float:
        """Cycles per element — the Fig. 9 metric for the baseline."""
        lanes = self.effective_lanes(available_columns)
        return self.cycles_for(opcode, precision_bits) / lanes

    def energy_per_operation_j(
        self, opcode: Opcode, precision_bits: int, vdd: float = 0.9
    ) -> float:
        """Calibrated per-element energy (scales as V^2)."""
        scale = (vdd / self.config.reference_vdd) ** 2
        n = precision_bits
        if opcode is Opcode.MULT:
            base = self.cycles_for(Opcode.MULT, n) * n * self.config.mult_energy_per_bit_cycle_j
        elif opcode is Opcode.SUB:
            base = (n + 3) / (n + 1) * n * self.config.add_energy_per_bit_j
        else:
            base = n * self.config.add_energy_per_bit_j
        return base * scale

    def tops_per_watt(
        self, opcode: Opcode, precision_bits: int, vdd: float = 0.6
    ) -> float:
        """Operations per second per watt, in tera-ops (Table III rows)."""
        energy = self.energy_per_operation_j(opcode, precision_bits, vdd=vdd)
        return 1.0 / (energy * 1e12)

    def summary(self) -> Dict[str, float]:
        """Aggregate counters since construction."""
        return {
            "total_cycles": float(self.total_cycles),
            "total_elements": float(self.total_elements),
            "cycles_per_element": (
                self.total_cycles / self.total_elements if self.total_elements else 0.0
            ),
        }
