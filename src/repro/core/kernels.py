"""Vector kernels built on top of the IMC macro.

The macro's native interface works on unsigned words in rows.  Real
applications (the paper's motivation: deep learning and streaming signal
processing) need a slightly higher-level vocabulary:

* element-wise operations on arbitrarily long **signed** vectors,
* multiply-accumulate style kernels (dot product, matrix-vector product,
  FIR filter), and
* reductions.

:class:`VectorKernels` provides exactly that, keeps the two's-complement /
sign-magnitude bookkeeping in one place, and accounts every in-memory
operation through the macro's statistics ledger so callers get honest
cycle/energy numbers for whole kernels.

Signed handling
---------------
Additions and subtractions use the macro's native modular arithmetic (two's
complement wraps around for free).  Multiplications run on magnitudes — the
macro's MULT produces the full 2N-bit unsigned product — and the sign is
re-applied by the near-memory logic, which is also how the paper's
column-peripheral multiplier would be used for signed operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.macro import IMCMacro
from repro.core.operations import Opcode
from repro.errors import OperandError, PrecisionError
__all__ = ["KernelResult", "VectorKernels"]


@dataclass(frozen=True)
class KernelResult:
    """Result of a kernel plus the in-memory cost of producing it."""

    values: List[int]
    cycles: int
    energy_j: float
    operations: int

    @property
    def value(self) -> int:
        """First (or only) result value."""
        return self.values[0]

    @property
    def energy_per_result_j(self) -> float:
        """Energy divided by the number of produced results."""
        return self.energy_j / len(self.values) if self.values else 0.0


class VectorKernels:
    """Signed vector kernels executed with in-memory operations.

    ``macro`` may be a single :class:`~repro.core.macro.IMCMacro` or a
    sharded :class:`~repro.core.chip.IMCChip` — both expose the same vector
    engine interface (``elementwise`` / ``reduce_add`` / ``stats`` / layout
    and precision management), so every kernel transparently scales from one
    macro to a multi-macro chip.
    """

    def __init__(self, macro=None, precision_bits: Optional[int] = None) -> None:
        self.macro = macro if macro is not None else IMCMacro()
        self.precision_bits = (
            precision_bits if precision_bits is not None else self.macro.precision_bits
        )
        self.macro.set_precision(self.precision_bits)

    # ------------------------------------------------------------------ #
    # Signed encoding helpers
    # ------------------------------------------------------------------ #
    def _signed_limit(self) -> int:
        return (1 << (self.precision_bits - 1)) - 1

    def _check_signed(self, name: str, values: Sequence[int]) -> np.ndarray:
        array = np.asarray(list(values), dtype=np.int64)
        limit = self._signed_limit()
        if array.size and (array.min() < -limit - 1 or array.max() > limit):
            raise OperandError(
                f"{name} contains values outside the signed {self.precision_bits}-bit "
                f"range [{-limit - 1}, {limit}]"
            )
        return array

    def _encode(self, values: np.ndarray) -> List[int]:
        # Vectorized to_twos_complement: the bit pattern is just the value
        # masked to the word width.
        modulus_mask = (1 << self.precision_bits) - 1
        return (np.asarray(values, dtype=np.int64) & modulus_mask).tolist()

    def _decode(self, patterns: Sequence[int]) -> List[int]:
        # Vectorized from_twos_complement.
        array = np.asarray(list(patterns), dtype=np.int64)
        half = 1 << (self.precision_bits - 1)
        return np.where(array >= half, array - (half << 1), array).tolist()

    def _collect(self, values: List[int], stats_before: Dict[str, float]) -> KernelResult:
        summary = self.macro.stats.summary()
        return KernelResult(
            values=values,
            cycles=int(summary["cycles"] - stats_before["cycles"]),
            energy_j=summary["energy_j"] - stats_before["energy_j"],
            operations=int(summary["operations"] - stats_before["operations"]),
        )

    # ------------------------------------------------------------------ #
    # Element-wise signed kernels
    # ------------------------------------------------------------------ #
    def add(self, a: Sequence[int], b: Sequence[int]) -> KernelResult:
        """Element-wise signed addition (wraps on overflow, like the hardware)."""
        array_a = self._check_signed("a", a)
        array_b = self._check_signed("b", b)
        if array_a.size != array_b.size:
            raise OperandError("operand vectors must have the same length")
        before = self.macro.stats.summary()
        raw = self.macro.elementwise(
            Opcode.ADD, self._encode(array_a), self._encode(array_b), self.precision_bits
        )
        return self._collect(self._decode(raw), before)

    def subtract(self, a: Sequence[int], b: Sequence[int]) -> KernelResult:
        """Element-wise signed subtraction."""
        array_a = self._check_signed("a", a)
        array_b = self._check_signed("b", b)
        if array_a.size != array_b.size:
            raise OperandError("operand vectors must have the same length")
        before = self.macro.stats.summary()
        raw = self.macro.elementwise(
            Opcode.SUB, self._encode(array_a), self._encode(array_b), self.precision_bits
        )
        return self._collect(self._decode(raw), before)

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> KernelResult:
        """Element-wise signed multiplication (full double-width products)."""
        array_a = self._check_signed("a", a)
        array_b = self._check_signed("b", b)
        if array_a.size != array_b.size:
            raise OperandError("operand vectors must have the same length")
        before = self.macro.stats.summary()
        magnitudes = self.macro.elementwise(
            Opcode.MULT,
            np.abs(array_a).tolist(),
            np.abs(array_b).tolist(),
            self.precision_bits,
        )
        signs = np.sign(array_a) * np.sign(array_b)
        if 2 * self.precision_bits > 62:
            # Full products would overflow int64; combine with Python ints.
            values = [int(s) * int(m) for s, m in zip(signs, magnitudes)]
        else:
            values = (signs * np.asarray(magnitudes, dtype=np.int64)).tolist()
        return self._collect(values, before)

    def scale(self, a: Sequence[int], scalar: int) -> KernelResult:
        """Multiply every element by a signed scalar."""
        array_a = self._check_signed("a", a)
        return self.multiply(array_a.tolist(), [scalar] * array_a.size)

    # ------------------------------------------------------------------ #
    # Reductions and MAC-style kernels
    # ------------------------------------------------------------------ #
    def _accumulator_bits(self) -> int:
        accumulator_bits = 32
        try:
            self.macro.layout.check_precision(accumulator_bits)
        except PrecisionError:
            accumulator_bits = self.precision_bits * 2
        return accumulator_bits

    def _accumulate(self, values: Sequence[int]) -> int:
        """Serial reduction of (possibly wide) signed values via in-memory ADDs.

        The accumulator precision is the widest mode the macro supports so
        that dot products of realistic length do not overflow.  The engine's
        ``reduce_add`` models the serial one-ADD-per-element chain with
        batched accounting (and internally routes disturb-injecting
        configurations to the per-step on-array reference execution).
        """
        return self.macro.reduce_add(
            [int(v) for v in values], self._accumulator_bits()
        )

    def sum(self, a: Sequence[int]) -> KernelResult:
        """Signed sum of a vector (in-memory accumulation)."""
        array_a = self._check_signed("a", a)
        before = self.macro.stats.summary()
        total = self._accumulate(array_a.tolist())
        return self._collect([total], before)

    def dot(self, a: Sequence[int], b: Sequence[int]) -> KernelResult:
        """Signed dot product: element-wise MULT + in-memory accumulation."""
        products = self.multiply(a, b)
        before = self.macro.stats.summary()
        total = self._accumulate(products.values)
        tail = self._collect([total], before)
        return KernelResult(
            values=[total],
            cycles=products.cycles + tail.cycles,
            energy_j=products.energy_j + tail.energy_j,
            operations=products.operations + tail.operations,
        )

    def matvec(self, matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> KernelResult:
        """Signed matrix-vector product, one dot product per output row."""
        rows = [list(row) for row in matrix]
        if not rows:
            raise OperandError("matrix must have at least one row")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise OperandError("matrix rows must all have the same length")
        if len(vector) != width:
            raise OperandError(
                f"vector length {len(vector)} does not match matrix width {width}"
            )
        values: List[int] = []
        cycles = 0
        energy = 0.0
        operations = 0
        for row in rows:
            result = self.dot(row, vector)
            values.append(result.value)
            cycles += result.cycles
            energy += result.energy_j
            operations += result.operations
        return KernelResult(
            values=values, cycles=cycles, energy_j=energy, operations=operations
        )

    def fir_filter(self, signal: Sequence[int], taps: Sequence[int]) -> KernelResult:
        """FIR filter: output[n] = sum_k taps[k] * signal[n - k].

        The signal is zero-padded at the left, so the output has the same
        length as the input.
        """
        signal_array = self._check_signed("signal", signal)
        taps_array = self._check_signed("taps", taps)
        if taps_array.size == 0:
            raise OperandError("the filter needs at least one tap")
        padded = np.concatenate([np.zeros(taps_array.size - 1, dtype=np.int64), signal_array])
        values: List[int] = []
        cycles = 0
        energy = 0.0
        operations = 0
        for index in range(signal_array.size):
            window = padded[index : index + taps_array.size][::-1]
            result = self.dot(window.tolist(), taps_array.tolist())
            values.append(result.value)
            cycles += result.cycles
            energy += result.energy_j
            operations += result.operations
        return KernelResult(
            values=values, cycles=cycles, energy_j=energy, operations=operations
        )

    # ------------------------------------------------------------------ #
    # Cost reporting
    # ------------------------------------------------------------------ #
    def cost_summary(self) -> Dict[str, float]:
        """The macro's cumulative statistics (all kernels run so far)."""
        summary = self.macro.stats.summary()
        summary["cycle_time_s"] = self.macro.cycle_time_s()
        summary["execution_time_s"] = summary["cycles"] * summary["cycle_time_s"]
        return summary
