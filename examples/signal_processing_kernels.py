"""Signed vector kernels on the IMC macro: dot products, mat-vec, FIR filter.

Run with::

    python examples/signal_processing_kernels.py

The paper motivates in-memory computing with real-time signal/streaming
workloads.  This example uses the higher-level :class:`repro.core.kernels
.VectorKernels` API — which handles the two's-complement bookkeeping and the
near-memory accumulation — to run three classic kernels fully in memory and
reports their measured cycle/energy cost at two different precisions.
"""

from __future__ import annotations

import numpy as np

from repro.core import IMCMacro, MacroConfig, VectorKernels


def fir_demo(kernels: VectorKernels) -> None:
    rng = np.random.default_rng(3)
    signal = rng.integers(-100, 100, size=24).tolist()
    taps = [3, -2, 5, 1]
    result = kernels.fir_filter(signal, taps)
    expected = np.convolve(signal, taps)[: len(signal)].tolist()
    print(f"FIR filter ({len(signal)} samples, {len(taps)} taps)")
    print(f"  output matches numpy convolution : {result.values == expected}")
    print(f"  in-memory cycles                 : {result.cycles}")
    print(f"  energy                           : {result.energy_j * 1e12:.1f} pJ "
          f"({result.energy_per_result_j * 1e15:.0f} fJ per output sample)")


def matvec_demo(kernels: VectorKernels) -> None:
    rng = np.random.default_rng(5)
    matrix = rng.integers(-20, 20, size=(6, 8)).tolist()
    vector = rng.integers(-20, 20, size=8).tolist()
    result = kernels.matvec(matrix, vector)
    expected = (np.array(matrix) @ np.array(vector)).tolist()
    print(f"\nmatrix-vector product (6x8)")
    print(f"  output matches numpy             : {result.values == expected}")
    print(f"  in-memory cycles                 : {result.cycles}")
    print(f"  energy                           : {result.energy_j * 1e12:.1f} pJ")


def dot_precision_comparison() -> None:
    a = [7, -3, 5, 6, -2, 1, 4, -7]
    b = [2, 6, -1, 3, 5, -4, 2, 1]
    print("\ndot product at different precisions (same operands)")
    for bits in (8, 4):
        kernels = VectorKernels(IMCMacro(MacroConfig(precision_bits=bits)), precision_bits=bits)
        result = kernels.dot(a, b)
        print(
            f"  {bits}-bit: value = {result.value} "
            f"(numpy {int(np.dot(a, b))}), cycles = {result.cycles}, "
            f"energy = {result.energy_j * 1e12:.2f} pJ"
        )


def main() -> None:
    macro = IMCMacro(MacroConfig())
    kernels = VectorKernels(macro, precision_bits=8)

    print("=== Signed vector kernels executed inside the SRAM macro ===\n")
    fir_demo(kernels)
    matvec_demo(kernels)
    dot_precision_comparison()

    print("\n=== Cumulative cost of every kernel above ===")
    summary = kernels.cost_summary()
    print(f"operations        : {summary['operations']:.0f}")
    print(f"cycles            : {summary['cycles']:.0f}")
    print(f"energy            : {summary['energy_j'] * 1e9:.3f} nJ")
    print(f"execution time    : {summary['execution_time_s'] * 1e6:.2f} us "
          f"at {1 / summary['cycle_time_s'] / 1e9:.2f} GHz")


if __name__ == "__main__":
    main()
