"""Unit tests for the processor-centric (data movement) baseline."""

import pytest

from repro.baselines.processor import ProcessorCentricBaseline, ProcessorCostParameters
from repro.core import Opcode
from repro.errors import ConfigurationError


@pytest.fixture()
def baseline():
    return ProcessorCentricBaseline()


class TestProcessorEnergy:
    def test_per_operation_energy_magnitude(self, baseline):
        energy = baseline.energy_per_operation_j(Opcode.ADD, 8)
        # A few picojoules per 8-bit operation once data movement is included.
        assert 1e-12 < energy < 10e-12

    def test_data_movement_dominates(self, baseline):
        share = baseline.data_movement_share(Opcode.ADD, 8)
        assert 0.5 < share < 0.95

    def test_mult_costs_more_than_add(self, baseline):
        assert baseline.energy_per_operation_j(Opcode.MULT, 8) > baseline.energy_per_operation_j(
            Opcode.ADD, 8
        )

    def test_energy_scales_with_precision(self, baseline):
        assert baseline.energy_per_operation_j(Opcode.ADD, 16) > baseline.energy_per_operation_j(
            Opcode.ADD, 8
        )

    def test_energy_scales_with_voltage(self, baseline):
        low = baseline.energy_per_operation_j(Opcode.ADD, 8, vdd=0.6)
        high = baseline.energy_per_operation_j(Opcode.ADD, 8, vdd=0.9)
        assert low == pytest.approx(high * (0.6 / 0.9) ** 2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorCostParameters(sram_read_j=0.0)


class TestComparisonAgainstIMC:
    def test_imc_is_more_energy_efficient(self, baseline):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.XOR):
            comparison = baseline.compare(opcode, 8)
            assert comparison["energy_ratio"] > 2.0

    def test_mult_energy_ratio_is_smaller_but_positive(self, baseline):
        # The in-memory multiplication is iterative (N+2 cycles touching the
        # array every cycle), so its energy advantage over a dedicated ALU
        # multiplier is smaller than for addition.
        add_ratio = baseline.compare(Opcode.ADD, 8)["energy_ratio"]
        mult_ratio = baseline.compare(Opcode.MULT, 8)["energy_ratio"]
        assert 0.3 < mult_ratio < add_ratio

    def test_throughput_ratio_reflects_parallelism(self, baseline):
        narrow = baseline.compare(Opcode.ADD, 8, imc_parallel_words=1)
        wide = baseline.compare(Opcode.ADD, 8, imc_parallel_words=16)
        assert wide["throughput_ratio"] > narrow["throughput_ratio"]

    def test_comparison_fields_present(self, baseline):
        comparison = baseline.compare(Opcode.ADD, 8)
        for key in (
            "processor_energy_j",
            "imc_energy_j",
            "energy_ratio",
            "data_movement_share",
            "processor_latency_s",
            "imc_latency_s",
            "throughput_ratio",
        ):
            assert key in comparison

    def test_unsupported_opcode_rejected(self, baseline):
        with pytest.raises(ConfigurationError):
            baseline.compare(Opcode.COPY, 8)

    def test_argument_validation(self, baseline):
        with pytest.raises(ConfigurationError):
            baseline.compare(Opcode.ADD, 8, imc_parallel_words=0)
