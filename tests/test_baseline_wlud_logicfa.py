"""Unit tests for the WLUD conventional baseline and the logic-gate FA."""

import pytest

from repro.baselines.logicfa import LogicGateRippleAdder
from repro.baselines.reference import ReferenceALU
from repro.baselines.wlud import WLUDMacroModel
from repro.core import Opcode
from repro.errors import OperandError
from repro.tech import OperatingPoint, ProcessCorner


class TestWLUDMacroModel:
    @pytest.fixture()
    def model(self):
        return WLUDMacroModel()

    def test_bl_compute_delay_slower_than_proposed(self, model):
        point = OperatingPoint()
        ratio = model.delay_ratio_vs_proposed(point)
        # The paper reports the proposed scheme at 0.22x of WLUD at the worst
        # corner; at nominal it should be in the same ballpark.
        assert 0.1 < ratio < 0.35

    def test_worst_corner_ratio_near_paper(self, model):
        ratios = [
            model.delay_ratio_vs_proposed(OperatingPoint(corner=corner))
            for corner in ProcessCorner
        ]
        assert min(ratios) == pytest.approx(0.22, abs=0.07)

    def test_corner_delays_ordered(self, model):
        delays = model.corner_delays()
        assert delays[ProcessCorner.SS] > delays[ProcessCorner.NN] > delays[ProcessCorner.FF]

    def test_cycle_time_much_longer_than_proposed(self, model):
        point = OperatingPoint()
        assert model.frequency_ratio_vs_proposed(point) > 2.0

    def test_breakdown_total_consistent(self, model):
        point = OperatingPoint()
        breakdown = model.cycle_breakdown(point)
        assert breakdown.total_s == pytest.approx(model.cycle_time_s(point))

    def test_max_frequency_below_1ghz_at_nominal(self, model):
        assert model.max_frequency_hz(OperatingPoint(vdd=0.9)) < 1e9


class TestLogicGateRippleAdder:
    def test_addition_correct(self):
        adder = LogicGateRippleAdder(width=8)
        alu = ReferenceALU(8)
        for a, b in ((0, 0), (255, 1), (123, 200), (85, 170)):
            total, carry = adder.add(a, b)
            assert total == alu.evaluate(Opcode.ADD, a, b)
            assert carry == ((a + b) >> 8) & 1

    def test_carry_in(self):
        adder = LogicGateRippleAdder(width=4)
        total, carry = adder.add(7, 8, carry_in=1)
        assert total == 0
        assert carry == 1

    def test_operand_range_checked(self):
        adder = LogicGateRippleAdder(width=4)
        with pytest.raises(OperandError):
            adder.add(16, 0)
        with pytest.raises(OperandError):
            adder.add(1, 1, carry_in=2)

    def test_gate_evaluations_scale_with_width(self):
        assert LogicGateRippleAdder(width=16).gate_evaluations() == 2 * LogicGateRippleAdder(
            width=8
        ).gate_evaluations()

    def test_critical_path_slower_than_tg(self):
        adder = LogicGateRippleAdder(width=16)
        slowdown = adder.slowdown_vs_transmission_gate(OperatingPoint())
        assert 1.7 < slowdown < 2.3

    def test_critical_path_matches_shared_timing_model(self, technology, calibration):
        from repro.circuits.fa import AdderStyle, FullAdderTiming

        adder = LogicGateRippleAdder(width=8, technology=technology, calibration=calibration)
        timing = FullAdderTiming(technology, calibration)
        point = OperatingPoint()
        assert adder.critical_path_delay_s(point) == pytest.approx(
            timing.critical_path_delay(8, point, AdderStyle.LOGIC_GATE)
        )


class TestReferenceALU:
    def test_every_opcode_supported(self):
        alu = ReferenceALU(8)
        for opcode in Opcode:
            if opcode.is_dual_wordline:
                assert alu.evaluate(opcode, 5, 3) is not None
            else:
                assert alu.evaluate(opcode, 5) is not None

    def test_operand_range_checked(self):
        alu = ReferenceALU(4)
        with pytest.raises(OperandError):
            alu.evaluate(Opcode.ADD, 16, 1)

    def test_two_operand_opcode_requires_b(self):
        alu = ReferenceALU(8)
        with pytest.raises(OperandError):
            alu.evaluate(Opcode.ADD, 5)
