"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file only exists so
that fully offline environments (no access to PyPI for the ``wheel`` build
dependency) can still do an editable install with::

    python setup.py develop

which is what ``pip install -e .`` falls back to when wheels cannot be built.
"""

from setuptools import setup

setup()
