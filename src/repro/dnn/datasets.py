"""Synthetic datasets for the DNN precision study.

The environment is offline, so the classification workload is generated: a
mixture of Gaussian clusters (one or more per class) with controllable
feature count, cluster spread and label noise.  The defaults produce a task
that a small MLP solves with ~95 % accuracy in float and that degrades
gracefully as weights/activations are quantised to 8/4/2 bits — which is the
behaviour the reconfigurable-precision study needs to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["DatasetSplit", "make_classification_dataset"]


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split of a classification dataset."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def feature_count(self) -> int:
        """Number of input features."""
        return self.train_x.shape[1]

    @property
    def class_count(self) -> int:
        """Number of target classes."""
        return int(max(self.train_y.max(), self.test_y.max())) + 1

    def summary(self) -> Tuple[int, int, int, int]:
        """(train samples, test samples, features, classes)."""
        return (
            self.train_x.shape[0],
            self.test_x.shape[0],
            self.feature_count,
            self.class_count,
        )


def make_classification_dataset(
    samples: int = 1200,
    features: int = 16,
    classes: int = 4,
    clusters_per_class: int = 2,
    cluster_std: float = 1.0,
    class_separation: float = 3.0,
    label_noise: float = 0.02,
    test_fraction: float = 0.25,
    seed: int = 7,
) -> DatasetSplit:
    """Generate a Gaussian-cluster classification dataset with a split.

    Parameters
    ----------
    samples:
        Total number of samples (train + test).
    features:
        Input dimensionality.
    classes:
        Number of target classes.
    clusters_per_class:
        Each class is a mixture of this many Gaussian clusters.
    cluster_std:
        Standard deviation of each cluster.
    class_separation:
        Distance scale between cluster centres — larger is easier.
    label_noise:
        Fraction of training labels flipped to a random class.
    test_fraction:
        Fraction of the samples reserved for the test split.
    seed:
        RNG seed (the dataset is fully deterministic given the seed).
    """
    check_positive("samples", samples)
    check_positive("features", features)
    check_positive("classes", classes)
    check_positive("clusters_per_class", clusters_per_class)
    check_positive("cluster_std", cluster_std)
    check_in_range("label_noise", label_noise, 0.0, 0.5)
    check_in_range("test_fraction", test_fraction, 0.05, 0.9)
    if classes < 2:
        raise ConfigurationError("a classification dataset needs at least 2 classes")

    rng = np.random.default_rng(seed)
    centres = rng.normal(
        0.0, class_separation, size=(classes, clusters_per_class, features)
    )
    data = np.empty((samples, features), dtype=np.float64)
    labels = np.empty(samples, dtype=np.int64)
    for index in range(samples):
        label = index % classes
        cluster = rng.integers(0, clusters_per_class)
        data[index] = centres[label, cluster] + rng.normal(
            0.0, cluster_std, size=features
        )
        labels[index] = label

    # Shuffle, inject label noise, normalise features to zero mean / unit std.
    order = rng.permutation(samples)
    data, labels = data[order], labels[order]
    noisy = rng.random(samples) < label_noise
    labels[noisy] = rng.integers(0, classes, size=int(noisy.sum()))
    data = (data - data.mean(axis=0)) / (data.std(axis=0) + 1e-9)

    test_count = int(round(samples * test_fraction))
    return DatasetSplit(
        train_x=data[test_count:],
        train_y=labels[test_count:],
        test_x=data[:test_count],
        test_y=labels[:test_count],
    )
