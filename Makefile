# Convenience targets for the DAC 2020 bit-parallel IMC reproduction.
#
#   make test         tier-1 verification (the command CI runs)
#   make lint         ruff check + format check (skipped if ruff is absent)
#   make coverage     tier-1 suite under pytest-cov with the CI floor
#                     (skipped if pytest-cov is absent)
#   make bench        regenerate every paper artefact + extension study
#   make bench-smoke  the tracked benchmarks in smoke mode (JSON results)
#   make bench-full   the tracked benchmarks at full fidelity (the nightly
#                     CI tier, locally; 10^6-request traces — minutes)
#   make bench-check  compare results against benchmarks/baselines.json
#   make scale-smoke  boot the gateway single-process and sharded
#                     (--workers N) and assert ledger-sum parity
#   make ci           the full GitHub Actions pipeline, locally:
#                     lint -> docs links -> tests -> coverage ->
#                     bench smoke -> regression -> scale smoke
#   make docs-check   documentation-consistency tests only
#   make docs-links   internal markdown link/anchor checker
#   make chip-bench   just the sharded multi-macro scaling benchmark
#   make examples     run every example script end-to-end

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

#: Benchmarks whose JSON results the regression gate tracks.
TRACKED_BENCHES := benchmarks/bench_chip_scaling.py \
                   benchmarks/bench_matmul_engine.py \
                   benchmarks/bench_serving_throughput.py \
                   benchmarks/bench_cluster_scheduling.py \
                   benchmarks/bench_router_throughput.py \
                   benchmarks/bench_fleet_reliability.py \
                   benchmarks/bench_event_kernel.py \
                   benchmarks/bench_gateway_throughput.py \
                   benchmarks/bench_gateway_resilience.py \
                   benchmarks/bench_obs_overhead.py \
                   benchmarks/bench_fleet_workers.py

#: Coverage floor the CI coverage job enforces (keep in sync with ci.yml).
COV_FAIL_UNDER := 83

.PHONY: test lint coverage bench bench-smoke bench-full bench-check scale-smoke ci docs-check docs-links chip-bench examples clean

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools && \
		ruff format --check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q --cov=repro \
			--cov-report=term-missing:skip-covered \
			--cov-fail-under=$(COV_FAIL_UNDER); \
	else \
		echo "pytest-cov not installed; skipping coverage (CI runs it)"; \
	fi

bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest -q $(TRACKED_BENCHES)

bench-full:
	$(PYTHON) -m pytest -q $(TRACKED_BENCHES)

bench-check:
	$(PYTHON) benchmarks/check_regression.py

scale-smoke:
	$(PYTHON) tools/scale_smoke.py

# Recursive invocations keep the stages strictly ordered even under -jN
# (bench-check must read the JSON bench-smoke just wrote).
ci:
	$(MAKE) lint
	$(MAKE) docs-links
	$(MAKE) test
	$(MAKE) coverage
	$(MAKE) bench-smoke
	$(MAKE) bench-check
	$(MAKE) scale-smoke

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only

docs-check:
	$(PYTHON) -m pytest tests/test_documentation.py -q

docs-links:
	$(PYTHON) tools/check_docs_links.py

chip-bench:
	$(PYTHON) -m pytest benchmarks/bench_chip_scaling.py -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -prune -exec rm -rf {} \;
