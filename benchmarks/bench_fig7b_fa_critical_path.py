"""Fig. 7(b) — FA critical-path delay vs supply voltage (proposed TG FA vs
logic-gate FA, 8-bit and 16-bit ripple chains)."""

from repro.analysis import experiments
from repro.analysis.report import format_table


def _render(result) -> str:
    rows = []
    for bits in sorted(result):
        for vdd in sorted(result[bits]):
            entry = result[bits][vdd]
            rows.append(
                [
                    bits,
                    vdd,
                    entry["proposed_s"] * 1e12,
                    entry["logic_s"] * 1e12,
                    entry["speedup"],
                ]
            )
    return format_table(
        ["bits", "VDD [V]", "proposed FA [ps]", "logic FA [ps]", "speed-up"],
        rows,
        title="Fig. 7(b) — FA critical path; paper: proposed improves 1.8x-2.2x",
    )


def test_fig7b_fa_critical_path(benchmark, reporter):
    result = benchmark(experiments.fig7b_fa_critical_path)
    reporter("Figure 7(b) — FA critical-path delay vs supply", _render(result))
    speedups = [
        entry["speedup"] for per_bits in result.values() for entry in per_bits.values()
    ]
    assert min(speedups) > 1.7
    assert max(speedups) < 2.3
