"""Unit tests for the SUB/MULT micro-sequencer."""

import pytest

from repro.core.controller import MicroOp, MicroOpKind, MicroSequencer
from repro.core.operations import Opcode
from repro.errors import SequencerError


@pytest.fixture()
def sequencer():
    return MicroSequencer()


class TestSubPlan:
    def test_two_steps(self, sequencer):
        plan = sequencer.expand_sub(8)
        assert plan.cycle_count == 2
        assert plan.steps[0].kind is MicroOpKind.NOT_TO_DUMMY
        assert plan.steps[1].kind is MicroOpKind.ADD_WITH_CARRY

    def test_cycle_count_matches_table1_for_all_precisions(self, sequencer):
        for bits in (2, 4, 8, 16, 32):
            assert sequencer.expand_sub(bits).cycle_count == 2


class TestMultPlan:
    @pytest.mark.parametrize("bits", [2, 4, 8, 16])
    def test_cycle_count_is_n_plus_two(self, sequencer, bits):
        plan = sequencer.expand_mult(bits)
        assert plan.cycle_count == bits + 2

    def test_structure(self, sequencer):
        plan = sequencer.expand_mult(4)
        kinds = [step.kind for step in plan.steps]
        assert kinds[0] is MicroOpKind.INIT_ACCUMULATOR
        assert kinds[1] is MicroOpKind.COPY_TO_DUMMY
        assert kinds[2:-1] == [MicroOpKind.ADD_SHIFT_SELECT] * 3
        assert kinds[-1] is MicroOpKind.FINAL_ADD_SELECT

    def test_multiplier_bits_consumed_msb_first(self, sequencer):
        plan = sequencer.expand_mult(4)
        indices = [
            step.multiplier_bit_index
            for step in plan.steps
            if step.consumes_multiplier_bit
        ]
        assert indices == [3, 2, 1, 0]

    def test_init_steps_consume_no_multiplier_bit(self, sequencer):
        plan = sequencer.expand_mult(8)
        assert plan.steps[0].consumes_multiplier_bit is False
        assert plan.steps[1].consumes_multiplier_bit is False


class TestDispatchAndValidation:
    def test_expand_dispatch(self, sequencer):
        assert sequencer.expand(Opcode.SUB, 8).opcode is Opcode.SUB
        assert sequencer.expand(Opcode.MULT, 8).opcode is Opcode.MULT

    def test_single_cycle_opcode_rejected(self, sequencer):
        with pytest.raises(SequencerError):
            sequencer.expand(Opcode.ADD, 8)

    def test_plan_validation_catches_wrong_length(self, sequencer):
        plan = sequencer.expand_mult(8)
        plan.steps.append(MicroOp(MicroOpKind.ADD))
        with pytest.raises(SequencerError):
            plan.validate()
