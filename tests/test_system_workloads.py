"""System-level workload tests: larger vector jobs spanning kernels, the
banked memory and the baselines together."""

import numpy as np
import pytest

from repro.baselines.bitserial import BitSerialIMC
from repro.baselines.processor import ProcessorCentricBaseline
from repro.core import IMCMacro, IMCMemory, MacroConfig, Opcode, VectorKernels


class TestLargeVectorJobs:
    def test_256_element_multiply_accumulate(self):
        """A long MAC job split across many row accesses stays bit-exact."""
        rng = np.random.default_rng(17)
        a = rng.integers(0, 256, size=256).tolist()
        b = rng.integers(0, 256, size=256).tolist()
        macro = IMCMacro(MacroConfig())
        products = macro.elementwise(Opcode.MULT, a, b)
        assert products == [x * y for x, y in zip(a, b)]
        # 2 slots per access -> 128 vector MULT invocations of 10 cycles.
        assert macro.stats.cycles_for(Opcode.MULT) == 128 * 10

    def test_signed_dot_product_of_128_elements(self):
        rng = np.random.default_rng(23)
        a = rng.integers(-100, 100, size=128).tolist()
        b = rng.integers(-100, 100, size=128).tolist()
        kernels = VectorKernels(IMCMacro(MacroConfig()), precision_bits=8)
        assert kernels.dot(a, b).value == int(np.dot(a, b))

    def test_memory_level_throughput_accounting(self):
        memory = IMCMemory(banks=2, capacity_bytes=8 * 1024)
        for bank in memory.banks:
            for macro in bank.macros:
                macro.write_words(0, [1, 2, 3, 4])
                macro.write_words(1, [4, 3, 2, 1])
        memory.reset_stats()
        for _ in range(10):
            memory.broadcast(Opcode.ADD, 0, 1, dest_row=2)
        stats = memory.statistics()
        assert stats.total_operations == 10 * memory.parallel_words()
        assert stats.total_cycles == 10 * memory.total_macros
        assert stats.cycles_per_operation() == pytest.approx(1 / 4)


class TestCrossModelConsistency:
    def test_three_simulators_agree_on_results(self):
        """Proposed macro, bit-serial baseline and plain numpy all agree."""
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, size=12).tolist()
        b = rng.integers(0, 256, size=12).tolist()
        macro = IMCMacro(MacroConfig())
        serial = BitSerialIMC()
        for opcode, reference in (
            (Opcode.ADD, [(x + y) % 256 for x, y in zip(a, b)]),
            (Opcode.SUB, [(x - y) % 256 for x, y in zip(a, b)]),
            (Opcode.MULT, [x * y for x, y in zip(a, b)]),
            (Opcode.XOR, [x ^ y for x, y in zip(a, b)]),
        ):
            assert macro.elementwise(opcode, a, b) == reference
            assert list(serial.elementwise(opcode, a, b, 8).values) == reference

    def test_proposed_macro_beats_bitserial_latency(self):
        """Latency of one 8-bit MULT: 10 cycles vs ~86 cycles (and a faster
        clock on top, per Table III)."""
        macro = IMCMacro(MacroConfig())
        proposed_cycles = 10
        serial_cycles = BitSerialIMC.cycles_for(Opcode.MULT, 8)
        assert serial_cycles > 8 * proposed_cycles
        proposed_latency = proposed_cycles * macro.cycle_time_s()
        serial_latency = serial_cycles / 475e6
        assert proposed_latency < serial_latency / 10

    def test_imc_vs_processor_for_a_whole_image_job(self):
        """End-to-end energy of the image-blend job: IMC beats the
        processor-centric path by the data-movement margin."""
        size = 64  # pixels
        macro = IMCMacro(MacroConfig())
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, size=size).tolist()
        b = rng.integers(0, 256, size=size).tolist()
        macro.reset_stats()
        macro.elementwise(Opcode.ADD, a, b)
        imc_energy = macro.stats.total_energy_j
        processor = ProcessorCentricBaseline()
        processor_energy = size * processor.energy_per_operation_j(Opcode.ADD, 8)
        assert processor_energy > 2 * imc_energy
