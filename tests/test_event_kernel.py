"""Differential-oracle suite: the columnar event kernel vs the object router.

The columnar :class:`repro.cluster.EventKernel` re-implements the router's
discrete-event simulation over columnar ledgers; the object router is the
oracle.  Every test here replays one randomized workload through both
kernels — same nodes, same scheduler, same fault plan, same drain cadence
— and requires the *entire* observable state to match bit for bit:

* the merged cluster ledger and every per-node ledger,
* the per-request trace rows (ids, placements, virtual times, energies,
  flags), in their merged emission order,
* the deadline-miss set,
* request conservation (``completed == admitted``, no loss under faults),
* node telemetry, spot-check counters and the shared forward-memo state
  (hits, misses and LRU order — the kernel batches its LRU writes).

Hypothesis drives the workload space (poisson / diurnal / burst arrival
processes, SLA mixes, binned fleets, fault plans, coalescing on and off,
EXACT and ANALYTIC modes); the shared ``ci`` profile in ``conftest.py``
keeps CI runs derandomized and bounded, ``REPRO_HYPOTHESIS_PROFILE=nightly``
widens the sweep.  The heavyweight cases carry ``@pytest.mark.slow`` — the
per-PR CI matrix deselects them, tier-1 and the nightly tier run them.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    ClusterNode,
    ClusterRouter,
    ColumnarTelemetry,
    ExecutionMode,
    ForwardMemo,
    RequestTrace,
    SLAScheduler,
    build_image_pool,
    burst_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.dnn.pipeline import make_pattern_image_dataset, train_pattern_cnn
from repro.reliability import ChipBinner, FaultEvent, FaultKind, FaultPlan
from repro.utils.validation import check_ledger_conservation

NUM_MACROS = 4
IMAGE_SIZE = 16
IMAGE_COUNTS = (3, 5)

_TRACE_FIELDS = [field.name for field in dataclasses.fields(RequestTrace)]


@pytest.fixture(scope="module")
def trained():
    dataset = make_pattern_image_dataset(samples=260, size=IMAGE_SIZE, seed=3)
    cnn, _ = train_pattern_cnn(
        dataset, conv_channels=(1,), hidden_sizes=(4,), epochs=4, seed=3
    )
    return dataset, cnn


@pytest.fixture(scope="module")
def pool(trained):
    dataset, _ = trained
    return build_image_pool({"cnn": dataset.test_images}, IMAGE_COUNTS)


#: Binned dice shared by every binned-fleet example (binning is seeded and
#: deterministic; building it once keeps hypothesis examples fast).
_BINS = ChipBinner(seed=2020, samples=128).bin_fleet(3)


def _make_trace(kind: str, requests: int, deadline_s, sla_mix, seed: int):
    if kind == "poisson":
        return poisson_trace(
            requests, rate_rps=400.0, model_ids=("cnn",),
            image_counts=IMAGE_COUNTS, sla_mix=sla_mix,
            deadline_s=deadline_s, seed=seed,
        )
    if kind == "diurnal":
        return diurnal_trace(
            requests, period_s=0.25, base_rate_rps=300.0,
            peak_rate_rps=1200.0, model_ids=("cnn",),
            image_counts=IMAGE_COUNTS, sla_mix=sla_mix,
            deadline_s=deadline_s, seed=seed,
        )
    return burst_trace(
        requests, base_rate_rps=300.0, burst_every_s=0.08,
        burst_duration_s=0.02, burst_multiplier=6.0, model_ids=("cnn",),
        image_counts=IMAGE_COUNTS, sla_mix=sla_mix,
        deadline_s=deadline_s, seed=seed,
    )


def _fault_plan(fault: str, span_s: float) -> FaultPlan:
    if fault == "none":
        return FaultPlan()
    if fault == "crash":
        return FaultPlan.node_crash(
            "n0", at_s=span_s * 0.3, recover_at_s=span_s * 0.7
        )
    if fault == "degrade":
        return FaultPlan([
            FaultEvent(at_s=span_s * 0.2, kind=FaultKind.DEGRADE,
                       node_id="n1", factor=2.0),
            FaultEvent(at_s=span_s * 0.6, kind=FaultKind.RECOVER,
                       node_id="n1"),
        ])
    return FaultPlan([  # "mixed": a stall riding on a crash window
        FaultEvent(at_s=span_s * 0.25, kind=FaultKind.CRASH, node_id="n0"),
        FaultEvent(at_s=span_s * 0.4, kind=FaultKind.STALL, node_id="n1",
                   duration_s=span_s * 0.1),
        FaultEvent(at_s=span_s * 0.65, kind=FaultKind.RECOVER,
                   node_id="n0"),
    ])


def _run(cnn, pool, trace, kernel, *, mode, vdds, binned, coalesce, fault,
         drain_every, spot_check_every=0, aggregates_only=False, warm=False):
    """One replay; returns every observable the oracle comparison pins."""
    memo = ForwardMemo()
    nodes = [
        ClusterNode(
            f"n{index}",
            vdd=vdd,
            num_macros=NUM_MACROS,
            max_batch_size=max(IMAGE_COUNTS),
            execution_mode=mode,
            forward_memo=memo,
            spot_check_every=spot_check_every,
            bin=_BINS[index] if binned else None,
        )
        for index, vdd in enumerate(vdds)
    ]
    plan = _fault_plan(fault, trace.duration_s)
    router = ClusterRouter(
        nodes,
        scheduler=SLAScheduler(coalesce_affinity=coalesce),
        coalesce=coalesce,
        fault_plan=plan,
        kernel=kernel,
        telemetry=(
            ColumnarTelemetry() if kernel == "columnar" else None
        ),
        retain_results=not aggregates_only,
    )
    router.register_model("cnn", cnn)
    try:
        if warm:
            for node in nodes:
                for slots in pool.values():
                    for digest, images in slots:
                        node.execute("cnn", images, input_digest=digest)
        stats = router.replay_trace(trace, pool, drain_every=drain_every)
        rows = [
            tuple(getattr(t, f) for f in _TRACE_FIELDS)
            for t in router.telemetry.traces
        ]
        cluster = router.ledger()
        check_ledger_conservation(
            cluster, [node.ledger() for node in nodes]
        )
        assert stats["completed"] == stats["requests"]
        observed = {
            "rows": rows,
            "summary": router.telemetry.summary(),
            "cluster_ledger": (cluster.total_cycles, cluster.total_energy_j,
                               cluster.total_operations),
            "clock": router.clock_s,
            "completed": router.completed_requests,
            "requests": stats["requests"],
            "miss_set": {
                r[0] for r in rows if r[_TRACE_FIELDS.index("deadline_missed")]
            },
            "replayed_set": {
                r[0] for r in rows if r[_TRACE_FIELDS.index("replayed")]
            },
            "memo": (memo.hits, memo.misses, tuple(memo._entries.keys())),
        }
        for node in nodes:
            ledger = node.ledger()
            tel = node.telemetry
            observed[f"node:{node.node_id}"] = (
                ledger.total_cycles, ledger.total_energy_j,
                tel.dispatches, tel.images, tel.busy_s, tel.energy_j,
                tel.deadline_misses, tel.affinity_hits,
                tel.ewma_image_latency_s, node.spot_checks,
                node.state.value,
            )
    finally:
        router.shutdown()
    return observed


def _assert_identical(reference, columnar):
    """Every observable matches, reported field-by-field on divergence."""
    assert set(reference) == set(columnar)
    for key, value in reference.items():
        if key == "rows":
            assert len(columnar[key]) == len(value)
            for got, want in zip(columnar[key], value):
                assert got == want
        else:
            assert columnar[key] == value, f"diverged on {key}"


sla_mixes = st.sampled_from([
    None,
    {"latency": 0.3, "throughput": 0.4, "best_effort": 0.3},
    {"latency": 1.0},
    {"throughput": 0.5, "best_effort": 0.5},
])


class TestDifferentialOracle:
    """Randomized object-vs-columnar equivalence on the per-request path."""

    @given(
        kind=st.sampled_from(["poisson", "diurnal", "burst"]),
        requests=st.integers(min_value=5, max_value=40),
        drain_every=st.sampled_from([1, 7, 64]),
        sla_mix=sla_mixes,
        deadline_scale=st.sampled_from([None, 0.5, 4.0]),
        binned=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_analytic_traces_match(
        self, trained, pool, kind, requests, drain_every, sla_mix,
        deadline_scale, binned, seed,
    ):
        _, cnn = trained
        deadline_s = None if deadline_scale is None else deadline_scale * 5e-4
        if deadline_s is None and sla_mix is not None and "latency" in sla_mix:
            # A latency share requires a deadline; keep the undeadlined
            # examples on the other two classes.
            sla_mix = {"throughput": 0.5, "best_effort": 0.5}
        trace = _make_trace(kind, requests, deadline_s, sla_mix, seed)
        config = dict(
            mode=ExecutionMode.ANALYTIC, vdds=(1.0, 0.6), binned=binned,
            coalesce=False, fault="none", drain_every=drain_every,
        )
        reference = _run(cnn, pool, trace, "object", **config)
        columnar = _run(cnn, pool, trace, "columnar", **config)
        _assert_identical(reference, columnar)

    @given(
        kind=st.sampled_from(["poisson", "burst"]),
        requests=st.integers(min_value=5, max_value=25),
        coalesce=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_exact_mode_and_coalescing_match(
        self, trained, pool, kind, requests, coalesce, seed,
    ):
        _, cnn = trained
        trace = _make_trace(
            kind, requests, 2e-3,
            {"latency": 0.2, "throughput": 0.5, "best_effort": 0.3}, seed,
        )
        config = dict(
            mode=ExecutionMode.EXACT, vdds=(1.0, 0.8), binned=False,
            coalesce=coalesce, fault="none", drain_every=16,
        )
        reference = _run(cnn, pool, trace, "object", **config)
        columnar = _run(cnn, pool, trace, "columnar", **config)
        _assert_identical(reference, columnar)


class TestFaultDifferential:
    """Fault plans (crash / degrade / stall + replay) across both kernels."""

    @given(
        fault=st.sampled_from(["crash", "degrade", "mixed"]),
        kind=st.sampled_from(["poisson", "diurnal"]),
        requests=st.integers(min_value=10, max_value=40),
        drain_every=st.sampled_from([4, 32]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fault_plans_match_and_conserve(
        self, trained, pool, fault, kind, requests, drain_every, seed,
    ):
        _, cnn = trained
        trace = _make_trace(
            kind, requests, 1e-3,
            {"latency": 0.3, "throughput": 0.4, "best_effort": 0.3}, seed,
        )
        config = dict(
            mode=ExecutionMode.ANALYTIC, vdds=(1.0, 0.6, 0.8), binned=False,
            coalesce=False, fault=fault, drain_every=drain_every,
        )
        reference = _run(cnn, pool, trace, "object", **config)
        columnar = _run(cnn, pool, trace, "columnar", **config)
        # _run already asserted conservation per-side; the replayed request
        # set (crash re-placements) must also coincide.
        assert columnar["replayed_set"] == reference["replayed_set"]
        _assert_identical(reference, columnar)


@pytest.mark.slow
class TestTurboDifferential:
    """The steady-state turbo batch path vs the oracle at depth.

    Warm memoised fleets with spot checks on, thousands of requests,
    drain chunks large enough that the columnar side takes its batch
    admission/dispatch/flush path — the configuration the throughput
    benchmark measures.
    """

    @given(
        kind=st.sampled_from(["poisson", "diurnal", "burst"]),
        drain_every=st.sampled_from([64, 256]),
        deadline_scale=st.sampled_from([None, 2.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_turbo_matches_oracle(
        self, trained, pool, kind, drain_every, deadline_scale, seed,
    ):
        _, cnn = trained
        deadline_s = None if deadline_scale is None else deadline_scale * 5e-4
        sla_mix = (
            {"throughput": 0.5, "best_effort": 0.5}
            if deadline_s is None
            else {"latency": 0.25, "throughput": 0.5, "best_effort": 0.25}
        )
        trace = _make_trace(kind, 600, deadline_s, sla_mix, seed)
        config = dict(
            mode=ExecutionMode.ANALYTIC, vdds=(1.0, 0.6), binned=False,
            coalesce=False, fault="none", drain_every=drain_every,
            spot_check_every=100, warm=True,
        )
        reference = _run(cnn, pool, trace, "object", **config)
        columnar = _run(
            cnn, pool, trace, "columnar", aggregates_only=True, **config
        )
        _assert_identical(reference, columnar)

    def test_turbo_matches_oracle_with_faults_mid_trace(self, trained, pool):
        """Fault horizons force per-chunk fallback; mixing turbo and oracle
        chunks in one replay must stay bit-exact."""
        _, cnn = trained
        trace = _make_trace(
            "diurnal", 800, 1e-3,
            {"latency": 0.25, "throughput": 0.5, "best_effort": 0.25}, 11,
        )
        config = dict(
            mode=ExecutionMode.ANALYTIC, vdds=(1.0, 0.6, 0.8), binned=True,
            coalesce=False, fault="crash", drain_every=128,
            spot_check_every=200, warm=True,
        )
        reference = _run(cnn, pool, trace, "object", **config)
        columnar = _run(
            cnn, pool, trace, "columnar", aggregates_only=True, **config
        )
        assert columnar["replayed_set"] == reference["replayed_set"]
        _assert_identical(reference, columnar)
