"""Multi-layer perceptron models (float reference and quantised)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.dnn.layers import DenseLayer, QuantizedDenseLayer

__all__ = ["MLP", "QuantizedMLP"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


@dataclass
class MLP:
    """A float multi-layer perceptron classifier."""

    layers: List[DenseLayer]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError("an MLP needs at least one layer")
        for previous, current in zip(self.layers, self.layers[1:]):
            if previous.output_size != current.input_size:
                raise ConfigurationError(
                    f"layer sizes do not chain: {previous.output_size} -> "
                    f"{current.input_size}"
                )

    @classmethod
    def create(
        cls, layer_sizes: Sequence[int], seed: int = 0
    ) -> "MLP":
        """Build an MLP from a size list, e.g. ``[16, 32, 16, 4]``.

        Hidden layers use ReLU; the final layer is linear (logits).
        """
        if len(layer_sizes) < 2:
            raise ConfigurationError("layer_sizes needs an input and an output size")
        layers = []
        for index in range(len(layer_sizes) - 1):
            layers.append(
                DenseLayer.random(
                    layer_sizes[index],
                    layer_sizes[index + 1],
                    relu=index < len(layer_sizes) - 2,
                    seed=seed + index,
                )
            )
        return cls(layers=layers)

    @property
    def input_size(self) -> int:
        """Input feature count."""
        return self.layers[0].input_size

    @property
    def output_size(self) -> int:
        """Number of classes."""
        return self.layers[-1].output_size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a batch."""
        values = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            values = layer.forward(values)
        return values

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch."""
        return _softmax(self.forward(inputs))

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch."""
        return np.argmax(self.forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        return float(np.mean(self.predict(inputs) == np.asarray(labels)))

    def quantize(self, weight_bits: int, activation_bits: Optional[int] = None) -> "QuantizedMLP":
        """Produce the quantised version of this network."""
        return QuantizedMLP.from_float(
            self, weight_bits=weight_bits, activation_bits=activation_bits
        )


@dataclass
class QuantizedMLP:
    """An MLP whose matrix products run in integer arithmetic."""

    layers: List[QuantizedDenseLayer]
    weight_bits: int
    activation_bits: int
    matmul: Optional[Callable] = field(default=None, repr=False)

    @classmethod
    def from_float(
        cls,
        model: MLP,
        weight_bits: int,
        activation_bits: Optional[int] = None,
    ) -> "QuantizedMLP":
        """Quantise a trained float model."""
        if activation_bits is None:
            activation_bits = weight_bits
        layers = [
            QuantizedDenseLayer(
                float_layer=layer,
                weight_bits=weight_bits,
                activation_bits=activation_bits,
            )
            for layer in model.layers
        ]
        return cls(
            layers=layers, weight_bits=weight_bits, activation_bits=activation_bits
        )

    def with_backend(self, matmul: Callable) -> "QuantizedMLP":
        """Return a copy of this model bound to an integer-matmul backend."""
        return QuantizedMLP(
            layers=self.layers,
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            matmul=matmul,
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a batch, via the configured integer backend."""
        values = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            values = layer.forward(values, matmul=self.matmul)
        return values

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch."""
        return np.argmax(self.forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        return float(np.mean(self.predict(inputs) == np.asarray(labels)))

    def mac_count(self, batch: int) -> int:
        """Total multiply-accumulates for a batch of inferences."""
        return sum(layer.mac_count(batch) for layer in self.layers)
