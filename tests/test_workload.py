"""Vectorized trace-driven load generation (repro.cluster.workload)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterNode,
    ClusterRouter,
    ExecutionMode,
    build_image_pool,
    burst_trace,
    diurnal_trace,
    poisson_trace,
    replay,
)
from repro.cluster.workload import SLA_ORDER
from repro.dnn.pipeline import make_pattern_image_dataset, train_pattern_cnn
from repro.errors import ConfigurationError


class TestGenerators:
    def test_poisson_shape_and_determinism(self):
        kwargs = dict(
            rate_rps=200.0,
            model_ids=("a", "b"),
            image_counts=(2, 4),
            sla_mix={"latency": 0.25, "throughput": 0.5, "best_effort": 0.25},
            deadline_s=0.01,
            seed=7,
        )
        trace = poisson_trace(5000, **kwargs)
        again = poisson_trace(5000, **kwargs)
        assert len(trace) == 5000
        assert np.all(np.diff(trace.arrivals_s) >= 0)
        assert np.array_equal(trace.arrivals_s, again.arrivals_s)
        assert np.array_equal(trace.model_indices, again.model_indices)
        assert set(np.unique(trace.image_counts)) <= {2, 4}
        # Deadlines exactly on the latency class, nan elsewhere.
        latency = trace.sla_indices == 0
        assert np.all(trace.deadlines_s[latency] == 0.01)
        assert np.all(np.isnan(trace.deadlines_s[~latency]))
        # Empirical rate within 10 % of the requested one.
        assert trace.mean_rate_rps == pytest.approx(200.0, rel=0.1)

    def test_poisson_requires_deadline_for_latency_share(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(10, rate_rps=1.0, sla_mix={"latency": 1.0})

    def test_diurnal_concentrates_arrivals_at_the_peak(self):
        trace = diurnal_trace(
            20000, period_s=100.0, base_rate_rps=20.0, peak_rate_rps=300.0, seed=3
        )
        assert np.all(np.diff(trace.arrivals_s) >= 0)
        phase = np.mod(trace.arrivals_s, 100.0)
        # The raised-cosine peak sits half a period in; the trough at 0.
        peak_fraction = np.mean((phase > 30.0) & (phase < 70.0))
        trough_fraction = np.mean((phase < 10.0) | (phase > 90.0))
        assert peak_fraction > 2.0 * trough_fraction

    def test_burst_concentrates_arrivals_in_burst_windows(self):
        trace = burst_trace(
            20000,
            base_rate_rps=100.0,
            burst_every_s=20.0,
            burst_duration_s=2.0,
            burst_multiplier=10.0,
            seed=3,
        )
        in_burst = np.mod(trace.arrivals_s, 20.0) < 2.0
        # Burst windows are 10 % of the span but carry ~53 % of the traffic
        # (10x rate): far above the uniform 10 %.
        assert in_burst.mean() > 0.4

    def test_head_and_summary(self):
        trace = poisson_trace(100, rate_rps=10.0, seed=1)
        head = trace.head(10)
        assert len(head) == 10
        assert np.array_equal(head.arrivals_s, trace.arrivals_s[:10])
        summary = trace.summary()
        assert summary["requests"] == 100.0
        assert summary["best_effort_requests"] == 100.0
        assert set(f"{sla.value}_requests" for sla in SLA_ORDER) <= set(summary)

    def test_validation_errors(self):
        with pytest.raises(Exception):
            poisson_trace(0, rate_rps=1.0)
        with pytest.raises(ConfigurationError):
            poisson_trace(5, rate_rps=1.0, image_counts=())
        with pytest.raises(ConfigurationError):
            poisson_trace(5, rate_rps=1.0, model_ids=())
        with pytest.raises(ConfigurationError):
            poisson_trace(5, rate_rps=1.0, sla_mix={"gold": 1.0})
        with pytest.raises(ConfigurationError):
            burst_trace(
                5,
                base_rate_rps=1.0,
                burst_every_s=1.0,
                burst_duration_s=2.0,
            )
        with pytest.raises(ConfigurationError):
            diurnal_trace(5, period_s=1.0, base_rate_rps=2.0, peak_rate_rps=1.0)


class TestPoolAndReplay:
    @pytest.fixture(scope="class")
    def served(self):
        dataset = make_pattern_image_dataset(samples=120, size=8, seed=13)
        cnn, _ = train_pattern_cnn(dataset, epochs=5, seed=13)
        return dataset, cnn

    def test_build_image_pool_slots_are_distinct_and_digested(self, served):
        dataset, _ = served
        pool = build_image_pool({"cnn": dataset.test_images}, (2, 4), pool_slots=3)
        assert set(pool) == {("cnn", 2), ("cnn", 4)}
        for (model_id, count), slots in pool.items():
            assert len(slots) == 3
            digests = [digest for digest, _ in slots]
            assert len(set(digests)) == 3
            for digest, images in slots:
                assert images.shape[0] == count
                assert digest.startswith(f"{model_id}/{count}/")

    def test_replay_completes_the_whole_trace(self, served):
        dataset, cnn = served
        pool = build_image_pool({"cnn": dataset.test_images}, (2, 4))
        trace = poisson_trace(
            40, rate_rps=100.0, model_ids=("cnn",), image_counts=(2, 4), seed=5
        )
        node = ClusterNode(
            "n0", num_macros=16, execution_mode=ExecutionMode.ANALYTIC
        )
        with ClusterRouter([node]) as router:
            router.register_model("cnn", cnn)
            stats = replay(router, trace, pool, drain_every=8)
            assert stats["requests"] == 40.0
            assert stats["completed"] == 40.0
            assert stats["images"] == float(trace.total_images)
            assert len(router.telemetry.traces) == 40
            # Arrival order is preserved on the virtual clock.
            arrivals = [t.arrival_s for t in router.telemetry.traces]
            assert arrivals == sorted(arrivals)

    def test_replay_is_deterministic_across_runs(self, served):
        dataset, cnn = served
        pool = build_image_pool({"cnn": dataset.test_images}, (3,))
        trace = poisson_trace(
            25, rate_rps=50.0, model_ids=("cnn",), image_counts=(3,), seed=9
        )

        def run():
            node = ClusterNode(
                "n0", num_macros=16, execution_mode=ExecutionMode.ANALYTIC
            )
            with ClusterRouter([node]) as router:
                router.register_model("cnn", cnn)
                replay(router, trace, pool, drain_every=8)
                ledger = router.ledger()
                return (
                    [t.finish_s for t in router.telemetry.traces],
                    ledger.total_cycles,
                    ledger.total_energy_j,
                )

        assert run() == run()
