"""Unit tests for the dual-WL row decoder."""

import pytest

from repro.core.array import RowRef
from repro.core.decoder import RowDecoder
from repro.circuits.wordline import WordlineScheme
from repro.errors import AddressError, ConfigurationError
from repro.tech import OperatingPoint


@pytest.fixture()
def decoder(technology, calibration):
    return RowDecoder(
        rows=128, dummy_rows=3, technology=technology, calibration=calibration
    )


class TestSelection:
    def test_single_selection(self, decoder):
        selection = decoder.select(OperatingPoint(), RowRef.main(5))
        assert selection.is_dual is False
        assert selection.rows == (RowRef.main(5),)

    def test_dual_selection(self, decoder):
        selection = decoder.select(OperatingPoint(), RowRef.main(5), RowRef.main(9))
        assert selection.is_dual is True

    def test_dual_selection_with_dummy_row(self, decoder):
        selection = decoder.select(OperatingPoint(), RowRef.main(5), RowRef.dummy(1))
        assert selection.is_dual is True

    def test_same_row_twice_rejected(self, decoder):
        with pytest.raises(ConfigurationError):
            decoder.select(OperatingPoint(), RowRef.main(5), RowRef.main(5))

    def test_out_of_range_main_row(self, decoder):
        with pytest.raises(AddressError):
            decoder.select(OperatingPoint(), RowRef.main(128))

    def test_out_of_range_dummy_row(self, decoder):
        with pytest.raises(AddressError):
            decoder.select(OperatingPoint(), RowRef.dummy(3))

    def test_pulse_comes_from_configured_scheme(self, decoder):
        selection = decoder.select(OperatingPoint(vdd=0.9), RowRef.main(0))
        assert selection.pulse.voltage == pytest.approx(0.9)
        assert selection.pulse.width_s == pytest.approx(140e-12, rel=1e-6)

    def test_wlud_decoder_pulse(self, technology, calibration):
        decoder = RowDecoder(
            rows=16,
            dummy_rows=3,
            technology=technology,
            calibration=calibration,
            scheme=WordlineScheme.WLUD,
        )
        selection = decoder.select(OperatingPoint(), RowRef.main(0))
        assert selection.pulse.voltage == pytest.approx(0.55)


class TestHistory:
    def test_history_records_activations(self, decoder):
        decoder.select(OperatingPoint(), RowRef.main(0))
        decoder.select(OperatingPoint(), RowRef.main(0), RowRef.main(1))
        assert len(decoder.activation_history) == 2
        assert decoder.dual_activation_count == 1

    def test_history_can_be_skipped(self, decoder):
        decoder.select(OperatingPoint(), RowRef.main(0), record=False)
        assert len(decoder.activation_history) == 0

    def test_reset_history(self, decoder):
        decoder.select(OperatingPoint(), RowRef.main(0))
        decoder.reset_history()
        assert decoder.activation_history == []
